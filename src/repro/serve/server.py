"""The live admission daemon: the simulator's engine behind a socket.

One :class:`AdmissionEngine` holds exactly the objects a
:class:`~repro.sim.simulator.Simulator` run holds — a
:class:`~repro.sim.state.PlatformState`, an
:class:`~repro.core.admission.AdmissionController` over a registry
strategy, an (optional) predictor — but consumes an *open-ended* stream
of per-tenant requests instead of a finite
:class:`~repro.workload.trace.Trace`.  Its decision path mirrors the
simulator's step for step (decision time, prediction overhead,
``S-bar`` construction, mapping application), which is what the
sim/live parity suite pins: the same declared-arrival stream produces
the same accept/reject sequence through either front end.

:class:`AdmissionServer` wraps the engine in an asyncio daemon speaking
the NDJSON protocol of :mod:`repro.serve.protocol`:

* per-tenant bounded admission queues — a tenant whose backlog is full
  gets an explicit ``"shed"`` response instead of unbounded buffering;
* per-tenant active-job quotas — ``"over-quota"`` structured rejects;
* live degradation via the PR-4 fault machinery: the strategy can be
  wrapped in a :class:`~repro.faults.watchdog.SolverWatchdog`
  (``solver_wall_budget``), predictor misbehaviour degrades to the
  paper's no-prediction path, and every degradation is counted;
* an Elasecutor-style :class:`~repro.serve.depository.UsageDepository`
  that scores forecasts against actual arrivals and triggers a
  reprovision pass (prediction cooldown + re-solve of the active
  mapping) when the windowed error rate crosses its threshold;
* live :class:`~repro.obs.metrics.MetricsRegistry` export — the
  ``metrics`` control op returns a snapshot, and a plain
  ``GET /metrics`` on the same port answers with a Prometheus-style
  text exposition;
* crash safety (DESIGN.md §15): with ``ServeConfig.journal_path`` set,
  every operation is recorded in a write-ahead
  :class:`~repro.serve.journal.AdmissionJournal` (intent before the
  decision, outcome before the reply), a restarted server replays the
  journal to the exact pre-crash engine state
  (:func:`recover_engine` — bit-identical fingerprint under
  :class:`~repro.serve.clock.VirtualClock`), and client-supplied
  idempotency keys make retried ops return the original decision
  instead of re-admitting;
* wire-level fault injection: an optional
  :class:`~repro.faults.serve.ServeFaultPlan` mutilates the response
  path (injected latency, truncated/garbage NDJSON, mid-frame
  connection aborts) and the journal (write failures) on a seeded,
  ordinal-indexed schedule — the transport shim the chaos harness
  (``repro chaos``) drives.
"""

from __future__ import annotations

import asyncio
import json
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from hashlib import sha256
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.core.admission import AdmissionController, AdmissionOutcome
from repro.core.base import MappingStrategy
from repro.core.context import PREDICTED_JOB_ID, PlannedTask, RMContext
from repro.model.platform import Platform
from repro.model.request import PredictedRequest, Request
from repro.model.task import TaskType
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.predict.base import NullPredictor, Predictor
from repro.serve.clock import Clock, VirtualClock, WallClock
from repro.serve.depository import UsageDepository
from repro.serve.journal import (
    AdmissionJournal,
    ServeJournalError,
    service_fingerprint,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    AdmitRequest,
    AdmitResponse,
    ControlRequest,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_payload,
)
from repro.sim.state import PlatformState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.serve import ServeFaultPlan

__all__ = [
    "AdmissionEngine",
    "AdmissionServer",
    "RecoveryReport",
    "RequestLog",
    "ServeConfig",
    "prometheus_exposition",
    "recover_engine",
]

_HISTOGRAM_BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)

#: Admission statuses the idempotency cache remembers.  Backpressure
#: outcomes (shed / over-quota) are transient by design: a retry with
#: the same key *should* be re-decided once capacity frees up.
_CACHEABLE_STATUSES = frozenset({"accepted", "rejected"})


def _fhex(value: float) -> str:
    return "inf" if math.isinf(value) else float(value).hex()


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs (the live analogue of ``SimulationConfig``).

    Attributes
    ----------
    host, port:
        Bind address; port 0 picks a free port (``AdmissionServer.port``
        reports the actual one after :meth:`AdmissionServer.start`).
    mode:
        ``"live"`` stamps undeclared arrivals from a
        :class:`~repro.serve.clock.WallClock` scaled by ``speed``;
        ``"replay"`` runs a :class:`~repro.serve.clock.VirtualClock` and
        requires every admit frame to declare its arrival — the mode the
        parity suite uses to compare against ``simulate()``.
    speed:
        Simulation time units per wall second in live mode (time
        compression; ignored in replay mode).
    queue_depth:
        Per-tenant bound on requests queued for dispatch; the excess is
        shed with an explicit response (backpressure, not buffering).
    dispatch_depth:
        Global bound on the dispatch queue across all tenants.
    tenant_quota:
        Maximum unfinished admitted jobs one tenant may hold; admits
        beyond it get a structured ``"over-quota"`` reject.  ``None``
        disables quotas.
    prediction_overhead, lookahead, charge_unstarted_migration:
        Exactly the :class:`~repro.sim.simulator.SimulationConfig`
        semantics, applied per live activation.
    solver_wall_budget:
        Optional wall-clock budget (seconds) per primary solve; set, it
        wraps the strategy in an enforcing
        :class:`~repro.faults.watchdog.SolverWatchdog` over
        ``solver_fallback``.
    error_window, error_threshold, min_observations:
        Forwarded to the :class:`~repro.serve.depository.UsageDepository`
        reprovision trigger.
    reprovision_cooldown:
        Decisions after a reprovision pass during which predictions are
        suppressed (the no-prediction fallback path).
    journal_path:
        Write-ahead admission journal file (DESIGN.md §15); ``None``
        (default) disables durability.  An existing journal from the
        same service (matching :func:`~repro.serve.journal.service_fingerprint`)
        is replayed on construction — the crash-recovery path.
    journal_fsync:
        Whether every journal append is fsynced (default on: durable
        against power loss, not just process death).
    journal_required:
        With a journal configured, whether an admit whose *intent*
        record cannot be written is refused with ``journal-failed``
        (fail-stop, the safe default) instead of decided undurably.
        Outcome-append failures are always queued for re-append and
        flagged ``"durable": false`` — the decision already happened.
    snapshot_every:
        Decisions between journal snapshot records (engine fingerprint
        + metrics + depository — recovery verification waypoints);
        ``0`` disables snapshots.
    idempotency_cache:
        Bound on remembered idempotency keys (LRU beyond it).
    """

    host: str = "127.0.0.1"
    port: int = 0
    mode: str = "live"
    speed: float = 1.0
    queue_depth: int = 64
    dispatch_depth: int = 1024
    tenant_quota: int | None = None
    prediction_overhead: float = 0.0
    lookahead: int = 1
    charge_unstarted_migration: bool = False
    solver_wall_budget: float | None = None
    solver_fallback: str = "heuristic"
    error_window: int = 32
    error_threshold: float = 0.5
    min_observations: int = 8
    reprovision_cooldown: int = 16
    journal_path: str | None = None
    journal_fsync: bool = True
    journal_required: bool = True
    snapshot_every: int = 64
    idempotency_cache: int = 4096

    def __post_init__(self) -> None:
        if self.mode not in ("live", "replay"):
            raise ValueError(
                f"mode must be 'live' or 'replay', got {self.mode!r}"
            )
        if self.speed <= 0:
            raise ValueError(f"speed must be > 0, got {self.speed}")
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError(
                f"tenant_quota must be >= 1, got {self.tenant_quota}"
            )
        if self.lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {self.lookahead}")
        if self.prediction_overhead < 0:
            raise ValueError(
                "prediction_overhead must be >= 0, "
                f"got {self.prediction_overhead}"
            )
        if self.snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        if self.idempotency_cache < 1:
            raise ValueError(
                "idempotency_cache must be >= 1, "
                f"got {self.idempotency_cache}"
            )

    def make_clock(self) -> Clock:
        """The clock implied by the mode."""
        if self.mode == "replay":
            return VirtualClock()
        return WallClock(speed=self.speed)


class RequestLog:
    """The live stream's stand-in for a :class:`~repro.workload.trace.Trace`.

    Online predictors consume a trace *prefix*; the log grows one
    admitted-or-rejected request at a time and presents itself one
    longer than what has arrived (``len = observed + 1``), so
    :meth:`~repro.predict.base.OnlinePredictor.predict` at the newest
    index forecasts the next, still-unseen request.  A ``final`` frame
    closes the log, after which the length is exact and predictors
    return ``None`` at the tail — byte-for-byte the simulator's
    end-of-trace behaviour (the hinge of the parity tests).

    Oracle-style predictors that read ``trace[index + 1]`` ground truth
    simply raise ``IndexError`` here; the engine degrades that to the
    no-prediction path, so configuring an emulated predictor on a live
    server is safe but pointless.
    """

    def __init__(self, tasks: Sequence[TaskType]) -> None:
        if not tasks:
            raise ValueError("the service catalog needs at least one task")
        self.tasks = tuple(tasks)
        self.requests: list[Request] = []
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def n_resources(self) -> int:
        return self.tasks[0].n_resources

    def append(self, request: Request) -> None:
        if self._closed:
            raise RuntimeError("request log is closed (a 'final' frame "
                               "already ended the stream)")
        self.requests.append(request)

    def close(self) -> None:
        self._closed = True

    def task_of(self, request: Request) -> TaskType:
        return self.tasks[request.type_id]

    def __len__(self) -> int:
        return len(self.requests) + (0 if self._closed else 1)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> Request:
        return self.requests[index]


class AdmissionEngine:
    """The synchronous decision core shared by server and smoke driver.

    Mirrors ``Simulator._run``'s per-arrival step on an open-ended
    stream; see the module docstring for the parity contract.
    """

    def __init__(
        self,
        platform: Platform,
        strategy: MappingStrategy,
        predictor: Predictor | None,
        tasks: Sequence[TaskType],
        config: ServeConfig,
        *,
        clock: Clock | None = None,
    ) -> None:
        self.platform = platform
        self.config = config
        self.clock = clock if clock is not None else config.make_clock()
        self.strategy = strategy
        self.predictor = predictor or NullPredictor()
        self.predictor.reset()
        self._admission = AdmissionController(strategy)
        self.state = PlatformState(
            platform,
            charge_unstarted_migration=config.charge_unstarted_migration,
            clock=self.clock,
        )
        self.log = RequestLog(tasks)
        self.metrics = MetricsRegistry()
        self.depository = UsageDepository(
            error_window=config.error_window,
            error_threshold=config.error_threshold,
            min_observations=config.min_observations,
        )
        self.decisions = 0
        self._job_tenants: dict[int, str] = {}
        self._last_arrival = 0.0
        self._pending_forecast: PredictedRequest | None = None
        self._cooldown = 0

    @property
    def prediction_enabled(self) -> bool:
        return not isinstance(self.predictor, NullPredictor)

    @property
    def catalog(self) -> tuple[TaskType, ...]:
        return self.log.tasks

    # ------------------------------------------------------------------
    # Decision path
    # ------------------------------------------------------------------

    def decide(self, frame: AdmitRequest) -> AdmitResponse:
        """Make one admission decision (dispatcher thread/task only)."""
        if not 0 <= frame.task < len(self.catalog):
            raise ValueError(
                f"task {frame.task} outside the service catalog "
                f"(0..{len(self.catalog) - 1})"
            )
        arrival = frame.arrival
        if arrival is None:
            arrival = self.clock.now()
        # The stream is totally ordered by the dispatcher; a stale wall
        # reading or out-of-order declaration never moves time backwards.
        arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival

        if self._cooldown > 0:
            self._cooldown -= 1
        decision_time = max(arrival, self.state.time)
        self._complete(self.state.advance(decision_time))

        # Quota is judged *after* execution catches up to the arrival, so
        # jobs that finished in the meantime free their slots first.
        quota = self.config.tenant_quota
        if (
            quota is not None
            and self.depository.active_jobs(frame.tenant) >= quota
        ):
            return self._refuse(
                frame,
                "over-quota",
                detail=(
                    f"tenant {frame.tenant!r} holds "
                    f"{self.depository.active_jobs(frame.tenant)} active "
                    f"job(s), quota is {quota}"
                ),
                arrival=arrival,
            )

        index = len(self.log.requests)
        request = Request(
            index=index,
            arrival=arrival,
            type_id=frame.task,
            deadline=frame.deadline,
        )
        forecast = self._pending_forecast
        if forecast is not None:
            self.depository.score_forecast(
                predicted_type=forecast.type_id,
                actual_type=request.type_id,
                predicted_arrival=forecast.arrival,
                actual_arrival=request.arrival,
            )
            self._pending_forecast = None
        self.log.append(request)
        if frame.final:
            self.log.close()

        predictions = self._safe_predictions(index, decision_time)
        self._drain_predictor_events()
        if self.prediction_enabled and self.config.prediction_overhead > 0:
            decision_time += self.config.prediction_overhead
            self._complete(self.state.advance(decision_time))

        new_task = PlannedTask(
            job_id=request.index,
            task=self.catalog[request.type_id],
            absolute_deadline=request.absolute_deadline,
        )
        tasks = [*self.state.active_views(), new_task]
        tasks.extend(
            self._predicted_view(p, decision_time, offset)
            for offset, p in enumerate(predictions)
        )
        context = RMContext(
            time=decision_time,
            platform=self.platform,
            tasks=tuple(tasks),
            charge_unstarted_migration=(
                self.config.charge_unstarted_migration
            ),
            down_resources=frozenset(self.state.down),
        )
        outcome = self._admission.decide(context)
        self._drain_degradations()
        if outcome.admitted:
            assert outcome.decision is not None
            self.state.admit(request, self.catalog[request.type_id])
            self.state.apply_mapping(
                {
                    job_id: resource
                    for job_id, resource in outcome.decision.mapping.items()
                    if job_id < PREDICTED_JOB_ID
                }
            )
            self._job_tenants[request.index] = frame.tenant
            status = "accepted"
        else:
            status = "rejected"
        if predictions:
            self._pending_forecast = predictions[0]

        self.decisions += 1
        self.depository.record_decision(frame.tenant, status, decision_time)
        self._record_metrics(status, decision_time - arrival, outcome)
        self._maybe_reprovision(decision_time)
        return AdmitResponse(
            status=status,
            tenant=frame.tenant,
            job_id=request.index,
            decision_time=decision_time,
            used_prediction=outcome.used_prediction,
            solver_calls=outcome.solver_calls,
            id=frame.id,
            arrival=arrival,
        )

    def record_shed(
        self, tenant: str, correlation: str | int | None = None
    ) -> AdmitResponse:
        """A request refused at the door because the tenant's queue is
        full (counted like any decision, but the solver never runs)."""
        frame = AdmitRequest(
            tenant=tenant, task=0, deadline=1.0, id=correlation
        )
        return self._refuse(
            frame, "shed", detail="per-tenant admission queue is full"
        )

    def _refuse(
        self,
        frame: AdmitRequest,
        status: str,
        *,
        detail: str,
        arrival: float | None = None,
    ) -> AdmitResponse:
        decision_time = self.state.time
        self.decisions += 1
        self.depository.record_decision(frame.tenant, status, decision_time)
        self._record_metrics(status, 0.0, None)
        return AdmitResponse(
            status=status,
            tenant=frame.tenant,
            decision_time=decision_time,
            id=frame.id,
            detail=detail,
            arrival=arrival,
        )

    def drain(self) -> int:
        """Run the platform to completion (shutdown path); returns how
        many jobs finished during the drain."""
        completed = self.state.advance(self.state.completion_horizon())
        self._complete(completed)
        return len(completed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _complete(self, jobs: list) -> None:
        for job in jobs:
            tenant = self._job_tenants.pop(job.job_id, None)
            if tenant is not None:
                self.depository.record_completion(tenant)
            self.metrics.inc("serve/completed")

    def _safe_predictions(
        self, index: int, decision_time: float
    ) -> list[PredictedRequest]:
        """Query the predictor, degrading any fault to no-prediction
        (the simulator's ``_safe_predictions`` for a live stream)."""
        if not self.prediction_enabled or self._cooldown > 0:
            return []
        try:
            predictions = list(
                self.predictor.predict_horizon(
                    self.log, index, self.config.lookahead
                )
            )
        except Exception:  # noqa: BLE001 - degrade, don't die
            self.metrics.inc("serve/degradations")
            return []
        valid: list[PredictedRequest] = []
        for prediction in predictions:
            if (
                0 <= prediction.type_id < len(self.catalog)
                and math.isfinite(prediction.arrival)
                and math.isfinite(prediction.deadline)
                and prediction.deadline > 0
            ):
                valid.append(prediction)
            else:
                self.metrics.inc("serve/degradations")
        return valid

    def _predicted_view(
        self,
        prediction: PredictedRequest,
        decision_time: float,
        offset: int = 0,
    ) -> PlannedTask:
        arrival = max(prediction.arrival, decision_time)
        return PlannedTask(
            job_id=PREDICTED_JOB_ID + offset,
            task=self.catalog[prediction.type_id],
            absolute_deadline=arrival + prediction.deadline,
            is_predicted=True,
            arrival=arrival,
        )

    def _drain_degradations(self) -> None:
        drain = getattr(self._admission.strategy, "drain_events", None)
        if drain is None:
            return
        for _kind, _detail in drain():
            self.metrics.inc("serve/degradations")

    def _drain_predictor_events(self) -> None:
        """Fold drift-wrapper reactions into the live service state.

        The simulator's predictor drain for a live stream: each queued
        ``(kind, detail)`` pair (drift detection, retrain, fallback —
        see :class:`~repro.predict.drift.DriftingPredictor`) counts as a
        degradation plus a per-kind counter.  A ``predictor-fallback``
        additionally clears the depository's forecast-error window: the
        reprovision trigger must not fire later on the stale errors of a
        model that just took itself offline.  Everything here is a
        deterministic reaction to the request log, so a journal replay
        reproduces it bit-for-bit (metrics are outside the fingerprint;
        the window clear is inside and replays identically).
        """
        drain = getattr(self.predictor, "drain_events", None)
        if drain is None:
            return
        for kind, _detail in drain():
            self.metrics.inc("serve/degradations")
            self.metrics.inc(f"serve/{kind.replace('-', '_')}")
            if kind == "predictor-fallback":
                self.depository.clear_error_window()

    def _record_metrics(
        self, status: str, latency: float, outcome: AdmissionOutcome | None
    ) -> None:
        self.metrics.inc("serve/requests")
        self.metrics.inc(f"serve/{status.replace('-', '_')}")
        if outcome is not None:
            self.metrics.inc("solver/calls", outcome.solver_calls)
        self.metrics.observe(
            "serve/decision_latency", latency, bounds=_HISTOGRAM_BOUNDS
        )
        self.metrics.gauge_max(
            "serve/peak_active_jobs", float(len(self.state.jobs))
        )

    def _maybe_reprovision(self, decision_time: float) -> None:
        """Elasecutor-style reaction to sustained prediction error: cool
        the predictor down and re-solve the active mapping."""
        if self._cooldown > 0 or not self.depository.should_reprovision():
            return
        self._cooldown = self.config.reprovision_cooldown
        self.depository.mark_reprovisioned()
        self.metrics.inc("serve/reprovisions")
        if not self.state.jobs:
            return
        context = RMContext(
            time=decision_time,
            platform=self.platform,
            tasks=tuple(self.state.active_views()),
            charge_unstarted_migration=(
                self.config.charge_unstarted_migration
            ),
            down_resources=frozenset(self.state.down),
        )
        outcome = self._admission.remap(context)
        self._drain_degradations()
        if outcome.admitted and outcome.decision is not None:
            self.state.apply_mapping(
                {
                    job_id: resource
                    for job_id, resource in outcome.decision.mapping.items()
                    if job_id < PREDICTED_JOB_ID
                }
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Digest of the engine's replayable decision state.

        Covers exactly the state a journal replay reconstructs —
        platform state (``float.hex`` encoded, the PR 4 discipline),
        request log, depository (including the sliding error window),
        job→tenant map, pending forecast, cooldown — and deliberately
        *excludes* metrics: protocol errors and idempotent cache hits
        are live-path events a replay cannot (and need not) reproduce.
        A recovered server matching the pre-crash fingerprint is the
        chaos harness's central invariant.
        """
        digest = sha256()
        state = self.state
        digest.update(
            f"time:{_fhex(state.time)}|decisions:{self.decisions}".encode()
        )
        digest.update(
            (
                f"|energy:{_fhex(state.total_energy)},"
                f"{_fhex(state.migration_energy)},"
                f"{_fhex(state.wasted_energy)}"
                f"|migrations:{state.migration_count}"
                f"|aborts:{state.abort_count}"
                f"|finished:{len(state.finished)}"
            ).encode()
        )
        for job_id in sorted(state.jobs):
            job = state.jobs[job_id]
            digest.update(
                (
                    f"|job:{job_id}:{job.resource}:"
                    f"{_fhex(job.remaining_fraction)}:"
                    f"{int(job.started)}{int(job.running_non_preemptable)}:"
                    f"{_fhex(job.pending_migration_time)}:"
                    f"{_fhex(job.energy_consumed)}:"
                    f"{job.migrations}:{job.aborts}"
                ).encode()
            )
        digest.update(
            (
                f"|log:{len(self.log.requests)}:{int(self.log.closed)}"
                f"|last_arrival:{_fhex(self._last_arrival)}"
                f"|cooldown:{self._cooldown}"
            ).encode()
        )
        forecast = self._pending_forecast
        if forecast is not None:
            digest.update(
                (
                    f"|forecast:{forecast.type_id}:"
                    f"{_fhex(forecast.arrival)}:{_fhex(forecast.deadline)}"
                ).encode()
            )
        for job_id in sorted(self._job_tenants):
            digest.update(
                f"|tenant:{job_id}:{self._job_tenants[job_id]}".encode()
            )
        digest.update(b"|depository:")
        digest.update(
            json.dumps(self.depository.snapshot(), sort_keys=True).encode()
        )
        digest.update(
            (
                "|window:"
                + ",".join(
                    "1" if miss else "0"
                    for miss in self.depository.window_state()
                )
            ).encode()
        )
        return digest.hexdigest()

    def metrics_snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def stats(self) -> dict:
        return {
            "mode": self.config.mode,
            "time": self.state.time,
            "clock": self.clock.now(),
            "decisions": self.decisions,
            "active_jobs": len(self.state.jobs),
            "depository": self.depository.snapshot(),
        }


@dataclass
class RecoveryReport:
    """What a journal replay reconstructed (DESIGN.md §15).

    ``mismatches`` lists replayed decisions that diverged from the
    recorded ones — always empty under strict recovery, which raises
    instead.  ``idempotency`` maps recovered idempotency keys to their
    original response payloads so retried duplicates keep answering
    the original decision across the restart.
    """

    records: int = 0
    decisions: int = 0
    sheds: int = 0
    unacked: int = 0
    snapshots_checked: int = 0
    mismatches: list[str] = field(default_factory=list)
    idempotency: dict[str, dict] = field(default_factory=dict)
    #: (seq, arrival, response payload) of each re-decided unacked
    #: intent — the restarting server journals these outcomes *before*
    #: serving, so the next replay sees them in mutation order.
    unacked_results: list[tuple[int, float, dict]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "records": self.records,
            "decisions": self.decisions,
            "sheds": self.sheds,
            "unacked": self.unacked,
            "snapshots_checked": self.snapshots_checked,
            "mismatches": list(self.mismatches),
            "idempotency_keys": len(self.idempotency),
            "ok": self.ok,
        }


def _frame_payload(frame: AdmitRequest) -> dict:
    """The journal's canonical encoding of one admit frame.

    The correlation ``id`` is deliberately dropped: it names a
    connection-lifetime conversation, not the operation, and replay
    must not depend on it.
    """
    payload: dict = {
        "tenant": frame.tenant,
        "task": frame.task,
        "deadline": frame.deadline,
    }
    if frame.arrival is not None:
        payload["arrival"] = frame.arrival
    if frame.idem is not None:
        payload["idem"] = frame.idem
    if frame.final:
        payload["final"] = True
    return payload


def _frame_from_payload(
    payload: dict, arrival: float | None
) -> AdmitRequest:
    declared = payload.get("arrival")
    if arrival is None and declared is not None:
        arrival = float(declared)
    return AdmitRequest(
        tenant=str(payload["tenant"]),
        task=int(payload["task"]),
        deadline=float(payload["deadline"]),
        arrival=arrival,
        idem=payload.get("idem"),
        final=bool(payload.get("final", False)),
    )


def _parse_arrival(encoded: object) -> float | None:
    if not isinstance(encoded, str):
        return None
    if encoded == "inf":
        return math.inf
    try:
        return float.fromhex(encoded)
    except ValueError:
        return None


def recover_engine(
    engine: AdmissionEngine,
    records: Sequence[dict],
    *,
    strict: bool = True,
) -> RecoveryReport:
    """Replay journal records through a *freshly constructed* engine.

    The engine is a deterministic fold over the dispatched operation
    stream, so replaying every record in journal order reconstructs
    the pre-crash state exactly — snapshots are verified as waypoints,
    not used as truncation points (online predictor state is a fold
    over the full request log and cannot be resumed mid-stream).

    Outcome records carry the server-stamped arrival, so a journal
    written under a :class:`~repro.serve.clock.WallClock` still replays
    deterministically; only the clock itself restarts (§15's bounded
    divergence).  A trailing intent without an outcome — the crash
    window — is re-decided: its client never received a response, so
    whatever the replay decides *becomes* the decision, and the
    client's idempotent retry will return it.

    ``strict`` raises :class:`~repro.serve.journal.ServeJournalError`
    on any divergence between recorded and replayed decisions; pass
    ``False`` (the server does, when a wall-budget watchdog makes
    solves machine-dependent) to collect mismatches in the report
    instead.
    """
    report = RecoveryReport()
    intents: dict[int, dict] = {}

    def diverged(message: str) -> None:
        if strict:
            raise ServeJournalError(message)
        report.mismatches.append(message)

    def replay_decision(
        frame_payload: dict, arrival: float | None
    ) -> AdmitResponse | None:
        frame = _frame_from_payload(frame_payload, arrival)
        try:
            return engine.decide(frame)
        except Exception:  # noqa: BLE001 - the original op failed too
            return None

    def remember(frame_payload: dict, response: AdmitResponse | None) -> None:
        idem = frame_payload.get("idem")
        if (
            isinstance(idem, str)
            and response is not None
            and response.status in _CACHEABLE_STATUSES
        ):
            report.idempotency[idem] = response.to_payload()

    for record in records:
        report.records += 1
        kind = record.get("k")
        seq = record.get("seq")
        if kind == "i":
            intents[int(seq)] = dict(record.get("frame") or {})
        elif kind == "d":
            frame_payload = intents.pop(int(seq), None)
            recorded = record.get("response") or {}
            if frame_payload is None:
                diverged(f"seq {seq}: outcome record without intent")
                continue
            replayed = replay_decision(
                frame_payload, _parse_arrival(record.get("arrival"))
            )
            report.decisions += 1
            if recorded.get("ok", True):
                if replayed is None:
                    diverged(
                        f"seq {seq}: recorded {recorded.get('status')!r} "
                        "but replay raised"
                    )
                elif (
                    replayed.status != recorded.get("status")
                    or replayed.job_id != recorded.get("job_id")
                ):
                    diverged(
                        f"seq {seq}: recorded "
                        f"{recorded.get('status')}/{recorded.get('job_id')} "
                        f"but replayed {replayed.status}/{replayed.job_id}"
                    )
            elif replayed is not None:
                diverged(
                    f"seq {seq}: recorded an error outcome but replay "
                    f"decided {replayed.status!r}"
                )
            remember(frame_payload, replayed)
        elif kind == "s":
            engine.record_shed(str(record.get("tenant")))
            report.sheds += 1
        elif kind == "snap":
            report.snapshots_checked += 1
            expected = record.get("engine_fingerprint")
            actual = engine.fingerprint()
            if expected != actual:
                diverged(
                    f"seq {seq}: snapshot fingerprint {expected} != "
                    f"replayed {actual}"
                )
    # The crash window: intents whose outcome never hit the disk.  The
    # client never saw a response, so replay's verdict becomes *the*
    # decision (idempotent retries will return it).
    for seq in sorted(intents):
        frame_payload = intents[seq]
        replayed = replay_decision(frame_payload, None)
        report.unacked += 1
        if replayed is not None:
            outcome = {
                k: v for k, v in replayed.to_payload().items() if k != "id"
            }
        else:
            outcome = error_payload(
                "internal-error",
                "replay of an unacknowledged intent raised",
            )
        report.unacked_results.append((seq, engine._last_arrival, outcome))
        remember(frame_payload, replayed)
    return report


def prometheus_exposition(snapshot: MetricsSnapshot) -> str:
    """Render one metrics snapshot as Prometheus text exposition.

    Metric names are mangled ``serve/accepted`` → ``repro_serve_accepted``;
    histograms expose cumulative ``_bucket{le=...}`` plus ``_sum`` and
    ``_count`` series, counters and gauges one sample each.
    """

    def mangle(name: str) -> str:
        return "repro_" + name.replace("/", "_").replace("-", "_")

    lines: list[str] = []
    for name, value in snapshot.counters.items():
        metric = mangle(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.gauges.items():
        metric = mangle(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, histogram in snapshot.histograms.items():
        metric = mangle(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(
            histogram.bounds, histogram.counts, strict=False
        ):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += histogram.counts[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {histogram.total}")
        lines.append(f"{metric}_count {cumulative}")
    return "\n".join(lines) + "\n"


_STOP = object()


class AdmissionServer:
    """The asyncio daemon (see module docstring).

    ``strategy`` and ``predictor`` accept instances or registry names,
    exactly like :class:`~repro.sim.simulator.Simulator`.

    ``fault_plan`` arms the wire/journal fault-injection shim (chaos
    and fault tests only; ``None`` in production).
    """

    def __init__(
        self,
        platform: Platform,
        strategy: MappingStrategy | str,
        predictor: Predictor | str | None = None,
        *,
        tasks: Sequence[TaskType],
        config: ServeConfig | None = None,
        fault_plan: "ServeFaultPlan | None" = None,
    ) -> None:
        config = config or ServeConfig()
        strategy_label = (
            strategy if isinstance(strategy, str) else type(strategy).__name__
        )
        predictor_label = (
            "off"
            if predictor is None
            else (
                predictor
                if isinstance(predictor, str)
                else type(predictor).__name__
            )
        )
        if isinstance(strategy, str) or isinstance(predictor, str):
            from repro.registry import resolve_predictor, resolve_strategy

            if isinstance(strategy, str):
                strategy = resolve_strategy(strategy)
            if isinstance(predictor, str):
                predictor = resolve_predictor(predictor)
        if config.solver_wall_budget is not None:
            from repro.faults.watchdog import SolverWatchdog
            from repro.registry import resolve_strategy

            strategy = SolverWatchdog(
                strategy,
                resolve_strategy(config.solver_fallback),
                wall_budget=config.solver_wall_budget,
                enforce_budget=True,
            )
        self.config = config
        self.engine = AdmissionEngine(
            platform, strategy, predictor, tasks, config
        )
        self._server: asyncio.AbstractServer | None = None
        self._dispatch: asyncio.Queue = asyncio.Queue(
            maxsize=config.dispatch_depth
        )
        self._pending: dict[str, int] = {}
        self._dispatcher: asyncio.Task | None = None
        self._shutdown = asyncio.Event()
        self.port: int | None = None
        self._fault_plan = fault_plan
        self._responses = 0
        self._journal_appends = 0
        self._idem_cache: OrderedDict[str, dict] = OrderedDict()
        self._journal: AdmissionJournal | None = None
        self._next_seq = 0
        self.recovery: RecoveryReport | None = None
        if config.journal_path is not None:
            fingerprint = service_fingerprint(
                platform,
                tasks,
                config,
                strategy=strategy_label,
                predictor=predictor_label,
            )
            journal = AdmissionJournal(
                config.journal_path,
                fingerprint,
                fsync=config.journal_fsync,
                fault_hook=(
                    self._journal_fault_hook if fault_plan is not None else None
                ),
            )
            if journal.records:
                # Replay from genesis; strict unless a wall-budget
                # watchdog makes individual solves machine-dependent.
                self.recovery = recover_engine(
                    self.engine,
                    journal.records,
                    strict=config.solver_wall_budget is None,
                )
                for key, payload in self.recovery.idempotency.items():
                    self._remember(key, payload)
                # Unacked intents were re-decided during recovery;
                # journal their outcomes now, before any new op, so the
                # next replay sees them in mutation order.
                for seq, arrival, outcome in self.recovery.unacked_results:
                    if not journal.append_outcome(seq, arrival, outcome):
                        self.engine.metrics.inc("serve/journal_errors")
            self._journal = journal
            self._next_seq = journal.next_seq

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start dispatching (returns immediately)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def request_shutdown(self) -> None:
        """Begin a clean shutdown (idempotent)."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`request_shutdown`),
        then drain queued work and the platform, and close."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        await self._dispatch.put((_STOP, None))
        assert self._dispatcher is not None
        await self._dispatcher
        self.engine.drain()
        if self._journal is not None:
            # Drain completions are not journaled (replay re-derives
            # them from the decision stream); just settle pending
            # appends and release the handle.
            self._journal.close()

    async def run(self) -> None:
        """Start and serve until shutdown (the CLI entry point)."""
        await self.start()
        await self.serve_until_shutdown()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            frame, future = await self._dispatch.get()
            if frame is _STOP:
                break
            # The dispatcher must survive anything _execute lets
            # through (e.g. a fault hook raising a non-OSError): an
            # unhandled exception here would kill the task silently and
            # hang every queued and future admit.
            try:
                payload = self._execute(frame)
            except Exception as exc:  # noqa: BLE001 - report, don't die
                self.engine.metrics.inc("serve/errors")
                payload = error_payload(
                    "internal-error",
                    f"{type(exc).__name__}: {exc}",
                    id=frame.id,
                )
            finally:
                self._pending[frame.tenant] -= 1
            if not future.done():
                future.set_result(payload)

    def _execute(self, frame: AdmitRequest) -> dict:
        """One admit op: idempotency check, write-ahead intent, decision,
        commit-before-reply outcome.  Synchronous, so the whole sequence
        is atomic on the single-threaded event loop — journal order *is*
        engine mutation order, which is what makes replay exact.
        """
        if frame.idem is not None:
            cached = self._idem_cache.get(frame.idem)
            if cached is not None:
                self.engine.metrics.inc("serve/idempotent_hits")
                payload = dict(cached)
                payload["duplicate"] = True
                if frame.id is not None:
                    payload["id"] = frame.id
                return payload
        journal = self._journal
        seq = self._next_seq
        self._next_seq += 1
        durable = True
        if journal is not None:
            # Write-ahead half.  When durability is required, a frame
            # whose intent cannot be journaled is refused *before* any
            # engine mutation — no decision exists, so a retry after the
            # journal recovers is fresh, not a duplicate.
            wrote = journal.append_intent(
                seq,
                _frame_payload(frame),
                queue_on_failure=not self.config.journal_required,
            )
            if not wrote:
                self.engine.metrics.inc("serve/journal_errors")
                if self.config.journal_required:
                    return error_payload(
                        "journal-failed",
                        "admission journal unavailable; retry later",
                        id=frame.id,
                    )
                durable = False
        try:
            payload = self.engine.decide(frame).to_payload()
        except Exception as exc:  # noqa: BLE001 - report, don't die
            self.engine.metrics.inc("serve/errors")
            payload = error_payload(
                "internal-error",
                f"{type(exc).__name__}: {exc}",
                id=frame.id,
            )
        if journal is not None:
            record = {k: v for k, v in payload.items() if k != "id"}
            if not journal.append_outcome(
                seq, self.engine._last_arrival, record
            ):
                self.engine.metrics.inc("serve/journal_errors")
                durable = False
            self._maybe_snapshot()
        if (
            frame.idem is not None
            and payload.get("status") in _CACHEABLE_STATUSES
        ):
            self._remember(
                frame.idem, {k: v for k, v in payload.items() if k != "id"}
            )
        if not durable:
            payload["durable"] = False
        return payload

    def _remember(self, key: str, payload: dict) -> None:
        cache = self._idem_cache
        cache[key] = payload
        cache.move_to_end(key)
        while len(cache) > self.config.idempotency_cache:
            cache.popitem(last=False)

    def _journal_fault_hook(self, record: dict) -> bool:
        # Keyed on a monotonically increasing append *attempt* ordinal,
        # not the record's own seq: a queued record retries with fresh
        # ordinals, so a bounded fault window always clears.  Keying on
        # the fixed seq would wedge the pending queue forever once a
        # queued record's seq landed inside a window.
        del record
        plan = self._fault_plan
        if plan is None:
            return False
        ordinal = self._journal_appends
        self._journal_appends += 1
        return plan.journal_fault_at(ordinal)

    def _maybe_snapshot(self) -> None:
        journal = self._journal
        every = self.config.snapshot_every
        if journal is None or every <= 0:
            return
        if self.engine.decisions == 0 or self.engine.decisions % every != 0:
            return
        wrote = journal.append_snapshot(
            self._next_seq - 1,
            self.engine.fingerprint(),
            metrics=self.engine.metrics_snapshot().to_dict(hex_floats=True),
            depository=self.engine.depository.snapshot(),
        )
        if not wrote:
            self.engine.metrics.inc("serve/journal_errors")

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    @staticmethod
    async def _read_line(reader: asyncio.StreamReader) -> bytes | None:
        """One NDJSON line; ``None`` when it exceeds the frame limit
        (the stream can no longer be framed reliably)."""
        try:
            return await reader.readline()
        except ValueError:
            return None

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            line = await self._read_line(reader)
            if line is None:
                self.engine.metrics.inc("serve/protocol_errors")
                writer.write(encode_frame(self._frame_too_large()))
                await writer.drain()
                return
            if line.startswith(b"GET "):
                await self._serve_http(line, reader, writer)
                return
            responses: asyncio.Queue = asyncio.Queue()
            pump = asyncio.create_task(self._response_pump(responses, writer))
            try:
                while line:
                    await self._handle_line(line, responses)
                    if self._shutdown.is_set():
                        break
                    line = await self._read_line(reader)
                    if line is None:
                        # Oversized frame: answer, then drop the
                        # connection — framing is gone past this point.
                        self.engine.metrics.inc("serve/protocol_errors")
                        await responses.put(self._frame_too_large())
                        break
            finally:
                await responses.put(_STOP)
                await pump
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _frame_too_large() -> dict:
        return error_payload(
            "frame-too-large",
            f"frame exceeds {MAX_FRAME_BYTES} bytes; closing connection",
        )

    async def _response_pump(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Write responses in request order while the reader keeps
        reading — per-connection pipelining.

        This is also the wire-fault injection point: an armed
        :class:`~repro.faults.serve.ServeFaultPlan` can delay, truncate,
        garble, or abort mid-frame, keyed by the server-wide response
        ordinal (deterministic under a single driving client).
        """
        while True:
            item = await responses.get()
            if item is _STOP:
                return
            payload = await item if isinstance(item, asyncio.Future) else item
            data = encode_frame(payload)
            plan = self._fault_plan
            if plan is not None:
                ordinal = self._responses
                self._responses += 1
                delay = plan.latency_at(ordinal)
                if delay > 0:
                    self.engine.metrics.inc("serve/injected_latency")
                    await asyncio.sleep(delay)
                if plan.drop_at(ordinal):
                    # Half the frame, then RST: the crash-during-reply
                    # window idempotency keys exist for.
                    self.engine.metrics.inc("serve/injected_drops")
                    writer.write(data[: max(1, len(data) // 2)])
                    transport = writer.transport
                    if isinstance(transport, asyncio.WriteTransport):
                        transport.abort()
                    return
                kind = plan.corruption_at(ordinal)
                if kind == "truncate":
                    self.engine.metrics.inc("serve/injected_corruptions")
                    data = data[: max(1, len(data) // 2)]
                elif kind == "garbage":
                    self.engine.metrics.inc("serve/injected_corruptions")
                    data = plan.garbage_line(ordinal) + b"\n"
            writer.write(data)
            await writer.drain()

    async def _handle_line(
        self, line: bytes, responses: asyncio.Queue
    ) -> None:
        stripped = line.strip()
        if not stripped:
            return
        try:
            frame = decode_frame(stripped)
        except ProtocolError as exc:
            self.engine.metrics.inc("serve/protocol_errors")
            await responses.put(error_payload(exc.code, str(exc)))
            return
        if isinstance(frame, ControlRequest):
            await responses.put(self._control(frame))
            return
        if not 0 <= frame.task < len(self.engine.catalog):
            await responses.put(
                error_payload(
                    "bad-value",
                    f"task {frame.task} outside the service catalog "
                    f"(0..{len(self.engine.catalog) - 1})",
                    id=frame.id,
                )
            )
            return
        if self.config.mode == "replay" and frame.arrival is None:
            await responses.put(
                error_payload(
                    "missing-field",
                    "replay sessions must declare 'arrival' on every "
                    "admit frame",
                    id=frame.id,
                )
            )
            return
        if frame.idem is not None and frame.idem in self._idem_cache:
            # Duplicate of an already-committed decision: answer from the
            # cache even when the queue is full (a retry must never be
            # shed into a different outcome than its original).
            self.engine.metrics.inc("serve/idempotent_hits")
            cached = dict(self._idem_cache[frame.idem])
            cached["duplicate"] = True
            if frame.id is not None:
                cached["id"] = frame.id
            await responses.put(cached)
            return
        pending = self._pending.get(frame.tenant, 0)
        if pending >= self.config.queue_depth:
            await responses.put(self._shed(frame))
            return
        self._pending[frame.tenant] = pending + 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._dispatch.put((frame, future))
        await responses.put(future)

    def _shed(self, frame: AdmitRequest) -> dict:
        """Queue-full shed — journaled like every other engine mutation
        (``record_shed`` bumps the decision counters and depository, so
        replay has to see it too).  Sync, hence atomic w.r.t. the loop."""
        shed = self.engine.record_shed(frame.tenant, frame.id)
        payload = shed.to_payload()
        if self._journal is not None:
            seq = self._next_seq
            self._next_seq += 1
            durable = self._journal.append_shed(
                seq,
                frame.tenant,
                {k: v for k, v in payload.items() if k != "id"},
            )
            if not durable:
                self.engine.metrics.inc("serve/journal_errors")
                payload["durable"] = False
            self._maybe_snapshot()
        return payload

    def _control(self, frame: ControlRequest) -> dict:
        if frame.op == "ping":
            payload: dict = {
                "ok": True,
                "op": "pong",
                "time": self.engine.state.time,
            }
        elif frame.op == "metrics":
            payload = {
                "ok": True,
                "op": "metrics",
                "metrics": self.engine.metrics_snapshot().to_dict(),
            }
        elif frame.op == "stats":
            payload = {"ok": True, "op": "stats", **self.engine.stats()}
            payload["fingerprint"] = self.engine.fingerprint()
            if self._journal is not None:
                payload["journal"] = self._journal.stats().to_dict()
            if self.recovery is not None:
                payload["recovery"] = self.recovery.to_dict()
        else:  # shutdown
            self.request_shutdown()
            payload = {"ok": True, "op": "shutdown"}
        if frame.id is not None:
            payload["id"] = frame.id
        return payload

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One-shot ``GET /metrics`` (anything else is a 404)."""
        while True:  # drain the header block
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        target = request_line.split()[1].decode("latin-1")
        if target in ("/metrics", "/metrics/"):
            body = prometheus_exposition(self.engine.metrics_snapshot())
            status = "200 OK"
        else:
            body = f"not found: {target}\n"
            status = "404 Not Found"
        payload = body.encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status}\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + payload
        )
        await writer.drain()
