"""Async-safety rules for the live serve path (RPR10x).

PR 6 made the reproduction a long-running asyncio daemon; these rules
statically guard its event loop against the defect classes that silently
break sim/live parity:

``RPR101`` — blocking call inside ``async def``.
    ``time.sleep``, synchronous socket/subprocess work, plain ``open``
    file I/O, and construction of the blocking ``ServeClient`` all stall
    the event loop for every connection at once; use the asyncio
    equivalents or push the work onto an executor.
``RPR102`` — coroutine called but never awaited.
    A bare-statement call to an ``async def`` (or a known coroutine
    factory such as ``asyncio.sleep``) builds a coroutine object and
    drops it: the body never runs and Python only warns at garbage
    collection time.  Await it, or hand it to ``asyncio.create_task`` /
    ``gather`` when it should run concurrently.
``RPR103`` — shared engine state mutated off the dispatch queue.
    ``AdmissionEngine`` / ``UsageDepository`` objects are single-writer
    by design: every mutation flows through the dispatch queue consumed
    by one dispatcher task, which is what keeps live decisions ordered
    exactly like the simulator's.  An ``async def`` outside the
    configured dispatcher set that assigns through, or calls a mutating
    method on, a shared-state attribute chain re-introduces the
    interleaving the queue exists to prevent.
``RPR104`` — OS clock read bypassing the Clock protocol.
    Inside the serve packages, every time source must be a
    :class:`~repro.serve.clock.Clock` — ``time.*`` and asyncio's
    ``loop.time()`` readings diverge between replay and live modes and
    void the parity guarantee.  Only the Clock implementations
    themselves (``clock_exempt_prefixes``) may touch the OS clock.

All four rules are pure AST checks configured by
:class:`~repro.analysis.engine.LintConfig`; RPR103/RPR104 apply only to
modules under ``serve_prefixes``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    LintRule,
    RuleContext,
    register_rule,
)

__all__ = [
    "AsyncBlockingCallRule",
    "SharedStateRule",
    "ServeClockRule",
    "UnawaitedCoroutineRule",
]


@register_rule
class AsyncBlockingCallRule(LintRule):
    id = "RPR101"
    description = "blocking call inside async def stalls the event loop"

    def visit_call(
        self, ctx: RuleContext, node: ast.Call, dotted: str | None
    ) -> None:
        if dotted is None or not ctx.in_async_function():
            return
        terminal = dotted.split(".")[-1]
        if terminal in ctx.config.blocking_constructors:
            ctx.emit(
                self.id,
                node,
                f"{terminal}() opens a blocking connection inside "
                "'async def "
                f"{ctx.current_function()}'; use the asyncio streams API "
                "or run the client in a thread",
            )
            return
        blocking = dotted in ctx.config.blocking_call_names or any(
            dotted.startswith(prefix)
            for prefix in ctx.config.blocking_call_prefixes
        )
        if blocking:
            hint = (
                "use 'await asyncio.sleep(...)'"
                if dotted == "time.sleep"
                else "use the asyncio equivalent or loop.run_in_executor"
            )
            ctx.emit(
                self.id,
                node,
                f"blocking call {dotted}() inside 'async def "
                f"{ctx.current_function()}' stalls the event loop; {hint}",
            )


@register_rule
class UnawaitedCoroutineRule(LintRule):
    id = "RPR102"
    description = "coroutine called but never awaited or scheduled"

    def visit_expr(self, ctx: RuleContext, node: ast.Expr) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        dotted = ctx.dotted(call.func)
        if dotted is None:
            return
        terminal = dotted.split(".")[-1]
        is_coroutine = (
            dotted in ctx.config.async_known_coroutines
            or terminal in ctx.async_defs
        )
        if not is_coroutine:
            return
        ctx.emit(
            self.id,
            call,
            f"{dotted}() returns a coroutine whose result is discarded — "
            "the body never runs; await it or schedule it with "
            "asyncio.create_task/gather",
        )


@register_rule
class SharedStateRule(LintRule):
    id = "RPR103"
    description = "shared engine state mutated outside the dispatch queue"

    def _applies(self, ctx: RuleContext) -> bool:
        return (
            ctx.module_matches(ctx.config.serve_prefixes)
            and ctx.in_async_function()
            and ctx.current_function() not in ctx.config.dispatcher_functions
        )

    def _shared_root(
        self, ctx: RuleContext, chain: tuple[str, ...]
    ) -> str | None:
        """The shared-state attribute the chain passes through (skipping
        a leading ``self``), or ``None``."""
        for part in chain[:-1]:  # the terminal attr/method is the access
            if part in ctx.config.shared_state_roots:
                return part
        return None

    def visit_assign(
        self, ctx: RuleContext, node: ast.Assign | ast.AugAssign
    ) -> None:
        if not self._applies(ctx):
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            base = target
            # Writes through a subscript (engine.jobs[k] = v) count too.
            while isinstance(base, ast.Subscript):
                base = base.value
            chain = ctx.attribute_chain(base)
            if len(chain) < 2:
                continue
            root = self._shared_root(ctx, chain)
            if root is not None:
                ctx.emit(
                    self.id,
                    node,
                    f"assignment through shared '{root}' state in 'async "
                    f"def {ctx.current_function()}'; engine state is "
                    "single-writer — route the mutation through the "
                    "dispatch queue",
                )

    def visit_call(
        self, ctx: RuleContext, node: ast.Call, dotted: str | None
    ) -> None:
        if not self._applies(ctx):
            return
        chain = ctx.attribute_chain(node.func)
        if len(chain) < 2:
            return
        method = chain[-1]
        if method not in ctx.config.shared_state_mutators:
            return
        root = self._shared_root(ctx, chain)
        if root is not None:
            ctx.emit(
                self.id,
                node,
                f"call to mutating {'.'.join(chain)}() in 'async def "
                f"{ctx.current_function()}' bypasses the dispatch queue; "
                "only the dispatcher task may drive shared engine state",
            )


@register_rule
class ServeClockRule(LintRule):
    id = "RPR104"
    description = "OS clock read in serve logic bypassing the Clock protocol"

    def visit_call(
        self, ctx: RuleContext, node: ast.Call, dotted: str | None
    ) -> None:
        if not ctx.module_matches(ctx.config.serve_prefixes):
            return
        if ctx.module_matches(ctx.config.clock_exempt_prefixes):
            return
        if dotted is None:
            return
        if (
            dotted in ctx.config.monotonic_names
            or dotted in ctx.config.wall_clock_names
        ):
            ctx.emit(
                self.id,
                node,
                f"{dotted}() in serve logic bypasses the Clock protocol; "
                "read time via the engine's clock (Clock.now) so replay "
                "and live modes stay interchangeable",
            )
            return
        # asyncio's event-loop clock is just as much a wall clock here.
        if dotted == "loop.time" or dotted.endswith(".loop.time"):
            ctx.emit(
                self.id,
                node,
                "event-loop clock read in serve logic bypasses the Clock "
                "protocol; read time via Clock.now",
            )
