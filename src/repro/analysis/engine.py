"""The pluggable rule engine behind the custom lint pass.

:mod:`repro.analysis.lint` began life (PR 2) as a hardcoded four-rule
visitor; this module is the framework it grew into.  The pieces:

* :class:`LintRule` — one rule: a stable ``id`` (``RPR...``), a one-line
  ``description`` (both a public contract, pinned by tests), and visitor
  hooks the engine calls while walking a module's AST.  Rules register
  themselves with :func:`register_rule` and are instantiated per file.
* :class:`ProjectRule` — a cross-file rule (e.g. the RPR2xx protocol
  exhaustiveness checker) that inspects a directory of related sources
  instead of one AST.
* :class:`LintConfig` — every allowlist and name-set the rules consult,
  as data.  Nothing about *where* a timer or a constructor is legal is
  hardcoded in rule logic; per-path policy lives here and tests can
  build narrower or wider configs.
* :class:`RuleContext` — what the engine shows a rule at each hook:
  module name, alias-resolved dotted paths, the enclosing function
  stack (and whether it is async), and ``emit``.
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` /
  :func:`lint_package` — the entry points, unchanged in shape since
  PR 2 but now driving whichever rules the config enables, applying
  ``# noqa`` suppression, and running project rules over any scanned
  directory that looks like a protocol package.

Baseline suppression (committed, justified exemptions) is layered on
top by :mod:`repro.analysis.baseline`; the engine itself only produces
raw findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "LintConfig",
    "LintFinding",
    "LintRule",
    "ProjectRule",
    "PROJECT_RULE_REGISTRY",
    "RULE_REGISTRY",
    "RuleContext",
    "SATELLITE_RULE_DESCRIPTIONS",
    "all_rule_descriptions",
    "all_rule_ids",
    "findings_to_payload",
    "lint_file",
    "lint_package",
    "lint_paths",
    "lint_source",
    "register_rule",
    "register_satellite_rule",
    "render_findings",
    "select_rules",
]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

_RULE_ID_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and where exemptions apply — policy as data.

    Every name-set the rules consult lives here so per-path policy is
    configurable (and testable) instead of frozen into rule logic.
    The defaults encode the repository's own contracts.

    Attributes
    ----------
    rules:
        Enabled rule ids; defaults to every registered rule.
    exclude_globs:
        ``fnmatch`` patterns (against POSIX-style paths) skipped by the
        directory walkers — deliberately-bad lint fixtures by default.
    stdlib_random_fns:
        Module-level functions of stdlib ``random`` (global state) that
        RPR001 flags.
    numpy_random_safe:
        ``numpy.random`` attributes that are *not* the legacy
        global-state API.
    wall_clock_names:
        Wall-clock reads RPR002 bans everywhere.
    monotonic_names:
        Monotonic duration timers RPR002 confines to
        ``monotonic_allowed_prefixes``.
    monotonic_allowed_prefixes:
        Module prefixes where monotonic duration timers are legitimate
        (observability layers, the wall-clock adapter, tests).
    registry_classes:
        Registered classes whose direct construction bypasses the
        registry (RPR003).
    registry_allowed_prefixes:
        Module prefixes allowed to construct those classes directly.
    blocking_call_names:
        Exact dotted calls RPR101 flags inside ``async def``.
    blocking_call_prefixes:
        Dotted prefixes (e.g. ``socket.``) RPR101 flags inside
        ``async def``.
    blocking_constructors:
        Class names whose construction performs blocking I/O
        (``ServeClient`` opens a socket in ``__init__``).
    async_known_coroutines:
        Dotted names known to return coroutines (RPR102 flags their
        bare-statement calls even without a local ``async def``).
    serve_prefixes:
        Module prefixes holding event-loop engine logic; RPR103 and
        RPR104 apply only there.
    clock_exempt_prefixes:
        Modules inside ``serve_prefixes`` that *implement* the Clock
        protocol and may read the OS clock (RPR104).
    shared_state_roots:
        Attribute names naming loop/thread-shared engine objects
        (RPR103 watches attribute chains through them).
    shared_state_mutators:
        Method names that mutate those objects; calling one outside the
        dispatcher is a finding.
    dispatcher_functions:
        ``async def`` names allowed to mutate shared engine state (the
        dispatch-queue consumer).
    """

    rules: frozenset[str] = field(default_factory=lambda: all_rule_ids())
    exclude_globs: tuple[str, ...] = ("*tests/analysis/fixtures/*",)

    # -- RPR001 -------------------------------------------------------
    stdlib_random_fns: frozenset[str] = frozenset(
        {
            "betavariate", "choice", "choices", "expovariate", "gammavariate",
            "gauss", "getrandbits", "getstate", "lognormvariate",
            "normalvariate", "paretovariate", "randbytes", "randint",
            "random", "randrange", "sample", "seed", "setstate", "shuffle",
            "triangular", "uniform", "vonmisesvariate", "weibullvariate",
        }
    )
    numpy_random_safe: frozenset[str] = frozenset(
        {
            "BitGenerator", "Generator", "MT19937", "PCG64", "PCG64DXSM",
            "Philox", "RandomState", "SFC64", "SeedSequence", "default_rng",
        }
    )

    # -- RPR002 -------------------------------------------------------
    wall_clock_names: frozenset[str] = frozenset(
        {
            "time.asctime", "time.ctime", "time.gmtime", "time.localtime",
            "time.strftime", "time.time", "time.time_ns",
            "datetime.date.today", "datetime.datetime.now",
            "datetime.datetime.today", "datetime.datetime.utcnow",
        }
    )
    monotonic_names: frozenset[str] = frozenset(
        {
            "time.monotonic", "time.monotonic_ns", "time.perf_counter",
            "time.perf_counter_ns", "time.process_time",
            "time.process_time_ns",
        }
    )
    monotonic_allowed_prefixes: tuple[str, ...] = (
        "repro.experiments",
        "repro.cli",
        "repro.analysis",
        "repro.perf",
        "repro.faults",
        "repro.obs",
        "repro.serve.clock",
        "repro.serve.smoke",
        "repro.serve.chaos",
        "tests",
    )

    # -- RPR003 -------------------------------------------------------
    registry_classes: frozenset[str] = frozenset(
        {
            "HeuristicResourceManager", "MilpResourceManager",
            "ExactResourceManager", "OraclePredictor", "ComposedPredictor",
            "TypeNoisePredictor", "ArrivalNoisePredictor",
        }
    )
    registry_allowed_prefixes: tuple[str, ...] = (
        "repro.registry",
        "repro.core",
        "repro.predict",
        "tests",
    )

    # -- RPR101 -------------------------------------------------------
    blocking_call_names: frozenset[str] = frozenset(
        {
            "time.sleep",
            "socket.create_connection", "socket.getaddrinfo",
            "socket.gethostbyname", "socket.socket",
            "subprocess.call", "subprocess.check_call",
            "subprocess.check_output", "subprocess.run",
            "os.system", "os.wait", "os.waitpid",
            "urllib.request.urlopen",
            "open",
        }
    )
    blocking_call_prefixes: tuple[str, ...] = ("socket.", "subprocess.")
    blocking_constructors: frozenset[str] = frozenset({"ServeClient"})

    # -- RPR102 -------------------------------------------------------
    async_known_coroutines: frozenset[str] = frozenset(
        {"asyncio.sleep", "asyncio.gather", "asyncio.wait_for"}
    )

    # -- RPR103 / RPR104 ----------------------------------------------
    serve_prefixes: tuple[str, ...] = ("repro.serve",)
    clock_exempt_prefixes: tuple[str, ...] = ("repro.serve.clock",)
    shared_state_roots: frozenset[str] = frozenset({"engine", "depository"})
    shared_state_mutators: frozenset[str] = frozenset(
        {
            "admit", "advance", "apply_mapping", "decide", "drain",
            "mark_reprovisioned", "record_completion", "record_decision",
            "record_shed", "score_forecast",
        }
    )
    dispatcher_functions: frozenset[str] = frozenset({"_dispatch_loop"})


def module_matches(module: str, prefixes: Sequence[str]) -> bool:
    """Whether ``module`` equals or sits under one of the prefixes."""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass
class _FunctionFrame:
    """One entry of the enclosing-function stack."""

    name: str
    is_async: bool


class RuleContext:
    """Per-file state the engine shares with every rule."""

    def __init__(self, module: str, config: LintConfig) -> None:
        self.module = module
        self.config = config
        self.findings: list[LintFinding] = []
        #: Local alias -> canonical dotted module/attribute path.
        self.aliases: dict[str, str] = {}
        #: Enclosing (possibly nested) function definitions, outermost
        #: first; empty at module level.
        self.function_stack: list[_FunctionFrame] = []
        #: Names of functions defined inside enclosing functions
        #: (closure candidates for RPR004).
        self.nested_defs: set[str] = set()
        #: Names of every ``async def`` in the module (pre-scanned).
        self.async_defs: set[str] = set()

    # -- queries ------------------------------------------------------

    def dotted(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, alias-resolved."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def attribute_chain(self, node: ast.expr) -> tuple[str, ...]:
        """The raw (unresolved) name parts of an attribute chain,
        outermost name first; empty when the chain does not bottom out
        in a plain name (e.g. a call result)."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return ()
        parts.append(current.id)
        return tuple(reversed(parts))

    def in_async_function(self) -> bool:
        """Whether the innermost enclosing function is ``async def``."""
        return bool(self.function_stack) and self.function_stack[-1].is_async

    def current_function(self) -> str | None:
        """Name of the innermost enclosing function (None at module level)."""
        return self.function_stack[-1].name if self.function_stack else None

    def module_matches(self, prefixes: Sequence[str]) -> bool:
        return module_matches(self.module, prefixes)

    # -- output -------------------------------------------------------

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        """Record one finding (path is stamped by :func:`lint_source`)."""
        if rule not in self.config.rules:
            return
        self.findings.append(
            LintFinding(
                rule=rule,
                path="",
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )


class LintRule:
    """Base class of one registered AST rule.

    Subclasses set ``id`` and ``description`` (both public contract —
    pinned by the rule-id stability test) and override whichever hooks
    they need.  A fresh instance is created per linted file, so hooks
    may keep per-file state on ``self``.
    """

    id: str = ""
    description: str = ""

    def begin_module(self, ctx: RuleContext, tree: ast.Module) -> None:
        """Called once before the walk (pre-scan hook)."""

    def visit_call(
        self, ctx: RuleContext, node: ast.Call, dotted: str | None
    ) -> None:
        """Called for every ``ast.Call`` (dotted is alias-resolved)."""

    def visit_assign(
        self, ctx: RuleContext, node: ast.Assign | ast.AugAssign
    ) -> None:
        """Called for every assignment / augmented assignment."""

    def visit_expr(self, ctx: RuleContext, node: ast.Expr) -> None:
        """Called for every expression statement (discarded result)."""

    def enter_function(
        self, ctx: RuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Called when the walk enters a function definition."""

    def end_module(self, ctx: RuleContext) -> None:
        """Called once after the walk (flush hook)."""


class ProjectRule:
    """Base class of one cross-file rule.

    ``check`` receives a directory of related sources (e.g. the serve
    package) and returns findings with real paths already attached.
    :func:`lint_paths` runs every registered project rule over each
    scanned directory that :meth:`applies_to` accepts.
    """

    id: str = ""
    description: str = ""

    def applies_to(self, directory: Path) -> bool:
        raise NotImplementedError

    def check(self, directory: Path, config: LintConfig) -> list[LintFinding]:
        raise NotImplementedError


#: Rule id -> rule class (AST rules).
RULE_REGISTRY: dict[str, type[LintRule]] = {}

#: Rule id -> rule class (cross-file rules).
PROJECT_RULE_REGISTRY: dict[str, type[ProjectRule]] = {}

#: Rule id -> description for ids emitted by a registered rule beyond
#: its own (e.g. the protocol checker's RPR202/RPR203 satellites).
SATELLITE_RULE_DESCRIPTIONS: dict[str, str] = {}


def register_satellite_rule(rule_id: str, description: str) -> None:
    """Declare an extra rule id (with description) owned by a registered
    rule, so catalogues, selection, and config defaults see it."""
    if not _RULE_ID_RE.match(rule_id):
        raise ValueError(f"rule id must match RPR\\d{{3}}, got {rule_id!r}")
    if not description:
        raise ValueError(f"rule {rule_id} needs a one-line description")
    if rule_id in RULE_REGISTRY or rule_id in PROJECT_RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    SATELLITE_RULE_DESCRIPTIONS[rule_id] = description


def all_rule_ids() -> frozenset[str]:
    """Every known rule id, including RPR000 and satellite ids."""
    return frozenset(
        {
            "RPR000",
            *RULE_REGISTRY,
            *PROJECT_RULE_REGISTRY,
            *SATELLITE_RULE_DESCRIPTIONS,
        }
    )


def register_rule(
    cls: type[LintRule] | type[ProjectRule],
) -> type[LintRule] | type[ProjectRule]:
    """Class decorator adding a rule to the engine's registry."""
    if not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"rule id must match RPR\\d{{3}}, got {cls.id!r}")
    if not cls.description:
        raise ValueError(f"rule {cls.id} needs a one-line description")
    registry: dict = (
        PROJECT_RULE_REGISTRY
        if isinstance(cls, type) and issubclass(cls, ProjectRule)
        else RULE_REGISTRY
    )
    if cls.id in all_rule_ids():
        raise ValueError(f"duplicate rule id {cls.id}")
    registry[cls.id] = cls
    return cls


def all_rule_descriptions() -> dict[str, str]:
    """Every registered rule id -> description, plus the engine's own
    RPR000 parse-failure pseudo-rule, id-sorted."""
    catalogue = {"RPR000": "file does not parse"}
    for rule_id, cls in {**RULE_REGISTRY, **PROJECT_RULE_REGISTRY}.items():
        catalogue[rule_id] = cls.description
    catalogue.update(SATELLITE_RULE_DESCRIPTIONS)
    return dict(sorted(catalogue.items()))


def select_rules(tokens: Iterable[str]) -> frozenset[str]:
    """Expand rule selectors (exact ids or prefixes) to enabled ids.

    ``select_rules(["RPR10"])`` enables the whole async family;
    ``select_rules(["RPR001", "RPR2"])`` mixes an id and a family.
    Unknown selectors raise ``ValueError`` so typos fail loudly.
    """
    known = set(all_rule_ids())
    selected: set[str] = set()
    for token in tokens:
        token = token.strip().upper()
        if not token:
            continue
        matches = {rule for rule in known if rule.startswith(token)}
        if not matches:
            raise ValueError(
                f"unknown rule selector {token!r} "
                f"(known rules: {', '.join(sorted(known))})"
            )
        selected |= matches
    return frozenset(selected)


class _EngineVisitor(ast.NodeVisitor):
    """Single-file walk dispatching to the enabled rules."""

    def __init__(self, ctx: RuleContext, rules: Sequence[LintRule]) -> None:
        self.ctx = ctx
        self.rules = rules

    # -- imports ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.ctx.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.ctx.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- scopes -------------------------------------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, is_async: bool
    ) -> None:
        if self.ctx.function_stack:
            self.ctx.nested_defs.add(node.name)
        self.ctx.function_stack.append(_FunctionFrame(node.name, is_async))
        for rule in self.rules:
            rule.enter_function(self.ctx, node)
        self.generic_visit(node)
        self.ctx.function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    # -- dispatch -----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.dotted(node.func)
        for rule in self.rules:
            rule.visit_call(self.ctx, node, dotted)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for rule in self.rules:
            rule.visit_assign(self.ctx, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for rule in self.rules:
            rule.visit_assign(self.ctx, node)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        for rule in self.rules:
            rule.visit_expr(self.ctx, node)
        self.generic_visit(node)


class _AsyncDefCollector(ast.NodeVisitor):
    """Pre-scan: every ``async def`` name in the module (methods too)."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.names.add(node.name)
        self.generic_visit(node)


def _suppressed(lines: Sequence[str], finding: LintFinding) -> bool:
    """Whether the finding's source line carries a matching ``# noqa``."""
    if not 1 <= finding.line <= len(lines):
        return False
    match = _NOQA_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return finding.rule in {c.strip().upper() for c in codes.split(",")}


def _derive_module(path: Path) -> str:
    """Best-effort dotted module name for ``path``: ``repro.x.y`` inside
    the package, ``tests.x.y`` inside the test tree, the stem otherwise."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro", "tests"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or [parts[0] if parts else "repro"]
    return ".".join(parts)


def _active_rules(config: LintConfig) -> list[LintRule]:
    return [
        cls()
        for rule_id, cls in sorted(RULE_REGISTRY.items())
        if rule_id in config.rules
    ]


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> list[LintFinding]:
    """Lint one source text; returns findings sorted by location."""
    config = config or LintConfig()
    if module is None:
        module = _derive_module(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                rule="RPR000",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = RuleContext(module, config)
    collector = _AsyncDefCollector()
    collector.visit(tree)
    ctx.async_defs = collector.names
    rules = _active_rules(config)
    for rule in rules:
        rule.begin_module(ctx, tree)
    _EngineVisitor(ctx, rules).visit(tree)
    for rule in rules:
        rule.end_module(ctx)
    lines = source.splitlines()
    findings = [
        LintFinding(
            rule=f.rule, path=path, line=f.line, col=f.col, message=f.message
        )
        for f in ctx.findings
        if not _suppressed(lines, f)
    ]
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str | Path,
    *,
    module: str | None = None,
    config: LintConfig | None = None,
) -> list[LintFinding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=str(path),
        module=module,
        config=config,
    )


def _excluded(path: Path, config: LintConfig) -> bool:
    posix = path.as_posix()
    return any(fnmatch(posix, pattern) for pattern in config.exclude_globs)


def _iter_python_files(
    paths: Iterable[str | Path], config: LintConfig
) -> Iterator[Path]:
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                if not _excluded(file, config):
                    yield file
        elif entry.suffix == ".py":
            # Explicitly-named files are always linted: exclude_globs
            # prunes directory walks, it does not veto direct requests.
            yield entry


def run_project_rules(
    files: Sequence[Path], config: LintConfig
) -> list[LintFinding]:
    """Run every enabled cross-file rule over the scanned directories."""
    directories = sorted({file.parent for file in files})
    rules = [
        cls()
        for rule_id, cls in sorted(PROJECT_RULE_REGISTRY.items())
        if rule_id in config.rules
    ]
    findings: list[LintFinding] = []
    for rule in rules:
        for directory in directories:
            if rule.applies_to(directory):
                findings.extend(rule.check(directory, config))
    return findings


def lint_paths(
    paths: Iterable[str | Path],
    *,
    config: LintConfig | None = None,
) -> list[LintFinding]:
    """Lint every ``.py`` file under the given files/directories (AST
    rules per file, then project rules per scanned directory)."""
    config = config or LintConfig()
    findings: list[LintFinding] = []
    files = list(_iter_python_files(paths, config))
    for file in files:
        findings.extend(lint_file(file, config=config))
    findings.extend(run_project_rules(files, config))
    return findings


def repo_tests_root() -> Path | None:
    """The repository's ``tests/`` tree, when running from a source
    checkout (``src/repro`` layout); ``None`` for an installed package."""
    package_root = Path(__file__).resolve().parent.parent
    candidate = package_root.parent.parent / "tests"
    return candidate if candidate.is_dir() else None


def lint_package(
    config: LintConfig | None = None, *, include_tests: bool = True
) -> list[LintFinding]:
    """Lint the ``repro`` package's own source tree (and, from a source
    checkout, the test suite alongside it).

    This is what ``repro analyze --self`` and the CI ``static-analysis``
    job run; a clean result — modulo the committed, justified baseline —
    is part of the repo's contract.
    """
    package_root = Path(__file__).resolve().parent.parent
    roots: list[Path] = [package_root]
    if include_tests:
        tests = repo_tests_root()
        if tests is not None:
            roots.append(tests)
    return lint_paths(roots, config=config)


def render_findings(findings: Sequence[LintFinding]) -> str:
    """Human-readable report, one finding per line plus a tally."""
    if not findings:
        return "lint: clean (0 findings)"
    lines = [f.render() for f in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def findings_to_payload(
    findings: Sequence[LintFinding],
    *,
    suppressed: int = 0,
    unused_baseline: Sequence[str] = (),
) -> dict:
    """The stable ``--json`` schema of ``repro analyze`` lint output."""
    return {
        "version": 1,
        "findings": [
            {
                "rule": f.rule,
                "path": str(f.path),
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
        "suppressed": suppressed,
        "unused_baseline": list(unused_baseline),
    }


# Typing aid for registrars that want the decorator's precise shape.
RuleDecorator = Callable[[type[LintRule]], type[LintRule]]
