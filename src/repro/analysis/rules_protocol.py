"""Protocol-exhaustiveness rules for the wire layer (RPR2xx).

The live service's wire contract is declared in one place —
``serve/protocol.py`` exports :data:`CONTROL_OPS` (the frame family) and
:data:`ERROR_CODES` (the stable machine-readable error identifiers) —
but *honoured* in three: the server must dispatch every declared op, the
client must be able to send it, and every error code must actually be
emitted somewhere (a declared-but-dead code is a contract nobody keeps;
an emitted-but-undeclared code is a contract nobody knows about).

These are cross-file checks, so they run as
:class:`~repro.analysis.engine.ProjectRule`\\ s over any scanned
directory containing a ``protocol.py`` + ``server.py`` pair:

``RPR201`` — control op declared but unhandled.
    An op in ``CONTROL_OPS`` that the server's dispatch never compares
    against (or that the client cannot send) is dead protocol surface.
``RPR202`` — error code declared but never emitted.
    A code in ``ERROR_CODES`` with no ``ProtocolError(code, ...)`` or
    ``error_payload(code, ...)`` site in the package.
``RPR203`` — error code emitted but not declared.
    An emit site using a code missing from ``ERROR_CODES``; clients
    cannot rely on codes the registry does not promise to keep stable.

The extraction is deliberately syntactic (string literals in comparisons
against ``.op``, ``"op"`` dict values, first-argument literals of the
emit helpers): the wire layer is written in exactly that style, and the
rigidity is the point — a handler added in a shape the checker cannot
see *should* fail CI until the dispatch stays greppable.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.engine import (
    LintConfig,
    LintFinding,
    ProjectRule,
    register_rule,
    register_satellite_rule,
)

__all__ = [
    "ProtocolSurface",
    "ProtocolExhaustivenessRule",
    "extract_surface",
]

_PROTOCOL_FILE = "protocol.py"
_SERVER_FILE = "server.py"
_CLIENT_FILE = "client.py"

#: Helpers whose first positional argument is a stable error code.
_EMIT_HELPERS = frozenset({"ProtocolError", "error_payload"})


class ProtocolSurface:
    """Everything the checker extracts from one protocol package."""

    def __init__(self) -> None:
        #: op -> (path, line) of the CONTROL_OPS declaration.
        self.declared_ops: dict[str, tuple[str, int]] = {}
        #: code -> (path, line) of the ERROR_CODES declaration.
        self.declared_codes: dict[str, tuple[str, int]] = {}
        self.has_error_registry = False
        #: code -> first (path, line) emitting it.
        self.emitted_codes: dict[str, tuple[str, int]] = {}
        #: ops the server dispatch handles.
        self.server_ops: set[str] = set()
        #: ops the client can put on the wire.
        self.client_ops: set[str] = set()


def _string_elts(node: ast.expr) -> list[tuple[str, int]]:
    """String constants inside a set/tuple/list literal (possibly
    wrapped in a ``frozenset(...)`` call), with line numbers."""
    if isinstance(node, ast.Call) and node.args:
        return _string_elts(node.args[0])
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return [
            (elt.value, elt.lineno)
            for elt in node.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ]
    return []


def _collect_declarations(
    tree: ast.Module, path: str, surface: ProtocolSurface
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        names = {
            target.id for target in node.targets if isinstance(target, ast.Name)
        }
        if "CONTROL_OPS" in names:
            for op, line in _string_elts(node.value):
                surface.declared_ops[op] = (path, line)
        if "ERROR_CODES" in names:
            surface.has_error_registry = True
            for code, line in _string_elts(node.value):
                surface.declared_codes[code] = (path, line)


def _collect_emits(
    tree: ast.Module, path: str, surface: ProtocolSurface
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name not in _EMIT_HELPERS or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            surface.emitted_codes.setdefault(
                first.value, (path, node.lineno)
            )


def _collect_op_handling(tree: ast.Module, into: set[str]) -> None:
    """Ops a module handles: string literals compared against an ``.op``
    attribute, plus ``"op"`` values of dict literals (response echoes
    and client frame builders)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            left = node.left
            involves_op = (
                isinstance(left, ast.Attribute) and left.attr == "op"
            ) or (isinstance(left, ast.Name) and left.id == "op")
            if involves_op:
                for comparator in node.comparators:
                    if isinstance(comparator, ast.Constant) and isinstance(
                        comparator.value, str
                    ):
                        into.add(comparator.value)
                    else:
                        into.update(
                            value for value, _ in _string_elts(comparator)
                        )
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values, strict=True):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "op"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    into.add(value.value)


def extract_surface(directory: Path) -> ProtocolSurface:
    """Parse the package's protocol/server/client trio into a surface."""
    surface = ProtocolSurface()
    for filename in (_PROTOCOL_FILE, _SERVER_FILE, _CLIENT_FILE):
        file = directory / filename
        if not file.is_file():
            continue
        try:
            tree = ast.parse(
                file.read_text(encoding="utf-8"), filename=str(file)
            )
        except SyntaxError:
            # The per-file pass reports unparsable sources as RPR000;
            # the cross-file surface just works with what it can read.
            continue
        path = str(file)
        _collect_emits(tree, path, surface)
        if filename == _PROTOCOL_FILE:
            _collect_declarations(tree, path, surface)
        elif filename == _SERVER_FILE:
            _collect_op_handling(tree, surface.server_ops)
        elif filename == _CLIENT_FILE:
            _collect_op_handling(tree, surface.client_ops)
    return surface


@register_rule
class ProtocolExhaustivenessRule(ProjectRule):
    id = "RPR201"
    description = "wire-protocol surface declared but unhandled (or vice versa)"

    #: The two satellite ids this project rule also owns; kept on the
    #: class so the catalogue and `select_rules` see the whole family.
    code_unused_id = "RPR202"
    code_undeclared_id = "RPR203"

    def applies_to(self, directory: Path) -> bool:
        return (directory / _PROTOCOL_FILE).is_file() and (
            directory / _SERVER_FILE
        ).is_file()

    def check(self, directory: Path, config: LintConfig) -> list[LintFinding]:
        surface = extract_surface(directory)
        protocol_path = str(directory / _PROTOCOL_FILE)
        findings: list[LintFinding] = []

        def emit(
            rule: str, path: str, line: int, message: str
        ) -> None:
            if rule in config.rules:
                findings.append(
                    LintFinding(
                        rule=rule, path=path, line=line, col=0, message=message
                    )
                )

        has_client = (directory / _CLIENT_FILE).is_file()
        for op, (path, line) in sorted(surface.declared_ops.items()):
            if op not in surface.server_ops:
                emit(
                    self.id,
                    path,
                    line,
                    f"control op {op!r} is declared in CONTROL_OPS but the "
                    "server dispatch never handles it",
                )
            if has_client and op not in surface.client_ops:
                emit(
                    self.id,
                    path,
                    line,
                    f"control op {op!r} is declared in CONTROL_OPS but the "
                    "client cannot send it",
                )

        if not surface.has_error_registry:
            emit(
                self.code_undeclared_id,
                protocol_path,
                1,
                "protocol.py declares no ERROR_CODES registry; stable "
                "error codes must be declared in one place",
            )
        else:
            for code, (path, line) in sorted(surface.declared_codes.items()):
                if code not in surface.emitted_codes:
                    emit(
                        self.code_unused_id,
                        path,
                        line,
                        f"error code {code!r} is declared in ERROR_CODES "
                        "but no handler ever emits it",
                    )
            for code, (path, line) in sorted(surface.emitted_codes.items()):
                if code not in surface.declared_codes:
                    emit(
                        self.code_undeclared_id,
                        path,
                        line,
                        f"error code {code!r} is emitted here but missing "
                        "from ERROR_CODES; clients cannot rely on "
                        "undeclared codes",
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return findings


register_satellite_rule(
    ProtocolExhaustivenessRule.code_unused_id,
    "error code declared in ERROR_CODES but never emitted",
)
register_satellite_rule(
    ProtocolExhaustivenessRule.code_undeclared_id,
    "error code emitted but missing from ERROR_CODES",
)
