"""Custom lint rules the generic linters cannot express — the facade.

Since PR 7 this module is a thin entry point over the rule-registry
engine (:mod:`repro.analysis.engine`); the rules themselves live in
family modules and register with the engine at import time:

* :mod:`repro.analysis.rules_core` — the determinism/picklability
  family: ``RPR001`` unseeded randomness (with a helper-taint dataflow
  leg), ``RPR002`` wall-clock reads, ``RPR003`` registry bypass,
  ``RPR004`` unpicklable ``RunSpec`` factories.
* :mod:`repro.analysis.rules_async` — the async-safety family guarding
  :mod:`repro.serve`: ``RPR101`` blocking calls in ``async def``,
  ``RPR102`` unawaited coroutines, ``RPR103`` shared engine state
  mutated off the dispatch queue, ``RPR104`` OS-clock reads bypassing
  the Clock protocol.
* :mod:`repro.analysis.rules_protocol` — the wire-contract family:
  ``RPR201`` declared-but-unhandled control ops, ``RPR202``
  declared-but-dead error codes, ``RPR203`` emitted-but-undeclared
  error codes (cross-file checks over protocol/server/client trios).

``RPR000`` (file does not parse) is the engine's own pseudo-rule.

Findings can be suppressed per line with ``# noqa: RPR00x`` (bare
``# noqa`` also works), or — for intentional, reviewed exemptions — via
the committed baseline file (:mod:`repro.analysis.baseline`).

:data:`LINT_RULES` (rule id -> one-line description) remains the public
contract of the pass: ids and descriptions are stable, and the rule-id
stability test pins them.
"""

from __future__ import annotations

# The engine carries the framework; importing the family modules is what
# populates the registry (each rule registers itself on import).
from repro.analysis import rules_async, rules_core, rules_protocol  # noqa: F401
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    BaselineResult,
    default_baseline_path,
)
from repro.analysis.engine import (
    PROJECT_RULE_REGISTRY,
    RULE_REGISTRY,
    LintConfig,
    LintFinding,
    LintRule,
    ProjectRule,
    all_rule_descriptions,
    findings_to_payload,
    lint_file,
    lint_package,
    lint_paths,
    lint_source,
    register_rule,
    render_findings,
    select_rules,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "BaselineResult",
    "LINT_RULES",
    "LintConfig",
    "LintFinding",
    "LintRule",
    "PROJECT_RULE_REGISTRY",
    "ProjectRule",
    "RULE_REGISTRY",
    "default_baseline_path",
    "findings_to_payload",
    "lint_file",
    "lint_package",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_findings",
    "select_rules",
]

#: Rule id -> one-line description (the lint pass's public contract).
LINT_RULES: dict[str, str] = all_rule_descriptions()
