"""Custom AST lint rules the generic linters cannot express.

The rules encode repo-wide contracts that keep the reproduction
deterministic and the parallel executor safe:

``RPR001`` — unseeded / global-state randomness.
    Calls into ``random``'s module-level functions or ``numpy.random``'s
    legacy global-state API, and ``numpy.random.default_rng()`` /
    ``RandomState()`` without a seed.  Every stochastic component must
    draw from an explicitly seeded generator (:mod:`repro.util.rng`), or
    results stop being reproducible.
``RPR002`` — wall-clock reads in deterministic logic.
    ``time.time()``-style wall-clock reads are banned everywhere;
    monotonic duration timers (``perf_counter`` ...) are allowed only in
    observability layers (``repro.experiments``, ``repro.cli``,
    ``repro.analysis``) — never in sim/sched/core logic, where they
    would leak host timing into results.
``RPR003`` — registry bypass.
    Direct construction of a registered strategy/predictor class
    outside its defining packages or :mod:`repro.registry`.  By-name
    resolution keeps specs picklable and keeps the registry the single
    source of truth (``NullPredictor``, the null object, is exempt).
``RPR004`` — unpicklable ``RunSpec`` factories.
    Lambdas (or closures over enclosing-function locals) passed to
    ``RunSpec`` do not pickle and break the process-pool executor; use
    ``RunSpec.from_names`` or module-level factories.

Findings can be suppressed per line with ``# noqa: RPR00x`` (bare
``# noqa`` also works), mirroring the convention of standard linters.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "LINT_RULES",
    "LintConfig",
    "LintFinding",
    "lint_file",
    "lint_package",
    "lint_paths",
    "lint_source",
    "render_findings",
]

#: Rule id -> one-line description (the lint pass's public contract).
LINT_RULES: dict[str, str] = {
    "RPR000": "file does not parse",
    "RPR001": "unseeded or global-state randomness",
    "RPR002": "wall-clock read in deterministic logic",
    "RPR003": "strategy/predictor construction bypassing repro.registry",
    "RPR004": "unpicklable lambda/closure in RunSpec construction",
}

#: Module-level functions of the stdlib ``random`` module (global state).
_STDLIB_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: ``numpy.random`` attributes that are *not* the legacy global-state API.
_NUMPY_RANDOM_SAFE = frozenset(
    {
        "BitGenerator", "Generator", "MT19937", "PCG64", "PCG64DXSM",
        "Philox", "RandomState", "SFC64", "SeedSequence", "default_rng",
    }
)

#: Wall-clock reads: never acceptable in this library.
_WALL_CLOCK = frozenset(
    {
        "time.asctime", "time.ctime", "time.gmtime", "time.localtime",
        "time.strftime", "time.time", "time.time_ns",
        "datetime.date.today", "datetime.datetime.now",
        "datetime.datetime.today", "datetime.datetime.utcnow",
    }
)

#: Monotonic duration timers: fine for observability, not for logic.
_MONOTONIC_CLOCK = frozenset(
    {
        "time.monotonic", "time.monotonic_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.process_time", "time.process_time_ns",
    }
)

#: Registered classes whose direct construction bypasses the registry.
_REGISTRY_CLASSES = frozenset(
    {
        "HeuristicResourceManager", "MilpResourceManager",
        "ExactResourceManager", "OraclePredictor", "ComposedPredictor",
        "TypeNoisePredictor", "ArrivalNoisePredictor",
    }
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and where exemptions apply.

    Attributes
    ----------
    rules:
        Enabled rule ids; defaults to every rule.
    monotonic_allowed_prefixes:
        Module prefixes where monotonic duration timers are legitimate
        (observability layers).
    registry_allowed_prefixes:
        Module prefixes allowed to construct strategy/predictor classes
        directly (the registry itself and the defining packages).
    """

    rules: frozenset[str] = frozenset(LINT_RULES)
    monotonic_allowed_prefixes: tuple[str, ...] = (
        "repro.experiments",
        "repro.cli",
        "repro.analysis",
        "repro.perf",
        "repro.faults",
        "repro.obs",
        "repro.serve",
    )
    registry_allowed_prefixes: tuple[str, ...] = (
        "repro.registry",
        "repro.core",
        "repro.predict",
    )


def _module_matches(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


class _Visitor(ast.NodeVisitor):
    """Single-file rule engine: alias-aware call inspection."""

    def __init__(self, module: str, config: LintConfig) -> None:
        self.module = module
        self.config = config
        self.findings: list[LintFinding] = []
        # Local alias -> canonical dotted module/attribute path.
        self.aliases: dict[str, str] = {}
        # Names of functions defined inside enclosing functions (closure
        # candidates for RPR004), per scope depth.
        self._function_depth = 0
        self._nested_defs: set[str] = set()

    # -- imports ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- scopes (for RPR004 closure detection) ------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._function_depth > 0:
            self._nested_defs.add(node.name)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- helpers ------------------------------------------------------

    def _dotted(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, alias-resolved."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.config.rules:
            return
        self.findings.append(
            LintFinding(
                rule=rule,
                path="",  # filled in by lint_source
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # -- calls (all four rules) ---------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._check_randomness(node, dotted)
            self._check_wall_clock(node, dotted)
            self._check_registry_bypass(node, dotted)
            self._check_runspec(node, dotted)
        self.generic_visit(node)

    def _check_randomness(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _STDLIB_RANDOM_FNS:
                self._emit(
                    "RPR001",
                    node,
                    f"call to global-state random.{parts[1]}(); draw from "
                    "a seeded numpy Generator (repro.util.rng) instead",
                )
            return
        if len(parts) >= 2 and parts[0] == "numpy" and parts[1] == "random":
            tail = parts[-1]
            if len(parts) == 3 and tail not in _NUMPY_RANDOM_SAFE:
                self._emit(
                    "RPR001",
                    node,
                    f"call to legacy global-state numpy.random.{tail}(); "
                    "use an explicitly seeded Generator",
                )
                return
            if tail in ("default_rng", "RandomState") and _unseeded(node):
                self._emit(
                    "RPR001",
                    node,
                    f"numpy.random.{tail}() without a seed is "
                    "nondeterministic; pass a derived seed "
                    "(repro.util.rng.derive_seed)",
                )

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        if dotted in _WALL_CLOCK:
            self._emit(
                "RPR002",
                node,
                f"wall-clock read {dotted}(); simulated time must come "
                "from the event loop, never the host clock",
            )
        elif dotted in _MONOTONIC_CLOCK and not _module_matches(
            self.module, self.config.monotonic_allowed_prefixes
        ):
            self._emit(
                "RPR002",
                node,
                f"{dotted}() outside the observability layers "
                f"({', '.join(self.config.monotonic_allowed_prefixes)}); "
                "sim/sched/core logic must stay clock-free",
            )

    def _check_registry_bypass(self, node: ast.Call, dotted: str) -> None:
        terminal = dotted.split(".")[-1]
        if terminal not in _REGISTRY_CLASSES:
            return
        if _module_matches(
            self.module, self.config.registry_allowed_prefixes
        ):
            return
        self._emit(
            "RPR003",
            node,
            f"direct {terminal}() construction bypasses repro.registry; "
            "use resolve_strategy/resolve_predictor (or RunSpec.from_names)",
        )

    def _check_runspec(self, node: ast.Call, dotted: str) -> None:
        if dotted.split(".")[-1] != "RunSpec":
            return
        suspicious: list[ast.expr] = list(node.args[1:3])
        suspicious.extend(
            kw.value
            for kw in node.keywords
            if kw.arg in ("strategy", "predictor")
        )
        for value in suspicious:
            if isinstance(value, ast.Lambda):
                self._emit(
                    "RPR004",
                    value,
                    "lambda passed to RunSpec does not pickle and cannot "
                    "be dispatched to worker processes; use "
                    "RunSpec.from_names or a module-level factory",
                )
            elif (
                isinstance(value, ast.Name)
                and value.id in self._nested_defs
            ):
                self._emit(
                    "RPR004",
                    value,
                    f"nested function {value.id!r} passed to RunSpec is a "
                    "closure and does not pickle; hoist it to module level "
                    "or use RunSpec.from_names",
                )


def _unseeded(node: ast.Call) -> bool:
    """True when a generator-constructor call carries no usable seed."""
    if node.keywords:
        return all(
            isinstance(kw.value, ast.Constant) and kw.value.value is None
            for kw in node.keywords
        ) and not node.args
    if not node.args:
        return True
    return all(
        isinstance(arg, ast.Constant) and arg.value is None
        for arg in node.args
    )


def _suppressed(lines: Sequence[str], finding: LintFinding) -> bool:
    """Whether the finding's source line carries a matching ``# noqa``."""
    if not 1 <= finding.line <= len(lines):
        return False
    match = _NOQA_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return finding.rule in {c.strip().upper() for c in codes.split(",")}


def _derive_module(path: Path) -> str:
    """Best-effort dotted module name for ``path`` (``repro.x.y`` when the
    file sits inside the package, its stem otherwise)."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["repro"]
    return ".".join(parts)


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> list[LintFinding]:
    """Lint one source text; returns findings sorted by location."""
    config = config or LintConfig()
    if module is None:
        module = _derive_module(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                rule="RPR000",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    visitor = _Visitor(module, config)
    visitor.visit(tree)
    lines = source.splitlines()
    findings = [
        LintFinding(
            rule=f.rule, path=path, line=f.line, col=f.col, message=f.message
        )
        for f in visitor.findings
        if not _suppressed(lines, f)
    ]
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str | Path,
    *,
    module: str | None = None,
    config: LintConfig | None = None,
) -> list[LintFinding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=str(path),
        module=module,
        config=config,
    )


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            yield entry


def lint_paths(
    paths: Iterable[str | Path],
    *,
    config: LintConfig | None = None,
) -> list[LintFinding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: list[LintFinding] = []
    for file in _iter_python_files(paths):
        findings.extend(lint_file(file, config=config))
    return findings


def lint_package(config: LintConfig | None = None) -> list[LintFinding]:
    """Lint the installed ``repro`` package's own source tree.

    This is what ``repro analyze --self`` and the CI ``static-analysis``
    job run; a clean result is part of the repo's contract.
    """
    package_root = Path(__file__).resolve().parent.parent
    return lint_paths([package_root], config=config)


def render_findings(findings: Sequence[LintFinding]) -> str:
    """Human-readable report, one finding per line plus a tally."""
    if not findings:
        return "lint: clean (0 findings)"
    lines = [f.render() for f in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)
