"""Committed, justified suppressions for the custom lint pass.

Some findings are intentional: the smoke driver really does read the
wall clock to report throughput, the shed path really does touch engine
counters from the connection task (await-free, so atomic on a
single-threaded loop).  Rather than sprinkling ``# noqa`` through the
code — invisible to review and silently orphaned when code moves — such
exemptions live in one committed *baseline file*, each with a one-line
justification the PR that adds it has to defend:

.. code-block:: text

    # analysis-baseline.txt
    RPR104 src/repro/serve/smoke.py -- driver-side throughput timing, not engine time

Format: ``<rule-id> <path> -- <justification>``, one entry per line,
``#`` comments and blank lines ignored.  Paths are slash-style and
matched as suffixes of the finding's path, so the file works from the
repo root, from CI checkouts, and against the absolute paths
``lint_package`` produces.  An entry with no justification is a parse
error; an entry that suppresses nothing is reported as *unused* (and
fails ``repro analyze``), so the baseline can only shrink or stay
honest — it never rots.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import LintFinding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "BaselineResult",
    "DEFAULT_BASELINE_NAME",
    "default_baseline_path",
]

#: The conventional baseline filename at the repository root.
DEFAULT_BASELINE_NAME = "analysis-baseline.txt"

_ENTRY_RE = re.compile(
    r"^(?P<rule>RPR\d{3})\s+(?P<path>\S+)\s+--\s+(?P<why>\S.*)$"
)


class BaselineError(ValueError):
    """The baseline file itself is malformed (bad line, no justification)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One suppression: a rule, a path suffix, and its justification."""

    rule: str
    path: str
    justification: str
    line: int = 0

    def matches(self, finding: LintFinding) -> bool:
        if finding.rule != self.rule:
            return False
        candidate = Path(finding.path).as_posix()
        return candidate == self.path or candidate.endswith("/" + self.path)

    def render(self) -> str:
        return f"{self.rule} {self.path} -- {self.justification}"


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    kept: list[LintFinding]
    suppressed: list[LintFinding]
    unused: list[BaselineEntry]

    @property
    def ok(self) -> bool:
        """Clean means nothing kept *and* no stale entries."""
        return not self.kept and not self.unused


@dataclass(frozen=True)
class Baseline:
    """A parsed baseline file (or an empty in-memory one)."""

    entries: tuple[BaselineEntry, ...] = ()
    source: str | None = None

    @classmethod
    def parse(cls, text: str, *, source: str | None = None) -> "Baseline":
        entries: list[BaselineEntry] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = _ENTRY_RE.match(line)
            if match is None:
                raise BaselineError(
                    f"{source or '<baseline>'}:{lineno}: cannot parse "
                    f"{line!r}; expected '<rule> <path> -- <justification>'"
                )
            entries.append(
                BaselineEntry(
                    rule=match.group("rule"),
                    path=Path(match.group("path")).as_posix(),
                    justification=match.group("why").strip(),
                    line=lineno,
                )
            )
        return cls(entries=tuple(entries), source=source)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        return cls.parse(path.read_text(encoding="utf-8"), source=str(path))

    def apply(self, findings: Sequence[LintFinding]) -> BaselineResult:
        """Split findings into kept / suppressed; report stale entries."""
        kept: list[LintFinding] = []
        suppressed: list[LintFinding] = []
        used: set[BaselineEntry] = set()
        for finding in findings:
            entry = next(
                (e for e in self.entries if e.matches(finding)), None
            )
            if entry is None:
                kept.append(finding)
            else:
                suppressed.append(finding)
                used.add(entry)
        unused = [e for e in self.entries if e not in used]
        return BaselineResult(kept=kept, suppressed=suppressed, unused=unused)

    def render(self) -> str:
        lines = [
            "# Static-analysis baseline: justified suppressions for",
            "# `repro analyze` (format: <rule> <path> -- <justification>).",
        ]
        lines.extend(entry.render() for entry in self.entries)
        return "\n".join(lines) + "\n"


def default_baseline_path() -> Path | None:
    """The repo-root ``analysis-baseline.txt`` of a source checkout
    (``None`` for an installed package or when the file is absent)."""
    package_root = Path(__file__).resolve().parent.parent
    candidate = package_root.parent.parent / DEFAULT_BASELINE_NAME
    return candidate if candidate.is_file() else None
