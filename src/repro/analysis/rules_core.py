"""The original determinism/picklability rule family (RPR00x).

These are the PR-2 rules, re-hosted on the rule-registry engine:

``RPR001`` — unseeded / global-state randomness.
    Calls into ``random``'s module-level functions or ``numpy.random``'s
    legacy global-state API, and ``numpy.random.default_rng()`` /
    ``RandomState()`` without a seed.  A module-local taint pass also
    follows generator construction through helper functions: a helper
    whose seed parameter defaults to ``None`` and flows into
    ``default_rng``/``RandomState`` is itself treated as a generator
    constructor — whether the generator is returned directly or through
    a local variable — so ``make_rng()`` with the seed omitted is
    flagged at the call site (an unseeded rng cannot be laundered
    through one level of indirection).  Classes whose ``__init__``
    stores a generator built from a ``None``-defaulted seed parameter
    (the ``repro.predict`` drift-detector/AR-fitter shape) are taint
    sources too: constructing one without a seed is flagged.
``RPR002`` — wall-clock reads in deterministic logic.
    ``time.time()``-style wall-clock reads are banned everywhere;
    monotonic duration timers (``perf_counter`` ...) are allowed only in
    the config's ``monotonic_allowed_prefixes`` (observability layers,
    the Clock adapter, tests) — never in sim/sched/core logic, where
    they would leak host timing into results.
``RPR003`` — registry bypass.
    Direct construction of a registered strategy/predictor class
    outside its defining packages or :mod:`repro.registry`
    (``NullPredictor``, the null object, is exempt).
``RPR004`` — unpicklable ``RunSpec`` factories.
    Lambdas (or closures over enclosing-function locals) passed to
    ``RunSpec`` do not pickle and break the process-pool executor.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    LintRule,
    RuleContext,
    register_rule,
)

__all__ = [
    "RandomnessRule",
    "RegistryBypassRule",
    "RunSpecRule",
    "WallClockRule",
]


def _unseeded(node: ast.Call) -> bool:
    """True when a generator-constructor call carries no usable seed."""
    if node.keywords:
        return all(
            isinstance(kw.value, ast.Constant) and kw.value.value is None
            for kw in node.keywords
        ) and not node.args
    if not node.args:
        return True
    return all(
        isinstance(arg, ast.Constant) and arg.value is None
        for arg in node.args
    )


class _RngHelperScanner(ast.NodeVisitor):
    """Find helpers and classes that construct a Generator from their
    own seed parameter (the taint sources of the RPR001 dataflow pass).

    A *function* qualifies when some ``return`` statement hands back a
    ``numpy.random.default_rng``/``RandomState`` call (alias-resolved
    via the module's import table) — either directly or through a local
    variable assigned from one — with no arguments or with a plain name
    that is one of the function's parameters defaulting to ``None``.  A
    *class* qualifies when its ``__init__`` stores such a generator on
    ``self`` built from a ``None``-defaulted constructor parameter (the
    drift-detector/AR-fitter shape: ``self._rng = default_rng(seed)``).
    Calling either without a concrete seed is then equivalent to calling
    ``default_rng()`` directly.
    """

    _RNG_CONSTRUCTORS = ("numpy.random.default_rng", "numpy.random.RandomState")

    def __init__(self, ctx: RuleContext) -> None:
        self.ctx = ctx
        #: helper/class name -> ``(seed param, positional index)`` — the
        #: index is None for keyword-only seeds — or None when it takes
        #: no seed at all and is *always* unseeded.
        self.helpers: dict[str, tuple[str, int | None] | None] = {}
        #: names registered via a class ``__init__`` (message selection).
        self.class_like: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        optional = self._optional_params(node)
        assigned = self._rng_locals(node)
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Return):
                continue
            if isinstance(stmt.value, ast.Call):
                call = stmt.value
                dotted = self.ctx.dotted(call.func)
                if dotted not in self._RNG_CONSTRUCTORS:
                    continue
                seed_arg = self._seed_argument(call)
            elif (
                isinstance(stmt.value, ast.Name)
                and stmt.value.id in assigned
            ):
                # `rng = default_rng(seed); ...; return rng` launders
                # exactly like the direct-return shape
                seed_arg = assigned[stmt.value.id]
            else:
                continue
            self._register(node.name, seed_arg, optional, node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__init__"
            ):
                self._scan_init(node.name, stmt)
        self.generic_visit(node)

    def _scan_init(self, class_name: str, init: ast.FunctionDef) -> None:
        optional = self._optional_params(init)
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            if self.ctx.dotted(stmt.value.func) not in self._RNG_CONSTRUCTORS:
                continue
            stores_on_self = any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                for target in stmt.targets
            )
            if not stores_on_self:
                continue
            seed_arg = self._seed_argument(stmt.value)
            if self._register(
                class_name, seed_arg, optional, init, skip_self=True
            ):
                self.class_like.add(class_name)

    def _register(
        self,
        name: str,
        seed_arg: object,
        optional: set[str],
        node: ast.FunctionDef,
        *,
        skip_self: bool = False,
    ) -> bool:
        if seed_arg is _ALWAYS_UNSEEDED:
            self.helpers[name] = None
            return True
        if isinstance(seed_arg, str) and seed_arg in optional:
            self.helpers[name] = (
                seed_arg,
                self._positional_index(node, seed_arg, skip_self=skip_self),
            )
            return True
        return False

    @staticmethod
    def _positional_index(
        node: ast.FunctionDef, param: str, *, skip_self: bool
    ) -> int | None:
        """Where ``param`` sits in a call's positional args (None when it
        is keyword-only).  ``skip_self`` drops ``self`` for methods."""
        positional = [a.arg for a in node.args.posonlyargs + node.args.args]
        if skip_self and positional and positional[0] == "self":
            positional = positional[1:]
        if param in positional:
            return positional.index(param)
        return None

    def _rng_locals(self, node: ast.FunctionDef) -> dict[str, object]:
        """Plain locals assigned straight from a generator constructor,
        mapped to the seed argument of that construction."""
        assigned: dict[str, object] = {}
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            if self.ctx.dotted(stmt.value.func) not in self._RNG_CONSTRUCTORS:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    assigned[target.id] = self._seed_argument(stmt.value)
        return assigned

    @staticmethod
    def _optional_params(node: ast.FunctionDef) -> set[str]:
        """Parameters whose default is the constant ``None``."""
        args = node.args
        optional: set[str] = set()
        positional = args.posonlyargs + args.args
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults,
            strict=True,
        ):
            if isinstance(default, ast.Constant) and default.value is None:
                optional.add(arg.arg)
        for arg, kw_default in zip(
            args.kwonlyargs, args.kw_defaults, strict=True
        ):
            if (
                isinstance(kw_default, ast.Constant)
                and kw_default.value is None
            ):
                optional.add(arg.arg)
        return optional

    @staticmethod
    def _seed_argument(call: ast.Call) -> object:
        """The plain-name seed flowing into the constructor, the
        ``_ALWAYS_UNSEEDED`` sentinel for a bare call, else ``None``."""
        if not call.args and not call.keywords:
            return _ALWAYS_UNSEEDED
        candidates: list[ast.expr] = list(call.args[:1])
        candidates.extend(
            kw.value for kw in call.keywords if kw.arg == "seed"
        )
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                return candidate.id
        return None


_ALWAYS_UNSEEDED = object()


@register_rule
class RandomnessRule(LintRule):
    id = "RPR001"
    description = "unseeded or global-state randomness"

    def __init__(self) -> None:
        self._helpers: dict[str, str | None] = {}
        self._class_like: set[str] = set()

    def begin_module(self, ctx: RuleContext, tree: ast.Module) -> None:
        # The taint pre-scan needs the alias table, which the engine
        # only builds during the walk — resolve imports up front.
        prescan = RuleContext(ctx.module, ctx.config)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    prescan.aliases[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name if alias.asname else alias.name.split(".")[0]
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module
                and node.level == 0
            ):
                for alias in node.names:
                    prescan.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        scanner = _RngHelperScanner(prescan)
        scanner.visit(tree)
        self._helpers = scanner.helpers
        self._class_like = scanner.class_like

    def visit_call(
        self, ctx: RuleContext, node: ast.Call, dotted: str | None
    ) -> None:
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in ctx.config.stdlib_random_fns:
                ctx.emit(
                    self.id,
                    node,
                    f"call to global-state random.{parts[1]}(); draw from "
                    "a seeded numpy Generator (repro.util.rng) instead",
                )
            return
        if len(parts) >= 2 and parts[0] == "numpy" and parts[1] == "random":
            tail = parts[-1]
            if len(parts) == 3 and tail not in ctx.config.numpy_random_safe:
                ctx.emit(
                    self.id,
                    node,
                    f"call to legacy global-state numpy.random.{tail}(); "
                    "use an explicitly seeded Generator",
                )
                return
            if tail in ("default_rng", "RandomState") and _unseeded(node):
                ctx.emit(
                    self.id,
                    node,
                    f"numpy.random.{tail}() without a seed is "
                    "nondeterministic; pass a derived seed "
                    "(repro.util.rng.derive_seed)",
                )
            return
        self._check_tainted_helper(ctx, node, parts)

    def _check_tainted_helper(
        self, ctx: RuleContext, node: ast.Call, parts: list[str]
    ) -> None:
        """The dataflow leg: a call to a generator-returning helper with
        the seed omitted (or explicitly ``None``) is an unseeded rng."""
        name = parts[-1]
        if len(parts) != 1 or name not in self._helpers:
            return
        info = self._helpers[name]
        if info is None:
            unseeded = True
        else:
            seed_param, position = info
            # *args / **kwargs defeat static alignment: assume the seed
            # is inside rather than risk a false positive
            supplied = any(
                isinstance(arg, ast.Starred) for arg in node.args
            )
            if (
                not supplied
                and position is not None
                and len(node.args) > position
            ):
                arg = node.args[position]
                if not (
                    isinstance(arg, ast.Constant) and arg.value is None
                ):
                    supplied = True
            for kw in node.keywords:
                if kw.arg is None:  # **kwargs: assume the seed is inside
                    supplied = True
                elif kw.arg == seed_param and not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is None
                ):
                    supplied = True
            unseeded = not supplied
        if not unseeded:
            return
        if name in self._class_like:
            ctx.emit(
                self.id,
                node,
                f"{name}() stores a numpy.random generator built from its "
                "seed parameter and was constructed without one; the "
                "unseeded rng is laundered through __init__ — pass a "
                "derived seed (repro.util.rng.derive_seed)",
            )
        else:
            ctx.emit(
                self.id,
                node,
                f"{name}() returns numpy.random generators and was called "
                "without a seed; the unseeded rng is laundered through the "
                "helper — pass a derived seed (repro.util.rng.derive_seed)",
            )


@register_rule
class WallClockRule(LintRule):
    id = "RPR002"
    description = "wall-clock read in deterministic logic"

    def visit_call(
        self, ctx: RuleContext, node: ast.Call, dotted: str | None
    ) -> None:
        if dotted is None:
            return
        if dotted in ctx.config.wall_clock_names:
            ctx.emit(
                self.id,
                node,
                f"wall-clock read {dotted}(); simulated time must come "
                "from the event loop, never the host clock",
            )
        elif dotted in ctx.config.monotonic_names and not ctx.module_matches(
            ctx.config.monotonic_allowed_prefixes
        ):
            ctx.emit(
                self.id,
                node,
                f"{dotted}() outside the observability layers "
                f"({', '.join(ctx.config.monotonic_allowed_prefixes)}); "
                "sim/sched/core logic must stay clock-free",
            )


@register_rule
class RegistryBypassRule(LintRule):
    id = "RPR003"
    description = "strategy/predictor construction bypassing repro.registry"

    def visit_call(
        self, ctx: RuleContext, node: ast.Call, dotted: str | None
    ) -> None:
        if dotted is None:
            return
        terminal = dotted.split(".")[-1]
        if terminal not in ctx.config.registry_classes:
            return
        if ctx.module_matches(ctx.config.registry_allowed_prefixes):
            return
        ctx.emit(
            self.id,
            node,
            f"direct {terminal}() construction bypasses repro.registry; "
            "use resolve_strategy/resolve_predictor (or RunSpec.from_names)",
        )


@register_rule
class RunSpecRule(LintRule):
    id = "RPR004"
    description = "unpicklable lambda/closure in RunSpec construction"

    def visit_call(
        self, ctx: RuleContext, node: ast.Call, dotted: str | None
    ) -> None:
        if dotted is None or dotted.split(".")[-1] != "RunSpec":
            return
        suspicious: list[ast.expr] = list(node.args[1:3])
        suspicious.extend(
            kw.value
            for kw in node.keywords
            if kw.arg in ("strategy", "predictor")
        )
        for value in suspicious:
            if isinstance(value, ast.Lambda):
                ctx.emit(
                    self.id,
                    value,
                    "lambda passed to RunSpec does not pickle and cannot "
                    "be dispatched to worker processes; use "
                    "RunSpec.from_names or a module-level factory",
                )
            elif (
                isinstance(value, ast.Name)
                and value.id in ctx.nested_defs
            ):
                ctx.emit(
                    self.id,
                    value,
                    f"nested function {value.id!r} passed to RunSpec is a "
                    "closure and does not pickle; hoist it to module level "
                    "or use RunSpec.from_names",
                )
