"""Static and dynamic analysis of the reproduction itself.

Two independent safety nets sit on top of the library:

* :mod:`repro.analysis.invariants` — a schedule-invariant verifier that
  replays a :class:`~repro.sim.result.SimulationResult` execution log
  and re-checks the paper's MILP constraints (eqs. (1)-(14)) without
  trusting the simulator's own bookkeeping.  Opt in with
  ``SimulationConfig(verify=True)``, per-cell via the experiment
  executor, or from the ``repro analyze`` CLI subcommand.
* :mod:`repro.analysis.lint` — a pluggable AST/project lint engine
  (:mod:`repro.analysis.engine`) encoding repo-specific rules a generic
  linter cannot express.  Three rule families: determinism and
  picklability (``RPR00x``), async-safety of the live serve path
  (``RPR10x``), and wire-protocol exhaustiveness (``RPR2xx``).
  Intentional findings are suppressed by the committed, justified
  baseline file (:mod:`repro.analysis.baseline`).

Both run in CI (the ``static-analysis`` job) and are exercised
negatively by the test suite: every invariant and every lint rule has at
least one test proving it fires.
"""

from repro.analysis.invariants import (
    INVARIANTS,
    VerificationError,
    VerificationReport,
    Violation,
    verify_result,
)
from repro.analysis.lint import (
    LINT_RULES,
    PROJECT_RULE_REGISTRY,
    RULE_REGISTRY,
    Baseline,
    BaselineEntry,
    BaselineError,
    BaselineResult,
    LintConfig,
    LintFinding,
    LintRule,
    ProjectRule,
    default_baseline_path,
    findings_to_payload,
    lint_file,
    lint_package,
    lint_paths,
    lint_source,
    register_rule,
    render_findings,
    select_rules,
)
from repro.analysis.smoke import SmokeReport, run_verified_smoke

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "BaselineResult",
    "INVARIANTS",
    "LINT_RULES",
    "LintConfig",
    "LintFinding",
    "LintRule",
    "PROJECT_RULE_REGISTRY",
    "ProjectRule",
    "RULE_REGISTRY",
    "SmokeReport",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "default_baseline_path",
    "findings_to_payload",
    "lint_file",
    "lint_package",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_findings",
    "run_verified_smoke",
    "select_rules",
    "verify_result",
]
