"""Static and dynamic analysis of the reproduction itself.

Two independent safety nets sit on top of the library:

* :mod:`repro.analysis.invariants` — a schedule-invariant verifier that
  replays a :class:`~repro.sim.result.SimulationResult` execution log
  and re-checks the paper's MILP constraints (eqs. (1)-(14)) without
  trusting the simulator's own bookkeeping.  Opt in with
  ``SimulationConfig(verify=True)``, per-cell via the experiment
  executor, or from the ``repro analyze`` CLI subcommand.
* :mod:`repro.analysis.lint` — a custom AST lint pass encoding
  repo-specific rules a generic linter cannot express: seeding
  discipline, no wall-clock reads in deterministic logic, no registry
  bypass, and pickle-safe :class:`~repro.experiments.runner.RunSpec`
  construction.

Both run in CI (the ``static-analysis`` job) and are exercised
negatively by the test suite: every invariant and every lint rule has at
least one test proving it fires.
"""

from repro.analysis.invariants import (
    INVARIANTS,
    VerificationError,
    VerificationReport,
    Violation,
    verify_result,
)
from repro.analysis.lint import (
    LINT_RULES,
    LintConfig,
    LintFinding,
    lint_file,
    lint_package,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.analysis.smoke import SmokeReport, run_verified_smoke

__all__ = [
    "INVARIANTS",
    "LINT_RULES",
    "LintConfig",
    "LintFinding",
    "SmokeReport",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "lint_file",
    "lint_package",
    "lint_paths",
    "lint_source",
    "render_findings",
    "run_verified_smoke",
    "verify_result",
]
