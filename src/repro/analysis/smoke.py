"""Verified smoke simulation: the Fig. 2 grid with the verifier armed.

``repro analyze --smoke`` (and the CI ``static-analysis`` job) runs a
small {strategy} x {predictor on, off} matrix — the same shape as the
paper's Fig. 2 — with ``SimulationConfig(verify=True)``, so every
produced schedule is independently re-checked against the paper's
constraints.  Unlike the experiment harness, a violation here does not
abort the sweep: it is captured per cell and rendered, so one bad cell
reports all its violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.invariants import VerificationError, Violation
from repro.experiments.common import standard_platform, standard_traces
from repro.experiments.config import HarnessScale
from repro.registry import resolve_predictor, resolve_strategy
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.tracegen import DeadlineGroup

__all__ = ["SmokeCell", "SmokeReport", "run_verified_smoke"]


@dataclass(frozen=True)
class SmokeCell:
    """One verified (configuration, trace) cell of the smoke grid."""

    label: str
    trace_index: int
    ok: bool
    n_spans: int
    violations: tuple[Violation, ...] = ()


@dataclass
class SmokeReport:
    """All cells of one verified smoke run."""

    group: DeadlineGroup
    scale: HarnessScale
    cells: list[SmokeCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def n_violations(self) -> int:
        return sum(len(cell.violations) for cell in self.cells)

    def render(self) -> str:
        lines = [
            f"verified smoke run: {self.group.value} group, "
            f"{self.scale.n_traces} traces x {self.scale.n_requests} "
            f"requests, {len(self.cells)} cells -> "
            f"{'OK' if self.ok else 'FAILED'}"
        ]
        for cell in self.cells:
            status = "ok" if cell.ok else f"{len(cell.violations)} violation(s)"
            lines.append(
                f"  {cell.label} / trace {cell.trace_index}: {status} "
                f"({cell.n_spans} spans verified)"
            )
            lines.extend(f"    {v.render()}" for v in cell.violations)
        return "\n".join(lines)


def run_verified_smoke(
    scale: HarnessScale | None = None,
    *,
    group: DeadlineGroup = DeadlineGroup.VT,
    strategies: Sequence[str] = ("heuristic", "milp"),
    predictors: Sequence[str | None] = (None, "oracle"),
    progress: Callable[[str], None] | None = None,
) -> SmokeReport:
    """Run the Fig. 2-shaped grid with schedule verification per cell.

    Every simulation runs with ``verify=True`` and record collection, so
    the verifier exercises the full invariant list (including the
    records and admission checks); violations are collected per cell
    instead of aborting the sweep.
    """
    scale = scale or HarnessScale(n_traces=2, n_requests=40, master_seed=0)
    platform = standard_platform()
    traces = standard_traces(group, scale)
    config = SimulationConfig(verify=True, collect_records=True)
    report = SmokeReport(group=group, scale=scale)
    for strategy_name in strategies:
        for predictor_name in predictors:
            label = f"{strategy_name}-{predictor_name or 'off'}"
            for index, trace in enumerate(traces):
                if progress is not None:
                    progress(f"{label} / trace {index}")
                simulator = Simulator(
                    platform,
                    resolve_strategy(strategy_name),
                    resolve_predictor(predictor_name)
                    if predictor_name is not None
                    else None,
                    config,
                )
                try:
                    result = simulator.run(trace)
                except VerificationError as exc:
                    report.cells.append(
                        SmokeCell(
                            label=label,
                            trace_index=index,
                            ok=False,
                            n_spans=exc.report.n_spans,
                            violations=tuple(exc.report.violations),
                        )
                    )
                    continue
                verification = result.verification
                assert verification is not None  # verify=True guarantees it
                report.cells.append(
                    SmokeCell(
                        label=label,
                        trace_index=index,
                        ok=verification.ok,
                        n_spans=verification.n_spans,
                    )
                )
    return report
