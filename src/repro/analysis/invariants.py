"""Schedule-invariant verifier: independent replay of a simulation.

The simulator asserts some of its own invariants while it runs, but a
bug in its bookkeeping would assert the bug, not the paper.  This module
re-derives everything from the raw :class:`~repro.sim.state.ExecutionSpan`
log — which resource executed which job when — and checks it against the
MILP formulation's constraints (paper eqs. (1)-(14)) plus the reported
totals, trusting nothing but the trace and the platform description.

Checked invariants (codes double as :class:`Violation.code`):

``overlap``
    No two spans on one resource overlap in time (sequencing,
    eqs. (3)-(6)).
``not-executable``
    Work only runs on resources where the task's WCET is finite (the
    mapping domain, eq. (1)).
``before-arrival``
    No job activity before its request arrives (eq. (5)).
``deadline-miss``
    Every admitted job completes by its absolute deadline (eq. (2) —
    firm real-time admission).
``incomplete-job``
    Every admitted job executes its full WCET (work conservation).
``work-after-completion``
    No activity after a job's work is done.
``gpu-preemption``
    On a non-preemptable resource a job's work, once started, is
    contiguous until completion or abort-restart (eqs. (8)-(11)).
``migration-debt``
    The migration delay charged before resumed work matches the task's
    ``cm`` matrix (eqs. (12)-(13)); partial payment never exceeds it.
    A remap may supersede an in-flight migration, abandoning a partial
    payment — the final debt must still be paid exactly.
``migration-count``
    The log never shows more migrations than the result reports
    (remaps of still-queued jobs leave no trace, so this is a lower
    bound, exact in the common all-started case).
``abort-accounting``
    Reconstructed GPU abort-restarts equal the reported count.
``wasted-energy``
    Energy sunk into aborted attempts equals the reported waste.
``energy-balance``
    Reported total energy equals executed work energy plus reported
    migration energy (the objective's accounting, eq. (14)).
``admission-partition``
    Accepted/rejected indices partition the trace; rejected (or
    unknown) jobs never execute (Sec. 4.1 admission semantics).
``records-mismatch``
    Per-activation records, when collected, reconcile with the
    aggregate counters.
``overhead-accounting``
    Total prediction overhead equals activations times the configured
    overhead (Sec. 5.5 methodology), when the caller states it.
``malformed-span``
    Log self-consistency (kinds, time ordering, resource range).

Fault-aware invariants (DESIGN.md §10; active when the run carried a
:class:`~repro.faults.plan.FaultPlan` and/or recorded degradations):

``down-resource``
    No execution span overlaps an outage window on the failed resource.
``predictor-fallback``
    Every predictor exception/timeout degradation is matched by a
    no-prediction activation record (the fallback actually happened).
``eviction-accounting``
    Evicted jobs are a subset of the admitted ones, each matches a
    ``job-evicted`` degradation event (and vice versa), and no evicted
    job executes after its eviction.

Jobs displaced by an outage restart from scratch (the failed resource's
state is gone), so the replay treats a displacement like an abort that
is *not* counted in ``abort_count`` — its attempt energy reconciles into
``wasted_energy`` instead — and evicted jobs are exempt from
``incomplete-job``.

Every failed check yields a structured :class:`Violation` rather than a
boolean, so callers can report, count, and filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.model.platform import Platform
from repro.sim.result import SimulationResult
from repro.sim.state import ExecutionSpan, SimulationError
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = [
    "INVARIANTS",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "verify_result",
]

#: Invariant code -> (paper reference, one-line description).
INVARIANTS: Mapping[str, tuple[str, str]] = {
    "overlap": ("eqs. (3)-(6)", "per-resource spans never overlap"),
    "not-executable": ("eq. (1)", "work only on executable resources"),
    "before-arrival": ("eq. (5)", "no activity before the request arrives"),
    "deadline-miss": ("eq. (2)", "admitted jobs finish by their deadline"),
    "incomplete-job": ("eq. (2)", "admitted jobs execute their full WCET"),
    "work-after-completion": ("-", "no activity after completion"),
    "gpu-preemption": (
        "eqs. (8)-(11)",
        "non-preemptable work is contiguous until completion or abort",
    ),
    "migration-debt": (
        "eqs. (12)-(13)",
        "migration delay matches the task's cm matrix",
    ),
    "migration-count": ("eq. (12)", "log migrations never exceed the count"),
    "abort-accounting": ("eqs. (8)-(11)", "abort-restarts reconcile"),
    "wasted-energy": ("-", "aborted-attempt energy equals reported waste"),
    "energy-balance": (
        "eq. (14)",
        "total energy = executed work energy + migration energy",
    ),
    "admission-partition": (
        "Sec. 4.1",
        "accepted/rejected partition the trace; rejected jobs never run",
    ),
    "records-mismatch": ("-", "activation records reconcile with totals"),
    "overhead-accounting": ("Sec. 5.5", "prediction overhead reconciles"),
    "malformed-span": ("-", "execution log is self-consistent"),
    "down-resource": (
        "DESIGN.md §10",
        "no execution overlaps an outage window on the failed resource",
    ),
    "predictor-fallback": (
        "DESIGN.md §10",
        "predictor faults degrade to the no-prediction path",
    ),
    "eviction-accounting": (
        "DESIGN.md §10",
        "evictions reconcile with events; evicted jobs stop executing",
    ),
}

#: Deadline slack mirroring the simulator's own completion assertion.
_DEADLINE_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to a job/resource/time when known."""

    code: str
    message: str
    job_id: int | None = None
    resource: int | None = None
    time: float | None = None

    def render(self) -> str:
        """A one-line human-readable rendering."""
        where = []
        if self.job_id is not None:
            where.append(f"job {self.job_id}")
        if self.resource is not None:
            where.append(f"resource {self.resource}")
        if self.time is not None:
            where.append(f"t={self.time:g}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return f"{self.code}: {self.message}{suffix}"


@dataclass
class VerificationReport:
    """Outcome of one verification pass over a simulation result."""

    violations: list[Violation] = field(default_factory=list)
    n_spans: int = 0
    n_jobs: int = 0
    checks: tuple[str, ...] = tuple(INVARIANTS)

    @property
    def ok(self) -> bool:
        """Whether every checked invariant held."""
        return not self.violations

    def codes(self) -> list[str]:
        """Distinct violated invariant codes, sorted."""
        return sorted({v.code for v in self.violations})

    def summary(self) -> dict[str, object]:
        """A JSON-friendly summary."""
        return {
            "ok": self.ok,
            "n_violations": len(self.violations),
            "violated_codes": self.codes(),
            "n_spans": self.n_spans,
            "n_jobs": self.n_jobs,
        }

    def render(self) -> str:
        """Multi-line rendering: verdict first, then every violation."""
        head = (
            f"schedule verification: "
            f"{'OK' if self.ok else 'FAILED'} "
            f"({self.n_jobs} jobs, {self.n_spans} spans, "
            f"{len(self.checks)} invariants)"
        )
        lines = [head]
        lines.extend(f"  {v.render()}" for v in self.violations)
        return "\n".join(lines)


class VerificationError(SimulationError):
    """Raised by ``verify=True`` runs whose schedule broke an invariant."""

    def __init__(self, report: VerificationReport) -> None:
        self.report = report
        codes = ", ".join(report.codes())
        super().__init__(
            f"schedule verification failed with "
            f"{len(report.violations)} violation(s): {codes}"
        )


@dataclass
class _JobReplay:
    """Independent accounting of one admitted job, rebuilt from spans."""

    job_id: int
    arrival: float
    absolute_deadline: float
    wcet: tuple[float, ...]
    energy: tuple[float, ...]
    resource: int | None = None
    fraction: float = 1.0
    started: bool = False
    ran_on_current: bool = False
    attempt_energy: float = 0.0
    completion_time: float | None = None
    executed_energy: float = 0.0
    migrations: int = 0
    aborts: int = 0
    wasted: float = 0.0
    # Migration-debt tracking for the current placement: the delay paid
    # so far, as contiguous payment chunks (a gap in the payment starts
    # a new chunk), and whether a payment check is still pending.
    debt_chunks: list[float] = field(default_factory=list)
    debt_last_end: float | None = None
    debt_open: bool = False
    debt_chargeable: bool = True


def verify_result(
    trace: Trace,
    platform: Platform,
    result: SimulationResult,
    *,
    expected_overhead: float | None = None,
    tol: float = 1e-6,
    faults: "FaultPlan | None" = None,
) -> VerificationReport:
    """Re-check ``result`` against the paper's schedule invariants.

    Parameters
    ----------
    trace, platform:
        The inputs the simulation ran on (for a fault-injected run:
        the *perturbed* trace the simulator actually replayed).
    result:
        The simulation outcome; its ``execution_log`` must have been
        collected (``collect_execution_log=True`` or ``verify=True``),
        unless nothing was admitted.
    expected_overhead:
        The per-activation prediction overhead the run was configured
        with, if the caller knows it; enables the overhead-accounting
        check.
    tol:
        Relative/absolute tolerance for floating-point reconciliation.
    faults:
        The :class:`~repro.faults.plan.FaultPlan` the run was injected
        with, if any; enables the ``down-resource`` window check.  The
        degradation-event reconciliation (displacements, evictions,
        predictor fallbacks) keys off the result itself and runs either
        way.

    Returns
    -------
    VerificationReport
        Structured violations; empty when the schedule is clean.
    """
    violations: list[Violation] = []
    spans = sorted(
        result.execution_log, key=lambda s: (s.start, s.end, s.resource)
    )
    if result.accepted and not spans:
        raise ValueError(
            "result has no execution log to verify; simulate with "
            "collect_execution_log=True (or verify=True)"
        )

    accepted = set(result.accepted)
    _check_partition(trace, result, violations)
    _check_spans_well_formed(trace, platform, spans, accepted, violations)
    replays = _replay_jobs(trace, platform, spans, accepted, violations, tol, result=result)
    _check_totals(result, replays, violations, tol)
    _check_non_overlap(platform, spans, violations, tol)
    _check_records(result, violations)
    if expected_overhead is not None:
        _check_overhead(result, expected_overhead, violations, tol)
    if faults is not None:
        _check_down_resource(faults, spans, violations, tol)
    _check_predictor_fallback(result, violations)
    _check_evictions(result, spans, violations, tol)

    return VerificationReport(
        violations=violations,
        n_spans=len(spans),
        n_jobs=len(accepted),
    )


def _close(a: float, b: float, tol: float) -> bool:
    return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


def _check_partition(
    trace: Trace, result: SimulationResult, violations: list[Violation]
) -> None:
    """Sec. 4.1: every request is exactly one of accepted / rejected."""
    accepted = set(result.accepted)
    rejected = set(result.rejected)
    if result.n_requests != len(trace):
        violations.append(
            Violation(
                "admission-partition",
                f"result covers {result.n_requests} requests, trace has "
                f"{len(trace)}",
            )
        )
    both = accepted & rejected
    for job_id in sorted(both):
        violations.append(
            Violation(
                "admission-partition",
                "request is both accepted and rejected",
                job_id=job_id,
            )
        )
    missing = set(range(len(trace))) - accepted - rejected
    for job_id in sorted(missing):
        violations.append(
            Violation(
                "admission-partition",
                "request neither accepted nor rejected",
                job_id=job_id,
            )
        )
    stray = (accepted | rejected) - set(range(len(trace)))
    for job_id in sorted(stray):
        violations.append(
            Violation(
                "admission-partition",
                "admission outcome for an index outside the trace",
                job_id=job_id,
            )
        )


def _check_spans_well_formed(
    trace: Trace,
    platform: Platform,
    spans: Sequence[ExecutionSpan],
    accepted: set[int],
    violations: list[Violation],
) -> None:
    """Span sanity, executability (eq. (1)) and arrival bounds (eq. (5))."""
    for span in spans:
        if span.kind not in ("work", "migration"):
            violations.append(
                Violation(
                    "malformed-span",
                    f"unknown span kind {span.kind!r}",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
        if span.end < span.start or span.start < 0:
            violations.append(
                Violation(
                    "malformed-span",
                    f"span runs backwards: [{span.start:g}, {span.end:g}]",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
        if not 0 <= span.resource < platform.size:
            violations.append(
                Violation(
                    "malformed-span",
                    f"span on unknown resource {span.resource}",
                    job_id=span.job_id,
                    time=span.start,
                )
            )
            continue
        if span.job_id not in accepted:
            violations.append(
                Violation(
                    "admission-partition",
                    "execution span for a job that was never admitted",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
            continue
        request = trace[span.job_id]
        if span.start < request.arrival - _DEADLINE_TOL:
            violations.append(
                Violation(
                    "before-arrival",
                    f"activity at {span.start:g} before arrival "
                    f"{request.arrival:g}",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
        task = trace.task_of(request)
        if span.kind == "work" and not task.executable_on(span.resource):
            violations.append(
                Violation(
                    "not-executable",
                    "work on a resource the task cannot execute on",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )


def _check_non_overlap(
    platform: Platform,
    spans: Sequence[ExecutionSpan],
    violations: list[Violation],
    tol: float,
) -> None:
    """Eqs. (3)-(6): one resource executes at most one thing at a time."""
    for resource in range(platform.size):
        mine = [s for s in spans if s.resource == resource]
        for prev, nxt in zip(mine, mine[1:], strict=False):
            if nxt.start < prev.end - tol:
                violations.append(
                    Violation(
                        "overlap",
                        f"job {nxt.job_id} starts at {nxt.start:g} while "
                        f"job {prev.job_id} runs until {prev.end:g}",
                        job_id=nxt.job_id,
                        resource=resource,
                        time=nxt.start,
                    )
                )


def _settle_debt(
    replay: _JobReplay,
    task_cm: tuple[tuple[float, ...], ...],
    dst: int,
    violations: list[Violation],
    tol: float,
    at: float,
) -> None:
    """Close the open migration-debt window at the first work on ``dst``.

    The actual source resource of the last hop may be invisible (a
    still-queued job can be remapped without leaving a span), so the
    paid delay must match ``cm[k][dst]`` for *some* source ``k`` — and
    ``0`` is additionally legal while the job has never started (an
    unstarted remap may be uncharged).

    A remap can also *supersede* an in-flight migration before its
    delay is fully paid: the job bounces away and back without ever
    executing elsewhere, leaving only the abandoned partial payment in
    the log.  The payment sequence is therefore legal when some suffix
    of its contiguous chunks sums to a ``cm[k][dst]`` entry exactly —
    the final debt, always fully paid before work starts — while every
    chunk before the split point is a partial payment of a superseded
    debt, each necessarily bounded by the largest ``cm[*][dst]`` entry.
    A supersession always leaves a gap in the payment (the bounce spans
    two distinct RM activations), so chunk boundaries cover every
    possible split.
    """
    if not replay.debt_open:
        return
    replay.debt_open = False
    chunks = replay.debt_chunks
    replay.debt_chunks = []
    replay.debt_last_end = None
    candidates = [
        task_cm[k][dst] for k in range(len(task_cm)) if k != dst
    ]
    finals = list(candidates)
    if not replay.debt_chargeable:
        finals.append(0.0)
    cap = max(candidates, default=0.0) + tol
    suffix = 0.0
    settled = False
    for split in range(len(chunks), -1, -1):  # suffix = chunks[split:]
        if split < len(chunks):
            suffix += chunks[split]
        if any(_close(suffix, c, tol) for c in finals) and all(
            chunk <= cap for chunk in chunks[:split]
        ):
            settled = True
            break
    if not settled:
        violations.append(
            Violation(
                "migration-debt",
                f"paid migration delay {sum(chunks):g} matches no "
                f"cm[*][{dst}] entry (even allowing superseded partial "
                "payments)",
                job_id=replay.job_id,
                resource=dst,
                time=at,
            )
        )


def _replay_jobs(
    trace: Trace,
    platform: Platform,
    spans: Sequence[ExecutionSpan],
    accepted: set[int],
    violations: list[Violation],
    tol: float,
    *,
    result: SimulationResult,
) -> list[_JobReplay]:
    """Rebuild every admitted job's life from its spans.

    Checks deadlines (eq. (2)), work conservation, GPU non-preemption
    (eqs. (8)-(11)) and migration-debt charging (eqs. (12)-(13)); the
    returned replays carry the energy/migration/abort totals for the
    global reconciliation checks.

    Outage displacements (signalled by ``job-readmitted`` /
    ``job-evicted`` degradation events on the result) restart the job
    from scratch: the attempt's energy reconciles into the waste total,
    no migration or abort is counted, and evicted jobs are exempt from
    the completion requirement (DESIGN.md §10).
    """
    by_job: dict[int, list[ExecutionSpan]] = {}
    for span in spans:
        if span.job_id in accepted and 0 <= span.resource < platform.size:
            by_job.setdefault(span.job_id, []).append(span)
    displaced_at: dict[int, list[float]] = {}
    for event in result.degradations:
        if (
            event.kind in ("job-readmitted", "job-evicted")
            and event.job_id is not None
        ):
            displaced_at.setdefault(event.job_id, []).append(event.time)
    for times in displaced_at.values():
        times.sort()
    evicted = set(result.evicted)

    replays: list[_JobReplay] = []
    for job_id in sorted(accepted):
        request = trace[job_id] if 0 <= job_id < len(trace) else None
        if request is None:
            continue  # already reported by the partition check
        task = trace.task_of(request)
        replay = _JobReplay(
            job_id=job_id,
            arrival=request.arrival,
            absolute_deadline=request.absolute_deadline,
            wcet=task.wcet,
            energy=task.energy,
        )
        replays.append(replay)
        last_work_end: float | None = None
        displacements = displaced_at.get(job_id, [])
        next_displacement = 0
        for span in by_job.get(job_id, []):
            if replay.completion_time is not None:
                violations.append(
                    Violation(
                        "work-after-completion",
                        f"activity at {span.start:g} after completion at "
                        f"{replay.completion_time:g}",
                        job_id=job_id,
                        resource=span.resource,
                        time=span.start,
                    )
                )
                break
            while (
                next_displacement < len(displacements)
                and displacements[next_displacement] <= span.start + tol
            ):
                # Outage displacement before this span: the job restarts
                # from scratch (work lost, attempt energy wasted, no
                # migration debt owed — the next placement is fresh).
                replay.wasted += replay.attempt_energy
                replay.attempt_energy = 0.0
                replay.fraction = 1.0
                replay.ran_on_current = False
                replay.resource = None
                replay.debt_open = True
                replay.debt_chargeable = False
                replay.debt_chunks = []
                replay.debt_last_end = None
                last_work_end = None
                next_displacement += 1
            if replay.resource is None:
                replay.resource = span.resource
                if span.kind == "migration":
                    # Debt with no visible source hop: check it against
                    # the cm matrix once work starts.
                    replay.debt_open = True
                    replay.debt_chargeable = False
            elif span.resource != replay.resource:
                src = replay.resource
                if replay.debt_open:
                    # Abandoned payments toward ``src``: each contiguous
                    # chunk is a (possibly superseded) partial, so none
                    # may exceed the largest full debt into ``src``.
                    src_cap = (
                        max(
                            task.cm(k, src)
                            for k in range(platform.size)
                            if k != src
                        )
                        + tol
                        if platform.size > 1
                        else tol
                    )
                    for chunk in replay.debt_chunks:
                        if chunk > src_cap:
                            violations.append(
                                Violation(
                                    "migration-debt",
                                    f"paid delay {chunk:g} exceeds every "
                                    f"cm[*][{src}] entry",
                                    job_id=job_id,
                                    resource=src,
                                    time=span.start,
                                )
                            )
                            break
                if replay.ran_on_current and not platform.is_preemptable(src):
                    # Abort-restart: work resets, attempt energy is waste.
                    replay.aborts += 1
                    replay.wasted += replay.attempt_energy
                    replay.attempt_energy = 0.0
                    replay.fraction = 1.0
                    replay.debt_open = True
                    replay.debt_chargeable = False  # aborts owe no delay
                else:
                    replay.migrations += 1
                    replay.debt_open = True
                    replay.debt_chargeable = replay.started
                replay.debt_chunks = []
                replay.debt_last_end = None
                replay.resource = span.resource
                replay.ran_on_current = False
                last_work_end = None
            if span.kind == "migration":
                if (
                    replay.debt_chunks
                    and replay.debt_last_end is not None
                    and abs(span.start - replay.debt_last_end) <= tol
                ):
                    replay.debt_chunks[-1] += span.length
                else:
                    replay.debt_chunks.append(span.length)
                replay.debt_last_end = span.end
                continue
            # Work span.
            _settle_debt(
                replay,
                task.migration_time,
                span.resource,
                violations,
                tol,
                span.start,
            )
            if not task.executable_on(span.resource):
                continue  # flagged as not-executable already
            if (
                not platform.is_preemptable(span.resource)
                and replay.ran_on_current
                and last_work_end is not None
                and span.start > last_work_end + tol
            ):
                violations.append(
                    Violation(
                        "gpu-preemption",
                        f"non-preemptable work interrupted: gap "
                        f"[{last_work_end:g}, {span.start:g}] before "
                        "completion",
                        job_id=job_id,
                        resource=span.resource,
                        time=span.start,
                    )
                )
            wcet = task.wcet[span.resource]
            delta = span.length / wcet
            energy = task.energy[span.resource] * delta
            replay.fraction -= delta
            replay.attempt_energy += energy
            replay.executed_energy += energy
            replay.started = True
            replay.ran_on_current = True
            last_work_end = span.end
            if replay.fraction <= tol:
                replay.completion_time = span.end
                if span.end > replay.absolute_deadline + _DEADLINE_TOL:
                    violations.append(
                        Violation(
                            "deadline-miss",
                            f"finished at {span.end:g}, deadline "
                            f"{replay.absolute_deadline:g}",
                            job_id=job_id,
                            resource=span.resource,
                            time=span.end,
                        )
                    )
        if job_id in evicted:
            # The final attempt died with the evicting outage; its
            # energy is waste (matching PlatformState.fail_resource).
            replay.wasted += replay.attempt_energy
            replay.attempt_energy = 0.0
        elif replay.completion_time is None:
            violations.append(
                Violation(
                    "incomplete-job",
                    f"admitted job never completed: {replay.fraction:.6f} "
                    "of its work remains",
                    job_id=job_id,
                    resource=replay.resource,
                )
            )
    return replays


def _check_totals(
    result: SimulationResult,
    replays: Sequence[_JobReplay],
    violations: list[Violation],
    tol: float,
) -> None:
    """Reconcile the result's aggregate counters with the replay."""
    executed = sum(r.executed_energy for r in replays)
    wasted = sum(r.wasted for r in replays)
    aborts = sum(r.aborts for r in replays)
    migrations = sum(r.migrations for r in replays)

    expected_total = executed + result.migration_energy
    if not _close(result.total_energy, expected_total, max(tol, tol * expected_total)):
        violations.append(
            Violation(
                "energy-balance",
                f"total energy {result.total_energy:g} != executed "
                f"{executed:g} + migration {result.migration_energy:g}",
            )
        )
    if not _close(result.wasted_energy, wasted, max(tol, tol * max(wasted, 1.0))):
        violations.append(
            Violation(
                "wasted-energy",
                f"reported waste {result.wasted_energy:g} != aborted-attempt "
                f"energy {wasted:g}",
            )
        )
    if aborts != result.abort_count:
        violations.append(
            Violation(
                "abort-accounting",
                f"log shows {aborts} abort-restarts, result reports "
                f"{result.abort_count}",
            )
        )
    if migrations > result.migration_count:
        violations.append(
            Violation(
                "migration-count",
                f"log shows {migrations} migrations, result reports only "
                f"{result.migration_count}",
            )
        )


def _check_records(
    result: SimulationResult, violations: list[Violation]
) -> None:
    """Per-activation records, when collected, must match the totals."""
    if not result.records:
        return
    if len(result.records) != result.n_requests:
        violations.append(
            Violation(
                "records-mismatch",
                f"{len(result.records)} records for {result.n_requests} "
                "requests",
            )
        )
    admitted = [r.request_index for r in result.records if r.admitted]
    refused = [r.request_index for r in result.records if not r.admitted]
    if admitted != result.accepted or refused != result.rejected:
        violations.append(
            Violation(
                "records-mismatch",
                "admission flags in records disagree with accepted/rejected "
                "lists",
            )
        )
    solver_calls = sum(r.solver_calls for r in result.records)
    # Outage displacements re-run the solver outside any activation
    # record: exactly one remap call per displaced job (DESIGN.md §10).
    remap_calls = sum(
        1
        for event in result.degradations
        if event.kind in ("job-readmitted", "job-evicted")
    )
    if solver_calls + remap_calls != result.solver_calls_total:
        violations.append(
            Violation(
                "records-mismatch",
                f"records sum to {solver_calls} solver calls "
                f"(+{remap_calls} displacement remaps), result "
                f"reports {result.solver_calls_total}",
            )
        )
    used = sum(1 for r in result.records if r.admitted and r.used_prediction)
    if used != result.predictions_used:
        violations.append(
            Violation(
                "records-mismatch",
                f"records show {used} prediction-constrained admissions, "
                f"result reports {result.predictions_used}",
            )
        )
    for record in result.records:
        if record.decision_time < record.arrival - _DEADLINE_TOL:
            violations.append(
                Violation(
                    "records-mismatch",
                    f"decision at {record.decision_time:g} precedes arrival "
                    f"{record.arrival:g}",
                    job_id=record.request_index,
                    time=record.decision_time,
                )
            )


def _check_overhead(
    result: SimulationResult,
    expected_overhead: float,
    violations: list[Violation],
    tol: float,
) -> None:
    """Sec. 5.5: overhead is charged once per activation, in full."""
    expected = expected_overhead * result.n_requests
    if not _close(result.prediction_overhead_total, expected, max(tol, tol * max(expected, 1.0))):
        violations.append(
            Violation(
                "overhead-accounting",
                f"prediction overhead total "
                f"{result.prediction_overhead_total:g} != "
                f"{result.n_requests} activations x {expected_overhead:g}",
            )
        )


def _check_down_resource(
    faults: "FaultPlan",
    spans: Sequence[ExecutionSpan],
    violations: list[Violation],
    tol: float,
) -> None:
    """DESIGN.md §10: a down resource executes nothing.

    Every span is checked against every outage window of its resource —
    including migration-debt spans, since a dead resource can no more
    absorb a migration than run work.
    """
    for span in spans:
        for outage in faults.outages:
            if span.resource != outage.resource:
                continue
            if span.start < outage.end - tol and span.end > outage.start + tol:
                violations.append(
                    Violation(
                        "down-resource",
                        f"span [{span.start:g}, {span.end:g}] overlaps "
                        f"outage [{outage.start:g}, {outage.end:g})",
                        job_id=span.job_id,
                        resource=span.resource,
                        time=span.start,
                    )
                )


def _check_predictor_fallback(
    result: SimulationResult, violations: list[Violation]
) -> None:
    """DESIGN.md §10: a predictor fault means planning without prediction.

    A ``predictor-exception``/``predictor-timeout`` degradation leaves
    the activation with no forecast at all, so its record (when records
    were collected) must show ``had_prediction=False`` — the no-
    prediction RM path actually ran.  (``predictor-garbage`` only drops
    the invalid forecasts; with a lookahead > 1 the remainder may still
    constrain the plan, so it is not checked here.)
    """
    if not result.records:
        return
    records = {r.request_index: r for r in result.records}
    for event in result.degradations:
        if event.kind not in ("predictor-exception", "predictor-timeout"):
            continue
        if event.request_index is None:
            continue
        record = records.get(event.request_index)
        if record is None:
            violations.append(
                Violation(
                    "predictor-fallback",
                    f"{event.kind} for an activation with no record",
                    job_id=event.request_index,
                    time=event.time,
                )
            )
        elif record.had_prediction or record.used_prediction:
            violations.append(
                Violation(
                    "predictor-fallback",
                    f"{event.kind} at t={event.time:g} but the activation "
                    "still planned with a prediction",
                    job_id=event.request_index,
                    time=event.time,
                )
            )


def _check_evictions(
    result: SimulationResult,
    spans: Sequence[ExecutionSpan],
    violations: list[Violation],
    tol: float,
) -> None:
    """DESIGN.md §10: evictions and events reconcile, both ways."""
    accepted = set(result.accepted)
    evicted = set(result.evicted)
    if len(result.evicted) != len(evicted):
        violations.append(
            Violation(
                "eviction-accounting",
                "duplicate indices in the evicted list",
            )
        )
    event_times: dict[int, float] = {}
    for event in result.degradations:
        if event.kind == "job-evicted" and event.job_id is not None:
            event_times.setdefault(event.job_id, event.time)
    for job_id in sorted(evicted):
        if job_id not in accepted:
            violations.append(
                Violation(
                    "eviction-accounting",
                    "evicted job was never admitted",
                    job_id=job_id,
                )
            )
        if job_id not in event_times:
            violations.append(
                Violation(
                    "eviction-accounting",
                    "evicted job has no job-evicted degradation event",
                    job_id=job_id,
                )
            )
    for job_id in sorted(event_times):
        if job_id not in evicted:
            violations.append(
                Violation(
                    "eviction-accounting",
                    "job-evicted event for a job not in the evicted list",
                    job_id=job_id,
                )
            )
    for span in spans:
        etime = event_times.get(span.job_id)
        if etime is not None and span.end > etime + tol:
            violations.append(
                Violation(
                    "eviction-accounting",
                    f"evicted at t={etime:g} but executes until "
                    f"{span.end:g}",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
