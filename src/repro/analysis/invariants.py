"""Schedule-invariant verifier: independent replay of a simulation.

The simulator asserts some of its own invariants while it runs, but a
bug in its bookkeeping would assert the bug, not the paper.  This module
re-derives everything from the raw :class:`~repro.sim.state.ExecutionSpan`
log — which resource executed which job when — and checks it against the
MILP formulation's constraints (paper eqs. (1)-(14)) plus the reported
totals, trusting nothing but the trace and the platform description.

Checked invariants (codes double as :class:`Violation.code`):

``overlap``
    No two spans on one resource overlap in time (sequencing,
    eqs. (3)-(6)).
``not-executable``
    Work only runs on resources where the task's WCET is finite (the
    mapping domain, eq. (1)).
``before-arrival``
    No job activity before its request arrives (eq. (5)).
``deadline-miss``
    Every admitted job completes by its absolute deadline (eq. (2) —
    firm real-time admission).
``incomplete-job``
    Every admitted job executes its full WCET (work conservation).
``work-after-completion``
    No activity after a job's work is done.
``gpu-preemption``
    On a non-preemptable resource a job's work, once started, is
    contiguous until completion or abort-restart (eqs. (8)-(11)).
``migration-debt``
    The migration delay charged before resumed work matches the task's
    ``cm`` matrix (eqs. (12)-(13)); partial payment never exceeds it.
``migration-count``
    The log never shows more migrations than the result reports
    (remaps of still-queued jobs leave no trace, so this is a lower
    bound, exact in the common all-started case).
``abort-accounting``
    Reconstructed GPU abort-restarts equal the reported count.
``wasted-energy``
    Energy sunk into aborted attempts equals the reported waste.
``energy-balance``
    Reported total energy equals executed work energy plus reported
    migration energy (the objective's accounting, eq. (14)).
``admission-partition``
    Accepted/rejected indices partition the trace; rejected (or
    unknown) jobs never execute (Sec. 4.1 admission semantics).
``records-mismatch``
    Per-activation records, when collected, reconcile with the
    aggregate counters.
``overhead-accounting``
    Total prediction overhead equals activations times the configured
    overhead (Sec. 5.5 methodology), when the caller states it.
``malformed-span``
    Log self-consistency (kinds, time ordering, resource range).

Every failed check yields a structured :class:`Violation` rather than a
boolean, so callers can report, count, and filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.model.platform import Platform
from repro.sim.result import SimulationResult
from repro.sim.state import ExecutionSpan, SimulationError
from repro.workload.trace import Trace

__all__ = [
    "INVARIANTS",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "verify_result",
]

#: Invariant code -> (paper reference, one-line description).
INVARIANTS: Mapping[str, tuple[str, str]] = {
    "overlap": ("eqs. (3)-(6)", "per-resource spans never overlap"),
    "not-executable": ("eq. (1)", "work only on executable resources"),
    "before-arrival": ("eq. (5)", "no activity before the request arrives"),
    "deadline-miss": ("eq. (2)", "admitted jobs finish by their deadline"),
    "incomplete-job": ("eq. (2)", "admitted jobs execute their full WCET"),
    "work-after-completion": ("-", "no activity after completion"),
    "gpu-preemption": (
        "eqs. (8)-(11)",
        "non-preemptable work is contiguous until completion or abort",
    ),
    "migration-debt": (
        "eqs. (12)-(13)",
        "migration delay matches the task's cm matrix",
    ),
    "migration-count": ("eq. (12)", "log migrations never exceed the count"),
    "abort-accounting": ("eqs. (8)-(11)", "abort-restarts reconcile"),
    "wasted-energy": ("-", "aborted-attempt energy equals reported waste"),
    "energy-balance": (
        "eq. (14)",
        "total energy = executed work energy + migration energy",
    ),
    "admission-partition": (
        "Sec. 4.1",
        "accepted/rejected partition the trace; rejected jobs never run",
    ),
    "records-mismatch": ("-", "activation records reconcile with totals"),
    "overhead-accounting": ("Sec. 5.5", "prediction overhead reconciles"),
    "malformed-span": ("-", "execution log is self-consistent"),
}

#: Deadline slack mirroring the simulator's own completion assertion.
_DEADLINE_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to a job/resource/time when known."""

    code: str
    message: str
    job_id: int | None = None
    resource: int | None = None
    time: float | None = None

    def render(self) -> str:
        """A one-line human-readable rendering."""
        where = []
        if self.job_id is not None:
            where.append(f"job {self.job_id}")
        if self.resource is not None:
            where.append(f"resource {self.resource}")
        if self.time is not None:
            where.append(f"t={self.time:g}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return f"{self.code}: {self.message}{suffix}"


@dataclass
class VerificationReport:
    """Outcome of one verification pass over a simulation result."""

    violations: list[Violation] = field(default_factory=list)
    n_spans: int = 0
    n_jobs: int = 0
    checks: tuple[str, ...] = tuple(INVARIANTS)

    @property
    def ok(self) -> bool:
        """Whether every checked invariant held."""
        return not self.violations

    def codes(self) -> list[str]:
        """Distinct violated invariant codes, sorted."""
        return sorted({v.code for v in self.violations})

    def summary(self) -> dict[str, object]:
        """A JSON-friendly summary."""
        return {
            "ok": self.ok,
            "n_violations": len(self.violations),
            "violated_codes": self.codes(),
            "n_spans": self.n_spans,
            "n_jobs": self.n_jobs,
        }

    def render(self) -> str:
        """Multi-line rendering: verdict first, then every violation."""
        head = (
            f"schedule verification: "
            f"{'OK' if self.ok else 'FAILED'} "
            f"({self.n_jobs} jobs, {self.n_spans} spans, "
            f"{len(self.checks)} invariants)"
        )
        lines = [head]
        lines.extend(f"  {v.render()}" for v in self.violations)
        return "\n".join(lines)


class VerificationError(SimulationError):
    """Raised by ``verify=True`` runs whose schedule broke an invariant."""

    def __init__(self, report: VerificationReport) -> None:
        self.report = report
        codes = ", ".join(report.codes())
        super().__init__(
            f"schedule verification failed with "
            f"{len(report.violations)} violation(s): {codes}"
        )


@dataclass
class _JobReplay:
    """Independent accounting of one admitted job, rebuilt from spans."""

    job_id: int
    arrival: float
    absolute_deadline: float
    wcet: tuple[float, ...]
    energy: tuple[float, ...]
    resource: int | None = None
    fraction: float = 1.0
    started: bool = False
    ran_on_current: bool = False
    attempt_energy: float = 0.0
    completion_time: float | None = None
    executed_energy: float = 0.0
    migrations: int = 0
    aborts: int = 0
    wasted: float = 0.0
    # Migration-debt tracking for the current placement: how much delay
    # was paid, and whether a payment check is still pending.
    debt_paid: float = 0.0
    debt_open: bool = False
    debt_chargeable: bool = True


def verify_result(
    trace: Trace,
    platform: Platform,
    result: SimulationResult,
    *,
    expected_overhead: float | None = None,
    tol: float = 1e-6,
) -> VerificationReport:
    """Re-check ``result`` against the paper's schedule invariants.

    Parameters
    ----------
    trace, platform:
        The inputs the simulation ran on.
    result:
        The simulation outcome; its ``execution_log`` must have been
        collected (``collect_execution_log=True`` or ``verify=True``),
        unless nothing was admitted.
    expected_overhead:
        The per-activation prediction overhead the run was configured
        with, if the caller knows it; enables the overhead-accounting
        check.
    tol:
        Relative/absolute tolerance for floating-point reconciliation.

    Returns
    -------
    VerificationReport
        Structured violations; empty when the schedule is clean.
    """
    violations: list[Violation] = []
    spans = sorted(
        result.execution_log, key=lambda s: (s.start, s.end, s.resource)
    )
    if result.accepted and not spans:
        raise ValueError(
            "result has no execution log to verify; simulate with "
            "collect_execution_log=True (or verify=True)"
        )

    accepted = set(result.accepted)
    _check_partition(trace, result, violations)
    _check_spans_well_formed(trace, platform, spans, accepted, violations)
    replays = _replay_jobs(trace, platform, spans, accepted, violations, tol)
    _check_totals(result, replays, violations, tol)
    _check_non_overlap(platform, spans, violations, tol)
    _check_records(result, violations)
    if expected_overhead is not None:
        _check_overhead(result, expected_overhead, violations, tol)

    return VerificationReport(
        violations=violations,
        n_spans=len(spans),
        n_jobs=len(accepted),
    )


def _close(a: float, b: float, tol: float) -> bool:
    return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


def _check_partition(
    trace: Trace, result: SimulationResult, violations: list[Violation]
) -> None:
    """Sec. 4.1: every request is exactly one of accepted / rejected."""
    accepted = set(result.accepted)
    rejected = set(result.rejected)
    if result.n_requests != len(trace):
        violations.append(
            Violation(
                "admission-partition",
                f"result covers {result.n_requests} requests, trace has "
                f"{len(trace)}",
            )
        )
    both = accepted & rejected
    for job_id in sorted(both):
        violations.append(
            Violation(
                "admission-partition",
                "request is both accepted and rejected",
                job_id=job_id,
            )
        )
    missing = set(range(len(trace))) - accepted - rejected
    for job_id in sorted(missing):
        violations.append(
            Violation(
                "admission-partition",
                "request neither accepted nor rejected",
                job_id=job_id,
            )
        )
    stray = (accepted | rejected) - set(range(len(trace)))
    for job_id in sorted(stray):
        violations.append(
            Violation(
                "admission-partition",
                "admission outcome for an index outside the trace",
                job_id=job_id,
            )
        )


def _check_spans_well_formed(
    trace: Trace,
    platform: Platform,
    spans: Sequence[ExecutionSpan],
    accepted: set[int],
    violations: list[Violation],
) -> None:
    """Span sanity, executability (eq. (1)) and arrival bounds (eq. (5))."""
    for span in spans:
        if span.kind not in ("work", "migration"):
            violations.append(
                Violation(
                    "malformed-span",
                    f"unknown span kind {span.kind!r}",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
        if span.end < span.start or span.start < 0:
            violations.append(
                Violation(
                    "malformed-span",
                    f"span runs backwards: [{span.start:g}, {span.end:g}]",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
        if not 0 <= span.resource < platform.size:
            violations.append(
                Violation(
                    "malformed-span",
                    f"span on unknown resource {span.resource}",
                    job_id=span.job_id,
                    time=span.start,
                )
            )
            continue
        if span.job_id not in accepted:
            violations.append(
                Violation(
                    "admission-partition",
                    "execution span for a job that was never admitted",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
            continue
        request = trace[span.job_id]
        if span.start < request.arrival - _DEADLINE_TOL:
            violations.append(
                Violation(
                    "before-arrival",
                    f"activity at {span.start:g} before arrival "
                    f"{request.arrival:g}",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )
        task = trace.task_of(request)
        if span.kind == "work" and not task.executable_on(span.resource):
            violations.append(
                Violation(
                    "not-executable",
                    "work on a resource the task cannot execute on",
                    job_id=span.job_id,
                    resource=span.resource,
                    time=span.start,
                )
            )


def _check_non_overlap(
    platform: Platform,
    spans: Sequence[ExecutionSpan],
    violations: list[Violation],
    tol: float,
) -> None:
    """Eqs. (3)-(6): one resource executes at most one thing at a time."""
    for resource in range(platform.size):
        mine = [s for s in spans if s.resource == resource]
        for prev, nxt in zip(mine, mine[1:], strict=False):
            if nxt.start < prev.end - tol:
                violations.append(
                    Violation(
                        "overlap",
                        f"job {nxt.job_id} starts at {nxt.start:g} while "
                        f"job {prev.job_id} runs until {prev.end:g}",
                        job_id=nxt.job_id,
                        resource=resource,
                        time=nxt.start,
                    )
                )


def _settle_debt(
    replay: _JobReplay,
    task_cm: tuple[tuple[float, ...], ...],
    dst: int,
    violations: list[Violation],
    tol: float,
    at: float,
) -> None:
    """Close the open migration-debt window at the first work on ``dst``.

    The actual source resource of the last hop may be invisible (a
    still-queued job can be remapped without leaving a span), so the
    paid delay must match ``cm[k][dst]`` for *some* source ``k`` — and
    ``0`` is additionally legal while the job has never started (an
    unstarted remap may be uncharged).
    """
    if not replay.debt_open:
        return
    replay.debt_open = False
    candidates = [
        task_cm[k][dst] for k in range(len(task_cm)) if k != dst
    ]
    if not replay.debt_chargeable:
        candidates.append(0.0)
    if not any(_close(replay.debt_paid, c, tol) for c in candidates):
        violations.append(
            Violation(
                "migration-debt",
                f"paid migration delay {replay.debt_paid:g} matches no "
                f"cm[*][{dst}] entry",
                job_id=replay.job_id,
                resource=dst,
                time=at,
            )
        )
    replay.debt_paid = 0.0


def _replay_jobs(
    trace: Trace,
    platform: Platform,
    spans: Sequence[ExecutionSpan],
    accepted: set[int],
    violations: list[Violation],
    tol: float,
) -> list[_JobReplay]:
    """Rebuild every admitted job's life from its spans.

    Checks deadlines (eq. (2)), work conservation, GPU non-preemption
    (eqs. (8)-(11)) and migration-debt charging (eqs. (12)-(13)); the
    returned replays carry the energy/migration/abort totals for the
    global reconciliation checks.
    """
    by_job: dict[int, list[ExecutionSpan]] = {}
    for span in spans:
        if span.job_id in accepted and 0 <= span.resource < platform.size:
            by_job.setdefault(span.job_id, []).append(span)

    replays: list[_JobReplay] = []
    for job_id in sorted(accepted):
        request = trace[job_id] if 0 <= job_id < len(trace) else None
        if request is None:
            continue  # already reported by the partition check
        task = trace.task_of(request)
        replay = _JobReplay(
            job_id=job_id,
            arrival=request.arrival,
            absolute_deadline=request.absolute_deadline,
            wcet=task.wcet,
            energy=task.energy,
        )
        replays.append(replay)
        last_work_end: float | None = None
        for span in by_job.get(job_id, []):
            if replay.completion_time is not None:
                violations.append(
                    Violation(
                        "work-after-completion",
                        f"activity at {span.start:g} after completion at "
                        f"{replay.completion_time:g}",
                        job_id=job_id,
                        resource=span.resource,
                        time=span.start,
                    )
                )
                break
            if replay.resource is None:
                replay.resource = span.resource
                if span.kind == "migration":
                    # Debt with no visible source hop: check it against
                    # the cm matrix once work starts.
                    replay.debt_open = True
                    replay.debt_chargeable = False
            elif span.resource != replay.resource:
                src = replay.resource
                if replay.debt_open and replay.debt_paid > (
                    max(
                        task.cm(k, src)
                        for k in range(platform.size)
                        if k != src
                    )
                    + tol
                    if platform.size > 1
                    else tol
                ):
                    violations.append(
                        Violation(
                            "migration-debt",
                            f"paid delay {replay.debt_paid:g} exceeds every "
                            f"cm[*][{src}] entry",
                            job_id=job_id,
                            resource=src,
                            time=span.start,
                        )
                    )
                if replay.ran_on_current and not platform.is_preemptable(src):
                    # Abort-restart: work resets, attempt energy is waste.
                    replay.aborts += 1
                    replay.wasted += replay.attempt_energy
                    replay.attempt_energy = 0.0
                    replay.fraction = 1.0
                    replay.debt_open = True
                    replay.debt_chargeable = False  # aborts owe no delay
                else:
                    replay.migrations += 1
                    replay.debt_open = True
                    replay.debt_chargeable = replay.started
                replay.debt_paid = 0.0
                replay.resource = span.resource
                replay.ran_on_current = False
                last_work_end = None
            if span.kind == "migration":
                replay.debt_paid += span.length
                continue
            # Work span.
            _settle_debt(
                replay,
                task.migration_time,
                span.resource,
                violations,
                tol,
                span.start,
            )
            if not task.executable_on(span.resource):
                continue  # flagged as not-executable already
            if (
                not platform.is_preemptable(span.resource)
                and replay.ran_on_current
                and last_work_end is not None
                and span.start > last_work_end + tol
            ):
                violations.append(
                    Violation(
                        "gpu-preemption",
                        f"non-preemptable work interrupted: gap "
                        f"[{last_work_end:g}, {span.start:g}] before "
                        "completion",
                        job_id=job_id,
                        resource=span.resource,
                        time=span.start,
                    )
                )
            wcet = task.wcet[span.resource]
            delta = span.length / wcet
            energy = task.energy[span.resource] * delta
            replay.fraction -= delta
            replay.attempt_energy += energy
            replay.executed_energy += energy
            replay.started = True
            replay.ran_on_current = True
            last_work_end = span.end
            if replay.fraction <= tol:
                replay.completion_time = span.end
                if span.end > replay.absolute_deadline + _DEADLINE_TOL:
                    violations.append(
                        Violation(
                            "deadline-miss",
                            f"finished at {span.end:g}, deadline "
                            f"{replay.absolute_deadline:g}",
                            job_id=job_id,
                            resource=span.resource,
                            time=span.end,
                        )
                    )
        if replay.completion_time is None:
            violations.append(
                Violation(
                    "incomplete-job",
                    f"admitted job never completed: {replay.fraction:.6f} "
                    "of its work remains",
                    job_id=job_id,
                    resource=replay.resource,
                )
            )
    return replays


def _check_totals(
    result: SimulationResult,
    replays: Sequence[_JobReplay],
    violations: list[Violation],
    tol: float,
) -> None:
    """Reconcile the result's aggregate counters with the replay."""
    executed = sum(r.executed_energy for r in replays)
    wasted = sum(r.wasted for r in replays)
    aborts = sum(r.aborts for r in replays)
    migrations = sum(r.migrations for r in replays)

    expected_total = executed + result.migration_energy
    if not _close(result.total_energy, expected_total, max(tol, tol * expected_total)):
        violations.append(
            Violation(
                "energy-balance",
                f"total energy {result.total_energy:g} != executed "
                f"{executed:g} + migration {result.migration_energy:g}",
            )
        )
    if not _close(result.wasted_energy, wasted, max(tol, tol * max(wasted, 1.0))):
        violations.append(
            Violation(
                "wasted-energy",
                f"reported waste {result.wasted_energy:g} != aborted-attempt "
                f"energy {wasted:g}",
            )
        )
    if aborts != result.abort_count:
        violations.append(
            Violation(
                "abort-accounting",
                f"log shows {aborts} abort-restarts, result reports "
                f"{result.abort_count}",
            )
        )
    if migrations > result.migration_count:
        violations.append(
            Violation(
                "migration-count",
                f"log shows {migrations} migrations, result reports only "
                f"{result.migration_count}",
            )
        )


def _check_records(
    result: SimulationResult, violations: list[Violation]
) -> None:
    """Per-activation records, when collected, must match the totals."""
    if not result.records:
        return
    if len(result.records) != result.n_requests:
        violations.append(
            Violation(
                "records-mismatch",
                f"{len(result.records)} records for {result.n_requests} "
                "requests",
            )
        )
    admitted = [r.request_index for r in result.records if r.admitted]
    refused = [r.request_index for r in result.records if not r.admitted]
    if admitted != result.accepted or refused != result.rejected:
        violations.append(
            Violation(
                "records-mismatch",
                "admission flags in records disagree with accepted/rejected "
                "lists",
            )
        )
    solver_calls = sum(r.solver_calls for r in result.records)
    if solver_calls != result.solver_calls_total:
        violations.append(
            Violation(
                "records-mismatch",
                f"records sum to {solver_calls} solver calls, result "
                f"reports {result.solver_calls_total}",
            )
        )
    used = sum(1 for r in result.records if r.admitted and r.used_prediction)
    if used != result.predictions_used:
        violations.append(
            Violation(
                "records-mismatch",
                f"records show {used} prediction-constrained admissions, "
                f"result reports {result.predictions_used}",
            )
        )
    for record in result.records:
        if record.decision_time < record.arrival - _DEADLINE_TOL:
            violations.append(
                Violation(
                    "records-mismatch",
                    f"decision at {record.decision_time:g} precedes arrival "
                    f"{record.arrival:g}",
                    job_id=record.request_index,
                    time=record.decision_time,
                )
            )


def _check_overhead(
    result: SimulationResult,
    expected_overhead: float,
    violations: list[Violation],
    tol: float,
) -> None:
    """Sec. 5.5: overhead is charged once per activation, in full."""
    expected = expected_overhead * result.n_requests
    if not _close(result.prediction_overhead_total, expected, max(tol, tol * max(expected, 1.0))):
        violations.append(
            Violation(
                "overhead-accounting",
                f"prediction overhead total "
                f"{result.prediction_overhead_total:g} != "
                f"{result.n_requests} activations x {expected_overhead:g}",
            )
        )
