"""Structured degradation records.

Every graceful-degradation decision the runtime makes — falling back to
the no-prediction path, remapping jobs off a failed resource, evicting a
job that cannot be re-admitted, substituting a heuristic solve for a
hung solver — is recorded as one :class:`DegradationEvent` on the
:class:`~repro.sim.result.SimulationResult`.  The events are plain data
(no behaviour), so they serialise, diff, and digest cleanly; the
fault-aware invariants in :mod:`repro.analysis.invariants` reconcile
them against the execution log.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEGRADATION_KINDS", "DegradationEvent"]

#: Every kind the runtime may emit, with a one-line meaning.
DEGRADATION_KINDS: dict[str, str] = {
    "resource-down": "a resource became unavailable",
    "resource-up": "a failed resource came back",
    "job-readmitted": "a displaced job found a new feasible mapping",
    "job-evicted": "a displaced job could not be re-admitted and was lost",
    "predictor-exception": "the predictor raised; planned without it",
    "predictor-timeout": "the predictor timed out; planned without it",
    "predictor-garbage": "the predictor returned an invalid forecast",
    "predictor-drift": "a drift detector fired on the forecast error stream",
    "predictor-retrain": "the online predictor dropped its model to relearn",
    "predictor-fallback": "drift exhausted the retrain budget; predictions off",
    "solver-timeout": "the solver exceeded its budget; fallback used",
    "solver-exception": "the solver raised; fallback used",
    "solver-overrun": "the solver exceeded its wall-clock budget",
    "solver-unavailable": "primary and fallback both failed; rejected",
}


@dataclass(frozen=True)
class DegradationEvent:
    """One graceful-degradation decision, anchored in simulated time.

    Attributes
    ----------
    time:
        Simulated time at which the degradation happened.
    kind:
        One of :data:`DEGRADATION_KINDS`.
    job_id, resource, request_index:
        Anchors, where applicable (``request_index`` is the trace index
        of the activation during which the event fired).
    detail:
        Free-form human-readable context (exception text, counts, ...).
    """

    time: float
    kind: str
    job_id: int | None = None
    resource: int | None = None
    request_index: int | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in DEGRADATION_KINDS:
            raise ValueError(
                f"unknown degradation kind {self.kind!r}; expected one of "
                f"{sorted(DEGRADATION_KINDS)}"
            )

    def render(self) -> str:
        """A one-line human-readable rendering."""
        where = []
        if self.job_id is not None:
            where.append(f"job {self.job_id}")
        if self.resource is not None:
            where.append(f"resource {self.resource}")
        if self.request_index is not None:
            where.append(f"req {self.request_index}")
        suffix = f" [{', '.join(where)}]" if where else ""
        detail = f": {self.detail}" if self.detail else ""
        return f"t={self.time:g} {self.kind}{suffix}{detail}"

    def to_dict(self) -> dict:
        """A JSON-safe representation."""
        return {
            "time": self.time,
            "kind": self.kind,
            "job_id": self.job_id,
            "resource": self.resource,
            "request_index": self.request_index,
            "detail": self.detail,
        }
