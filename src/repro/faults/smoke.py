"""Verified fault-injection smoke grid (``repro faults --smoke``).

The zero-fault verifier (:mod:`repro.analysis.smoke`) proves schedules
are correct when nothing goes wrong; this grid proves the *degradation
paths* are.  A small {strategy} x {predictor} matrix runs under a set of
canonical fault scenarios — transient and permanent resource outages,
predictor fault windows, solver faults behind the watchdog, and a
seeded generated mix — with ``SimulationConfig(verify=True)``, so every
degraded schedule is re-checked against the fault-aware invariants
(``down-resource``, ``predictor-fallback``, ``eviction-accounting``, see
DESIGN.md §10) on top of the paper's constraints.  Violations are
captured per cell instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.invariants import VerificationError, Violation
from repro.experiments.common import standard_platform, standard_traces
from repro.experiments.config import HarnessScale
from repro.faults.plan import (
    FaultPlan,
    PredictorFault,
    ResourceOutage,
    SolverFault,
)
from repro.registry import resolve_predictor, resolve_strategy
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.trace import Trace
from repro.workload.tracegen import DeadlineGroup

__all__ = ["FaultSmokeCell", "FaultSmokeReport", "run_fault_smoke"]


@dataclass(frozen=True)
class FaultSmokeCell:
    """One verified (configuration, scenario, trace) cell."""

    label: str
    scenario: str
    trace_index: int
    ok: bool
    n_spans: int
    n_degradations: int
    n_evicted: int
    violations: tuple[Violation, ...] = ()


@dataclass
class FaultSmokeReport:
    """All cells of one fault-injection smoke run."""

    group: DeadlineGroup
    scale: HarnessScale
    seed: int
    cells: list[FaultSmokeCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def n_violations(self) -> int:
        return sum(len(cell.violations) for cell in self.cells)

    @property
    def n_degradations(self) -> int:
        return sum(cell.n_degradations for cell in self.cells)

    def render(self) -> str:
        lines = [
            f"fault-injection smoke run: {self.group.value} group, "
            f"{self.scale.n_traces} traces x {self.scale.n_requests} "
            f"requests, seed {self.seed}, {len(self.cells)} cells -> "
            f"{'OK' if self.ok else 'FAILED'}"
        ]
        for cell in self.cells:
            status = (
                "ok" if cell.ok else f"{len(cell.violations)} violation(s)"
            )
            lines.append(
                f"  {cell.label} / {cell.scenario} / trace "
                f"{cell.trace_index}: {status} ({cell.n_spans} spans, "
                f"{cell.n_degradations} degradation(s), "
                f"{cell.n_evicted} evicted)"
            )
            lines.extend(f"    {v.render()}" for v in cell.violations)
        return "\n".join(lines)


def _scenario_plans(
    trace: Trace, n_resources: int, seed: int
) -> dict[str, FaultPlan]:
    """Canonical fault scenarios sized to one trace's arrival span.

    Windows are placed at fixed fractions of the span so every scenario
    actually overlaps live jobs regardless of the trace scale; the
    generated mix keeps one spare resource so the platform never loses
    everything at once.
    """
    span = trace.stats().span or 100.0
    third = span / 3.0
    return {
        # The last resource (the GPU on the standard platform) is the
        # most-loaded one, so its outage actually displaces jobs.
        "transient-outage": FaultPlan(
            seed=seed,
            outages=(ResourceOutage(n_resources - 1, third, 2.0 * third),),
        ),
        "permanent-outage": FaultPlan(
            seed=seed,
            outages=(ResourceOutage(1, third),),
        ),
        "predictor-faults": FaultPlan(
            seed=seed,
            predictor_faults=(
                PredictorFault("exception", 0.0, third),
                PredictorFault("garbage", 2.0 * third, span + 1.0),
            ),
        ),
        "solver-watchdog": FaultPlan(
            seed=seed,
            solver_faults=(SolverFault("exception", 0.0, 2.0 * third),),
        ),
        # Coverage fractions sized for ~2 expected outage windows across
        # the faultable resources and ~2 predictor fault windows.
        "generated-mix": FaultPlan.generate(
            seed,
            horizon=span + 1.0,
            n_resources=n_resources,
            outage_rate=min(
                1.0, 2.0 * third / ((span + 1.0) * (n_resources - 1))
            ),
            outage_duration=third,
            predictor_fault_rate=min(1.0, 2.0 * third / (span + 1.0)),
            predictor_fault_duration=third,
            spare_resource=n_resources - 1,
        ),
    }


def run_fault_smoke(
    scale: HarnessScale | None = None,
    *,
    group: DeadlineGroup = DeadlineGroup.VT,
    strategies: Sequence[str] = ("heuristic",),
    predictors: Sequence[str | None] = (None, "oracle"),
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> FaultSmokeReport:
    """Run the fault-scenario grid with schedule verification per cell.

    Every simulation runs with ``verify=True`` and record collection and
    hands the active :class:`FaultPlan` to the verifier, so the
    fault-aware invariants check the degradations the scenario caused.
    """
    scale = scale or HarnessScale(n_traces=2, n_requests=40, master_seed=0)
    platform = standard_platform()
    traces = standard_traces(group, scale)
    report = FaultSmokeReport(group=group, scale=scale, seed=seed)
    for strategy_name in strategies:
        for predictor_name in predictors:
            label = f"{strategy_name}-{predictor_name or 'off'}"
            for index, trace in enumerate(traces):
                plans = _scenario_plans(trace, platform.size, seed)
                for scenario, plan in plans.items():
                    if progress is not None:
                        progress(f"{label} / {scenario} / trace {index}")
                    config = SimulationConfig(
                        verify=True, collect_records=True, fault_plan=plan
                    )
                    simulator = Simulator(
                        platform,
                        resolve_strategy(strategy_name),
                        resolve_predictor(predictor_name)
                        if predictor_name is not None
                        else None,
                        config,
                    )
                    try:
                        result = simulator.run(trace)
                    except VerificationError as exc:
                        report.cells.append(
                            FaultSmokeCell(
                                label=label,
                                scenario=scenario,
                                trace_index=index,
                                ok=False,
                                n_spans=exc.report.n_spans,
                                n_degradations=0,
                                n_evicted=0,
                                violations=tuple(exc.report.violations),
                            )
                        )
                        continue
                    verification = result.verification
                    assert verification is not None  # verify=True
                    report.cells.append(
                        FaultSmokeCell(
                            label=label,
                            scenario=scenario,
                            trace_index=index,
                            ok=verification.ok,
                            n_spans=verification.n_spans,
                            n_degradations=len(result.degradations),
                            n_evicted=len(result.evicted),
                        )
                    )
    return report
