"""A watchdog wrapping the primary mapping solver.

Exact solvers are the fragile part of the RM: the MILP backend can hang
on a pathological activation, the branch-and-bound search can blow its
node budget, and an injected :class:`~repro.faults.plan.SolverFault`
deliberately simulates both.  :class:`SolverWatchdog` keeps the
admission protocol alive through all of it: any primary-solver fault —
injected or real — degrades to the (deadline-aware, polynomial-time)
fallback strategy instead of crashing the run, and every degradation is
buffered for the simulator to attach to the
:class:`~repro.sim.result.SimulationResult` as
:class:`~repro.faults.events.DegradationEvent` records.

Determinism: injected faults are resolved purely from the activation
time against the plan's windows, so replays are bit-identical.  The
optional wall-clock budget (``wall_budget``) only *observes* by default
(it records ``solver-overrun`` events); enforcement
(``enforce_budget=True``) substitutes the fallback's decision and is
therefore machine-dependent — leave it off when reproducibility matters
more than latency.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.core.base import MappingDecision, MappingStrategy
from repro.core.context import RMContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["SolverWatchdog"]


class SolverWatchdog(MappingStrategy):
    """Degrade primary-solver faults to a fallback strategy.

    Parameters
    ----------
    primary:
        The strategy being guarded (typically ``milp`` or ``exact``).
    fallback:
        The strategy substituted when the primary faults (typically the
        paper's ``heuristic``); ``None`` means no fallback — a faulting
        primary then yields an infeasible decision (the arrival is
        rejected, previously admitted jobs keep their feasible plan).
    plan:
        Optional :class:`~repro.faults.plan.FaultPlan` whose solver
        fault windows are injected deterministically: inside a window
        the primary is not called at all (a ``"timeout"`` or
        ``"exception"`` is simulated) and the fallback solves instead.
    wall_budget:
        Optional wall-clock budget in seconds for one primary solve.
        Exceeding it records a ``solver-overrun`` event; with
        ``enforce_budget=True`` the overrun solve's decision is
        discarded and the fallback's used instead (non-deterministic
        across machines — off by default).
    """

    def __init__(
        self,
        primary: MappingStrategy,
        fallback: MappingStrategy | None = None,
        *,
        plan: "FaultPlan | None" = None,
        wall_budget: float | None = None,
        enforce_budget: bool = False,
    ) -> None:
        if wall_budget is not None and wall_budget <= 0:
            raise ValueError(f"wall_budget must be > 0, got {wall_budget}")
        self.primary = primary
        self.fallback = fallback
        self.plan = plan
        self.wall_budget = wall_budget
        self.enforce_budget = enforce_budget
        self.name = f"watchdog({primary.name})"
        self._events: list[tuple[str, str]] = []

    def drain_events(self) -> list[tuple[str, str]]:
        """Return and clear the buffered ``(kind, detail)`` degradations.

        The simulator calls this after every admission decision and
        converts the entries into timestamped
        :class:`~repro.faults.events.DegradationEvent` records.
        """
        events = self._events
        self._events = []
        return events

    def solve(self, context: RMContext) -> MappingDecision:
        """Solve via the primary, degrading on any fault (see class doc)."""
        injected = (
            self.plan.solver_fault_at(context.time)
            if self.plan is not None
            else None
        )
        if injected is not None:
            self._events.append(
                (
                    f"solver-{injected}",
                    f"injected {injected} on {self.primary.name}",
                )
            )
            return self._solve_fallback(context)
        started = time.perf_counter() if self.wall_budget is not None else 0.0
        try:
            decision = self.primary.solve(context)
        except Exception as exc:  # noqa: BLE001 - the watchdog's entire job
            self._events.append(
                (
                    "solver-exception",
                    f"{self.primary.name}: {type(exc).__name__}: {exc}",
                )
            )
            return self._solve_fallback(context)
        if self.wall_budget is not None:
            elapsed = time.perf_counter() - started
            if elapsed > self.wall_budget:
                self._events.append(
                    (
                        "solver-overrun",
                        f"{self.primary.name} took {elapsed:.3f}s "
                        f"(budget {self.wall_budget:.3f}s)",
                    )
                )
                if self.enforce_budget:
                    return self._solve_fallback(context)
        return decision

    def _solve_fallback(self, context: RMContext) -> MappingDecision:
        if self.fallback is None:
            self._events.append(
                ("solver-unavailable", "no fallback configured")
            )
            return MappingDecision.infeasible()
        try:
            return self.fallback.solve(context)
        except Exception as exc:  # noqa: BLE001 - last line of defence
            self._events.append(
                (
                    "solver-unavailable",
                    f"fallback {self.fallback.name}: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
            return MappingDecision.infeasible()

    def __repr__(self) -> str:
        return (
            f"SolverWatchdog(primary={self.primary!r}, "
            f"fallback={self.fallback!r})"
        )
