"""Seeded wire-level fault plans for the live admission service.

The PR 4 :class:`~repro.faults.plan.FaultPlan` perturbs the *simulated*
world (resources, predictors, solvers, traces).  A
:class:`ServeFaultPlan` perturbs the *service* itself — the socket and
the journal — which is what the chaos harness (``repro chaos``) drives
against a live :class:`~repro.serve.server.AdmissionServer`:

* :class:`ResponseLatency` — responses in an ordinal window are delayed
  by ``delay`` wall seconds before hitting the wire (tests client
  timeouts and retry backoff);
* :class:`ResponseCorruption` — one response line is truncated mid-frame
  (``"truncate"``: the newline never arrives, the client times out) or
  replaced with garbage bytes (``"garbage"``: malformed NDJSON, the
  client must resynchronise by reconnecting);
* :class:`ConnectionDrop` — the connection is aborted mid-frame at one
  response ordinal (half the line is written, then RST), the classic
  crash-during-reply window that idempotency keys exist for;
* :class:`JournalFault` — journal append *attempts* fail for a window
  of append ordinals (tests the pending-queue re-append path and the
  ``journal-failed`` refusal policy).  Windows are keyed on the
  monotonically increasing attempt counter, not the record's own seq:
  a queued record retries under fresh ordinals, so a bounded window
  always clears instead of wedging the pending queue.

Windows are indexed by **response ordinal / operation sequence**, not
wall time: wall time is nondeterministic, ordinals make a fault
schedule exactly reproducible across runs.  Every stochastic draw in
:meth:`ServeFaultPlan.generate` derives from ``(seed, name)`` via
:func:`repro.util.rng.derive_seed`, and plans round-trip through JSON
so the chaos CLI can hand one to a server subprocess.

Slow-loris clients are the one fault injected from the *client* side
(``ServeClient.send_raw(..., chunk_size=..., inter_chunk_delay=...)``):
a server cannot inject its own slow reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import Iterable

import numpy as np

from repro.util.rng import derive_seed

__all__ = [
    "ConnectionDrop",
    "JournalFault",
    "ResponseCorruption",
    "ResponseLatency",
    "ServeFaultPlan",
]

_CORRUPTION_KINDS = ("truncate", "garbage")


def _check_ordinal_window(owner: str, start: int, end: int) -> None:
    if start < 0:
        raise ValueError(f"{owner}: start must be >= 0, got {start}")
    if end <= start:
        raise ValueError(f"{owner}: end ({end}) must be > start ({start})")


def _check_disjoint(owner: str, windows: Iterable[tuple[int, int]]) -> None:
    ordered = sorted(windows)
    for (_, prev_end), (next_start, _) in zip(
        ordered, ordered[1:], strict=False
    ):
        if next_start < prev_end:
            raise ValueError(f"{owner}: windows overlap")


@dataclass(frozen=True)
class ResponseLatency:
    """Responses with ordinal in ``[start, end)`` are delayed."""

    start: int
    end: int
    delay: float

    def __post_init__(self) -> None:
        _check_ordinal_window("response latency", self.start, self.end)
        if not self.delay > 0:
            raise ValueError(f"delay must be > 0, got {self.delay}")

    def covers(self, ordinal: int) -> bool:
        return self.start <= ordinal < self.end


@dataclass(frozen=True)
class ResponseCorruption:
    """One response line is truncated or replaced with garbage."""

    at: int
    kind: str = "truncate"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.kind not in _CORRUPTION_KINDS:
            raise ValueError(
                f"unknown corruption kind {self.kind!r}; expected one of "
                f"{_CORRUPTION_KINDS}"
            )


@dataclass(frozen=True)
class ConnectionDrop:
    """The connection is aborted mid-frame at one response ordinal."""

    at: int

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")


@dataclass(frozen=True)
class JournalFault:
    """Journal append attempts fail for ordinals in ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        _check_ordinal_window("journal fault", self.start, self.end)

    def covers(self, ordinal: int) -> bool:
        return self.start <= ordinal < self.end


@dataclass(frozen=True)
class ServeFaultPlan:
    """One deterministic wire/journal fault schedule (see module doc)."""

    seed: int = 0
    latencies: tuple[ResponseLatency, ...] = field(default=())
    corruptions: tuple[ResponseCorruption, ...] = field(default=())
    drops: tuple[ConnectionDrop, ...] = field(default=())
    journal_faults: tuple[JournalFault, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "latencies", tuple(self.latencies))
        object.__setattr__(self, "corruptions", tuple(self.corruptions))
        object.__setattr__(self, "drops", tuple(self.drops))
        object.__setattr__(
            self, "journal_faults", tuple(self.journal_faults)
        )
        _check_disjoint(
            "response latency",
            ((w.start, w.end) for w in self.latencies),
        )
        _check_disjoint(
            "journal fault",
            ((w.start, w.end) for w in self.journal_faults),
        )
        touched = [c.at for c in self.corruptions] + [
            d.at for d in self.drops
        ]
        if len(touched) != len(set(touched)):
            raise ValueError(
                "corruptions and drops must target distinct response "
                "ordinals (one mutilation per frame)"
            )

    @property
    def is_empty(self) -> bool:
        return not (
            self.latencies
            or self.corruptions
            or self.drops
            or self.journal_faults
        )

    # ------------------------------------------------------------------
    # Schedule queries (server-side injection points)
    # ------------------------------------------------------------------

    def latency_at(self, ordinal: int) -> float:
        for window in self.latencies:
            if window.covers(ordinal):
                return window.delay
        return 0.0

    def corruption_at(self, ordinal: int) -> str | None:
        for corruption in self.corruptions:
            if corruption.at == ordinal:
                return corruption.kind
        return None

    def drop_at(self, ordinal: int) -> bool:
        return any(drop.at == ordinal for drop in self.drops)

    def journal_fault_at(self, ordinal: int) -> bool:
        return any(window.covers(ordinal) for window in self.journal_faults)

    def garbage_line(self, ordinal: int) -> bytes:
        """Deterministic non-JSON bytes for a ``"garbage"`` corruption."""
        digest = sha256(f"{self.seed}:garbage:{ordinal}".encode())
        return b"!garbage " + digest.hexdigest().encode("ascii")

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        horizon: int,
        latency_rate: float = 0.0,
        latency_delay: float = 0.05,
        latency_span: int = 3,
        corruption_rate: float = 0.0,
        drop_rate: float = 0.0,
        journal_fault_rate: float = 0.0,
        journal_fault_span: int = 4,
    ) -> "ServeFaultPlan":
        """Draw a fault schedule over ``horizon`` response ordinals.

        Each ``*_rate`` is the expected fraction of ordinals affected;
        all draws derive from ``(seed, stream-name)`` so two calls with
        the same arguments yield the identical plan.
        """
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        latencies = tuple(
            ResponseLatency(start, min(start + latency_span, horizon), latency_delay)
            for start in _draw_starts(
                seed, "latency", horizon, latency_rate, latency_span
            )
        )
        corrupt_points = set(
            _draw_points(seed, "corrupt", horizon, corruption_rate)
        )
        drop_points = (
            set(_draw_points(seed, "drop", horizon, drop_rate))
            - corrupt_points
        )
        kind_rng = np.random.default_rng(derive_seed(seed, "corrupt-kind"))
        corruptions = [
            ResponseCorruption(
                ordinal, _CORRUPTION_KINDS[int(kind_rng.integers(2))]
            )
            for ordinal in sorted(corrupt_points)
        ]
        drops = [ConnectionDrop(ordinal) for ordinal in sorted(drop_points)]
        journal_faults = tuple(
            JournalFault(start, min(start + journal_fault_span, horizon))
            for start in _draw_starts(
                seed,
                "journal",
                horizon,
                journal_fault_rate,
                journal_fault_span,
            )
        )
        return cls(
            seed=seed,
            latencies=latencies,
            corruptions=tuple(corruptions),
            drops=tuple(drops),
            journal_faults=journal_faults,
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "latencies": [
                {"start": w.start, "end": w.end, "delay": w.delay}
                for w in self.latencies
            ],
            "corruptions": [
                {"at": c.at, "kind": c.kind} for c in self.corruptions
            ],
            "drops": [{"at": d.at} for d in self.drops],
            "journal_faults": [
                {"start": w.start, "end": w.end}
                for w in self.journal_faults
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeFaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            latencies=tuple(
                ResponseLatency(
                    int(w["start"]), int(w["end"]), float(w["delay"])
                )
                for w in payload.get("latencies", [])
            ),
            corruptions=tuple(
                ResponseCorruption(int(c["at"]), str(c.get("kind", "truncate")))
                for c in payload.get("corruptions", [])
            ),
            drops=tuple(
                ConnectionDrop(int(d["at"]))
                for d in payload.get("drops", [])
            ),
            journal_faults=tuple(
                JournalFault(int(w["start"]), int(w["end"]))
                for w in payload.get("journal_faults", [])
            ),
        )


def _draw_points(
    seed: int, name: str, horizon: int, rate: float
) -> list[int]:
    """Seeded ordinal draw: each ordinal is hit with probability ``rate``."""
    if rate <= 0:
        return []
    rng = np.random.default_rng(derive_seed(seed, f"serve-fault:{name}"))
    hits = rng.random(horizon) < rate
    return [int(i) for i in np.flatnonzero(hits)]


def _draw_starts(
    seed: int, name: str, horizon: int, rate: float, span: int
) -> list[int]:
    """Window starts drawn like points, then pruned to disjointness."""
    starts: list[int] = []
    last_end = -1
    for point in _draw_points(seed, name, horizon, rate / max(span, 1)):
        if point > last_end:
            starts.append(point)
            last_end = point + span
    return starts
