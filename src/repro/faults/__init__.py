"""Deterministic fault injection and graceful degradation (DESIGN.md §10).

The subsystem has four parts:

* :mod:`repro.faults.plan` — the seeded :class:`FaultPlan` DSL
  describing resource outages, predictor faults, solver faults, and
  request-stream perturbations;
* :mod:`repro.faults.events` — structured :class:`DegradationEvent`
  records of every graceful-degradation decision;
* :mod:`repro.faults.watchdog` — the :class:`SolverWatchdog` guarding
  primary solves with a heuristic fallback;
* :mod:`repro.faults.serve` — the seeded :class:`ServeFaultPlan` DSL of
  wire/journal faults (response latency, NDJSON corruption, mid-frame
  connection drops, journal-write failures) the chaos harness drives
  against the live service;
* :mod:`repro.faults.smoke` — the verified fault smoke grid behind
  ``repro faults --smoke`` (imported lazily: it pulls in the simulator
  and experiment layers).
"""

from repro.faults.events import DEGRADATION_KINDS, DegradationEvent
from repro.faults.plan import (
    FaultPlan,
    PredictorFault,
    ResourceOutage,
    SolverFault,
    TraceFault,
)
from repro.faults.serve import (
    ConnectionDrop,
    JournalFault,
    ResponseCorruption,
    ResponseLatency,
    ServeFaultPlan,
)
from repro.faults.watchdog import SolverWatchdog

__all__ = [
    "DEGRADATION_KINDS",
    "ConnectionDrop",
    "DegradationEvent",
    "FaultPlan",
    "JournalFault",
    "PredictorFault",
    "ResourceOutage",
    "ResponseCorruption",
    "ResponseLatency",
    "ServeFaultPlan",
    "SolverFault",
    "SolverWatchdog",
    "TraceFault",
]
