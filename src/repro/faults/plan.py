"""The seeded fault-injection DSL.

A :class:`FaultPlan` describes *when and how the world misbehaves*
during one simulation, fully deterministically:

* :class:`ResourceOutage` — a resource is unavailable during
  ``[start, end)`` (``end = inf`` makes the outage permanent).  Jobs
  mapped there when the outage begins lose their execution state and are
  re-admitted or evicted (see :mod:`repro.sim.simulator`).
* :class:`PredictorFault` — during ``[start, end)`` the predictor
  raises (``"exception"``), stalls (``"timeout"``) or emits an invalid
  forecast (``"garbage"``); the RM degrades to the paper's
  no-prediction path instead of crashing.
* :class:`SolverFault` — during ``[start, end)`` the primary solver
  hangs (``"timeout"``) or raises (``"exception"``); the
  :class:`~repro.faults.watchdog.SolverWatchdog` substitutes the
  fallback strategy.
* :class:`TraceFault` — the request stream itself is perturbed before
  replay: arrival bursts (``"burst"``), timestamp jitter (``"jitter"``),
  duplicate re-submissions (``"duplicate"``) or a workload regime shift
  (``"regime-shift"``: the type mix is remapped through a seeded
  permutation and the arrival cadence rescaled — the drift scenario the
  online-learning predictors must detect, DESIGN.md §16).

Plans are immutable, picklable, JSON round-trippable, and — because
every stochastic choice derives from ``(seed, name)`` via
:func:`repro.util.rng.derive_seed` — two replays of the same plan on the
same trace produce bit-identical results.  :meth:`FaultPlan.generate`
draws a plan from outage / fault *rates*, which is what the sensitivity
experiment (:mod:`repro.experiments.fault_sweep`) sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.model.request import Request
from repro.util.rng import derive_seed
from repro.workload.trace import Trace

__all__ = [
    "FaultPlan",
    "PredictorFault",
    "ResourceOutage",
    "SolverFault",
    "TraceFault",
]

_PREDICTOR_KINDS = ("exception", "timeout", "garbage")
_SOLVER_KINDS = ("timeout", "exception")
_TRACE_KINDS = ("burst", "jitter", "duplicate", "regime-shift")


def _check_window(owner: str, start: float, end: float) -> None:
    if not math.isfinite(start) or start < 0:
        raise ValueError(f"{owner}: start must be finite and >= 0, got {start}")
    if end <= start:
        raise ValueError(f"{owner}: end ({end}) must be > start ({start})")


@dataclass(frozen=True)
class ResourceOutage:
    """One resource unavailable during ``[start, end)``."""

    resource: int
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.resource < 0:
            raise ValueError(f"resource must be >= 0, got {self.resource}")
        _check_window("outage", self.start, self.end)

    @property
    def permanent(self) -> bool:
        return math.isinf(self.end)

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class PredictorFault:
    """The predictor misbehaves during ``[start, end)``."""

    kind: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.kind not in _PREDICTOR_KINDS:
            raise ValueError(
                f"unknown predictor fault kind {self.kind!r}; expected one "
                f"of {_PREDICTOR_KINDS}"
            )
        _check_window("predictor fault", self.start, self.end)

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class SolverFault:
    """The primary solver misbehaves during ``[start, end)``."""

    kind: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.kind not in _SOLVER_KINDS:
            raise ValueError(
                f"unknown solver fault kind {self.kind!r}; expected one of "
                f"{_SOLVER_KINDS}"
            )
        _check_window("solver fault", self.start, self.end)

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class TraceFault:
    """A perturbation of the request stream inside ``[start, end)``.

    ``factor`` means: for ``"burst"`` the inter-window compression ratio
    in ``(0, 1]`` (0.2 squeezes the window's arrivals into a fifth of
    the span — a thundering herd); for ``"jitter"`` the absolute noise
    amplitude added to each arrival; for ``"duplicate"`` the
    per-request probability of an immediate duplicate re-submission;
    for ``"regime-shift"`` the cadence rescale ratio (> 0: 0.5 doubles
    the request rate inside the window, 2.0 halves it) applied together
    with a seeded permutation of the task-type ids — after the shift
    boundary a learned model's type table and gap estimate are both
    stale.
    """

    kind: str
    start: float
    end: float
    factor: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _TRACE_KINDS:
            raise ValueError(
                f"unknown trace fault kind {self.kind!r}; expected one of "
                f"{_TRACE_KINDS}"
            )
        _check_window("trace fault", self.start, self.end)
        if self.kind == "burst" and not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"burst factor must be in (0, 1], got {self.factor}"
            )
        if self.kind == "jitter" and self.factor < 0:
            raise ValueError(f"jitter amplitude must be >= 0, got {self.factor}")
        if self.kind == "duplicate" and not 0.0 <= self.factor <= 1.0:
            raise ValueError(
                f"duplicate probability must be in [0, 1], got {self.factor}"
            )
        if self.kind == "regime-shift" and not (
            math.isfinite(self.factor) and self.factor > 0
        ):
            raise ValueError(
                f"regime-shift factor must be finite and > 0, got "
                f"{self.factor}"
            )

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


def _check_disjoint(name: str, windows: Iterable[tuple[float, float]]) -> None:
    ordered = sorted(windows)
    for (s1, e1), (s2, _) in zip(ordered, ordered[1:], strict=False):
        if s2 < e1:
            raise ValueError(
                f"{name} windows overlap: [{s1:g}, {e1:g}) and [{s2:g}, ...)"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of injected faults.

    Attributes
    ----------
    seed:
        Master seed of every stochastic choice the plan induces at run
        time (garbage forecasts, trace perturbation draws).
    outages, predictor_faults, solver_faults, trace_faults:
        The fault windows (see the respective classes).  Windows of one
        category must not overlap (per resource, for outages), so the
        injected behaviour is unambiguous.
    solver_fallback:
        Registry name of the strategy the watchdog degrades to when the
        primary solver faults.
    """

    seed: int = 0
    outages: tuple[ResourceOutage, ...] = ()
    predictor_faults: tuple[PredictorFault, ...] = ()
    solver_faults: tuple[SolverFault, ...] = ()
    trace_faults: tuple[TraceFault, ...] = ()
    solver_fallback: str = "heuristic"

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        # Tuples may arrive as lists (e.g. from from_dict callers).
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(
            self, "predictor_faults", tuple(self.predictor_faults)
        )
        object.__setattr__(self, "solver_faults", tuple(self.solver_faults))
        object.__setattr__(self, "trace_faults", tuple(self.trace_faults))
        per_resource: dict[int, list[tuple[float, float]]] = {}
        for outage in self.outages:
            per_resource.setdefault(outage.resource, []).append(
                (outage.start, outage.end)
            )
        for resource, windows in per_resource.items():
            _check_disjoint(f"resource {resource} outage", windows)
        _check_disjoint(
            "predictor fault",
            [(f.start, f.end) for f in self.predictor_faults],
        )
        _check_disjoint(
            "solver fault", [(f.start, f.end) for f in self.solver_faults]
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return not (
            self.outages
            or self.predictor_faults
            or self.solver_faults
            or self.trace_faults
        )

    def outage_events(self) -> list[tuple[float, str, int]]:
        """The outage boundaries as ``(time, "down"|"up", resource)``.

        Sorted by time; at equal times, ``"up"`` precedes ``"down"`` so a
        back-to-back flap never leaves two concurrent down states.
        Permanent outages contribute no ``"up"`` event.
        """
        events: list[tuple[float, int, int]] = []
        for outage in self.outages:
            events.append((outage.start, 1, outage.resource))
            if not outage.permanent:
                events.append((outage.end, 0, outage.resource))
        events.sort()
        return [
            (time, "down" if flag else "up", resource)
            for time, flag, resource in events
        ]

    def predictor_fault_at(self, time: float) -> str | None:
        """The predictor fault kind active at ``time``, if any."""
        for fault in self.predictor_faults:
            if fault.covers(time):
                return fault.kind
        return None

    def solver_fault_at(self, time: float) -> str | None:
        """The solver fault kind active at ``time``, if any."""
        for fault in self.solver_faults:
            if fault.covers(time):
                return fault.kind
        return None

    def down_at(self, time: float) -> frozenset[int]:
        """Resources down at ``time`` (for the fault-aware verifier)."""
        return frozenset(
            outage.resource for outage in self.outages if outage.covers(time)
        )

    # ------------------------------------------------------------------
    # Trace perturbation
    # ------------------------------------------------------------------

    def perturb_trace(self, trace: Trace) -> Trace:
        """Apply the plan's trace faults, returning a new trace.

        Bursts compress arrivals toward the window start, jitter adds
        seeded noise, duplicates inject re-submissions; the result is
        re-sorted and re-indexed, and the whole transformation is a pure
        function of ``(plan, trace)``.  With no trace faults the input
        trace is returned unchanged (``is``-identical), which keeps the
        zero-fault path digest-identical to a run without a plan.
        """
        if not self.trace_faults:
            return trace
        rows: list[tuple[float, int, float]] = [
            (r.arrival, r.type_id, r.deadline) for r in trace
        ]
        for position, fault in enumerate(self.trace_faults):
            rng = np.random.default_rng(
                derive_seed(self.seed, f"trace-fault:{position}:{fault.kind}")
            )
            if fault.kind == "burst":
                rows = [
                    (
                        fault.start + (arrival - fault.start) * fault.factor
                        if fault.covers(arrival)
                        else arrival,
                        type_id,
                        deadline,
                    )
                    for arrival, type_id, deadline in rows
                ]
            elif fault.kind == "jitter":
                rows = [
                    (
                        max(
                            0.0,
                            arrival
                            + fault.factor
                            * float(rng.uniform(-1.0, 1.0)),
                        )
                        if fault.covers(arrival)
                        else arrival,
                        type_id,
                        deadline,
                    )
                    for arrival, type_id, deadline in rows
                ]
            elif fault.kind == "regime-shift":
                # One seeded permutation of the *full* type universe, so
                # the remap is stable however many types the window sees.
                type_ids = sorted({type_id for _, type_id, _ in rows})
                shuffled = [
                    type_ids[int(i)] for i in rng.permutation(len(type_ids))
                ]
                remap = dict(zip(type_ids, shuffled, strict=True))
                rows = [
                    (
                        fault.start + (arrival - fault.start) * fault.factor,
                        remap[type_id],
                        deadline,
                    )
                    if fault.covers(arrival)
                    else (arrival, type_id, deadline)
                    for arrival, type_id, deadline in rows
                ]
            else:  # duplicate
                extra: list[tuple[float, int, float]] = []
                for arrival, type_id, deadline in rows:
                    if fault.covers(arrival) and float(rng.random()) < fault.factor:
                        extra.append((arrival + 1e-9, type_id, deadline))
                rows.extend(extra)
        rows.sort(key=lambda row: (row[0], row[1], row[2]))
        requests = [
            Request(
                index=position,
                arrival=arrival,
                type_id=type_id,
                deadline=deadline,
            )
            for position, (arrival, type_id, deadline) in enumerate(rows)
        ]
        return Trace(
            trace.tasks, requests, group=trace.group, seed=trace.seed
        )

    # ------------------------------------------------------------------
    # Generation from rates
    # ------------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        horizon: float,
        n_resources: int,
        outage_rate: float = 0.0,
        outage_duration: float = 50.0,
        predictor_fault_rate: float = 0.0,
        predictor_fault_duration: float = 50.0,
        solver_fault_rate: float = 0.0,
        solver_fault_duration: float = 50.0,
        spare_resource: int | None = 0,
        solver_fallback: str = "heuristic",
    ) -> "FaultPlan":
        """Draw a plan from fault *rates*, deterministically from ``seed``.

        ``outage_rate`` is the expected fraction of each resource's time
        spent down; ``predictor_fault_rate`` / ``solver_fault_rate`` the
        expected fraction of the horizon covered by the respective fault
        windows.  Expected outage count per resource is
        ``rate * horizon / duration`` (Poisson), each outage lasting an
        exponential of the given mean, truncated to the horizon.
        ``spare_resource`` (default: resource 0) is never taken down, so
        the platform always retains one live resource.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if n_resources < 1:
            raise ValueError(f"n_resources must be >= 1, got {n_resources}")
        for label, rate in (
            ("outage_rate", outage_rate),
            ("predictor_fault_rate", predictor_fault_rate),
            ("solver_fault_rate", solver_fault_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")

        outages: list[ResourceOutage] = []
        if outage_rate > 0:
            for resource in range(n_resources):
                if resource == spare_resource:
                    continue
                rng = np.random.default_rng(
                    derive_seed(seed, f"gen:outage:{resource}")
                )
                mean_count = outage_rate * horizon / outage_duration
                count = int(rng.poisson(mean_count))
                windows: list[tuple[float, float]] = []
                for _ in range(count):
                    start = float(rng.uniform(0.0, horizon))
                    length = float(rng.exponential(outage_duration))
                    end = min(start + max(length, 1e-6), horizon)
                    windows.append((start, end))
                for start, end in _merge_windows(windows):
                    outages.append(ResourceOutage(resource, start, end))

        predictor_faults = [
            PredictorFault(kind, start, end)
            for kind, start, end in _draw_fault_windows(
                seed,
                "gen:predictor",
                horizon,
                predictor_fault_rate,
                predictor_fault_duration,
                _PREDICTOR_KINDS,
            )
        ]
        solver_faults = [
            SolverFault(kind, start, end)
            for kind, start, end in _draw_fault_windows(
                seed,
                "gen:solver",
                horizon,
                solver_fault_rate,
                solver_fault_duration,
                _SOLVER_KINDS,
            )
        ]
        return cls(
            seed=seed,
            outages=tuple(outages),
            predictor_faults=tuple(predictor_faults),
            solver_faults=tuple(solver_faults),
            solver_fallback=solver_fallback,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe representation (``inf`` encoded as a string)."""
        def enc(value: float) -> float | str:
            return "inf" if math.isinf(value) else value

        return {
            "seed": self.seed,
            "solver_fallback": self.solver_fallback,
            "outages": [
                {"resource": o.resource, "start": o.start, "end": enc(o.end)}
                for o in self.outages
            ],
            "predictor_faults": [
                {"kind": f.kind, "start": f.start, "end": f.end}
                for f in self.predictor_faults
            ],
            "solver_faults": [
                {"kind": f.kind, "start": f.start, "end": f.end}
                for f in self.solver_faults
            ],
            "trace_faults": [
                {
                    "kind": f.kind,
                    "start": f.start,
                    "end": f.end,
                    "factor": f.factor,
                }
                for f in self.trace_faults
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        def dec(value: float | str) -> float:
            return math.inf if value == "inf" else float(value)

        return cls(
            seed=int(data.get("seed", 0)),
            solver_fallback=str(data.get("solver_fallback", "heuristic")),
            outages=tuple(
                ResourceOutage(
                    resource=int(o["resource"]),
                    start=float(o["start"]),
                    end=dec(o["end"]),
                )
                for o in data.get("outages", ())
            ),
            predictor_faults=tuple(
                PredictorFault(
                    kind=str(f["kind"]),
                    start=float(f["start"]),
                    end=float(f["end"]),
                )
                for f in data.get("predictor_faults", ())
            ),
            solver_faults=tuple(
                SolverFault(
                    kind=str(f["kind"]),
                    start=float(f["start"]),
                    end=float(f["end"]),
                )
                for f in data.get("solver_faults", ())
            ),
            trace_faults=tuple(
                TraceFault(
                    kind=str(f["kind"]),
                    start=float(f["start"]),
                    end=float(f["end"]),
                    factor=float(f.get("factor", 0.5)),
                )
                for f in data.get("trace_faults", ())
            ),
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of the plan under a different seed."""
        return replace(self, seed=seed)


def _merge_windows(
    windows: Sequence[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Merge overlapping ``(start, end)`` windows into disjoint ones."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _draw_fault_windows(
    seed: int,
    stream: str,
    horizon: float,
    rate: float,
    duration: float,
    kinds: Sequence[str],
) -> list[tuple[str, float, float]]:
    """Disjoint seeded fault windows covering ~``rate`` of the horizon."""
    if rate <= 0:
        return []
    rng = np.random.default_rng(derive_seed(seed, stream))
    count = int(rng.poisson(rate * horizon / duration))
    windows: list[tuple[float, float]] = []
    for _ in range(count):
        start = float(rng.uniform(0.0, horizon))
        length = float(rng.exponential(duration))
        windows.append((start, min(start + max(length, 1e-6), horizon)))
    return [
        (kinds[int(rng.integers(len(kinds)))], start, end)
        for start, end in _merge_windows(windows)
    ]
