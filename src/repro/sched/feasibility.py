"""Resource-level feasibility checks.

Thin wrappers over :func:`repro.sched.timeline.build_timeline` used by the
resource managers: the heuristic's ``IsSchedulable`` and the validation of
MILP/branch-and-bound mappings both reduce to "does the EDF timeline of
this resource meet every deadline?".
"""

from __future__ import annotations

from repro.sched.timeline import (
    FutureJob,
    ReadyJob,
    ResourceTimeline,
    build_timeline,
)

__all__ = ["check_resource_feasible", "latest_finish"]


def check_resource_feasible(
    ready_jobs: list[ReadyJob],
    future_jobs: list[FutureJob] | tuple[FutureJob, ...] = (),
    *,
    start_time: float,
    preemptable: bool,
) -> bool:
    """True when every job on the resource meets its deadline.

    This is the paper's ``IsSchedulable`` for one resource: EDF order,
    non-preemptive on GPU-like resources, with the predicted task's
    arrival (and its preemption, where allowed) taken into account.
    """
    timeline = build_timeline(
        ready_jobs,
        future_jobs,
        start_time=start_time,
        preemptable=preemptable,
    )
    return timeline.feasible


def latest_finish(
    ready_jobs: list[ReadyJob],
    future_jobs: list[FutureJob] | tuple[FutureJob, ...] = (),
    *,
    start_time: float,
    preemptable: bool,
) -> ResourceTimeline:
    """Build and return the full timeline (for callers needing times)."""
    return build_timeline(
        ready_jobs,
        future_jobs,
        start_time=start_time,
        preemptable=preemptable,
    )
