"""Single-resource EDF timeline construction.

:func:`build_timeline` simulates one resource from an activation time
``t`` forward, given

* a set of *ready* jobs (all admitted tasks are ready at ``t``) and
* a set of *future* jobs (the predicted task(s), arriving later),

under work-conserving EDF.  On a preemptable resource a future arrival
with an earlier deadline preempts the running job.  On a non-preemptable
resource nothing is ever preempted and the currently executing job (if
any) runs first: a future arrival joins the EDF queue and is considered
only at job-completion boundaries (non-preemptive EDF) — it may run
before queued later-deadline jobs but never interrupts the one executing.
This reproduces the schedule semantics behind the paper's constraints
(3)-(14) and its GPU rules ("preemption caused by the predicted task is
considered except for nonpreemptable resources"):

* predicted task with the latest deadline -> starts at ``max(s_p, q_i)``
  (eqs. (4)/(5));
* predicted task arriving before the earlier-deadline jobs finish ->
  slots in after them with no preemption (eqs. (6)/(7));
* predicted task arriving later, on a preemptable resource -> preempts
  the running later-deadline job, splitting it into two chunks
  (eqs. (8)-(14)); on a non-preemptable resource -> waits for the
  completion boundary, then outranks queued later-deadline jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EPS",
    "ReadyJob",
    "FutureJob",
    "Chunk",
    "ResourceTimeline",
    "build_timeline",
]

EPS: float = 1e-9
"""Absolute tolerance for deadline/time comparisons."""


@dataclass(frozen=True)
class ReadyJob:
    """A job that is ready to execute at the activation time.

    Attributes
    ----------
    job_id:
        Identifier, unique within one :func:`build_timeline` call.
    exec_time:
        Time the job still needs on *this* resource (``cpm[j,i]``:
        remaining WCET plus any migration overhead).
    deadline:
        Absolute deadline.
    must_run_first:
        True when the job is currently executing on this resource and the
        resource is non-preemptable: it must complete before anything else
        starts.  At most one ready job may set this.
    """

    job_id: int
    exec_time: float
    deadline: float
    must_run_first: bool = False

    def __post_init__(self) -> None:
        if self.exec_time <= 0:
            raise ValueError(
                f"job {self.job_id}: exec_time must be > 0, got {self.exec_time}"
            )


@dataclass(frozen=True)
class FutureJob:
    """A job that arrives after the activation time (the predicted task)."""

    job_id: int
    arrival: float
    exec_time: float
    deadline: float

    def __post_init__(self) -> None:
        if self.exec_time <= 0:
            raise ValueError(
                f"job {self.job_id}: exec_time must be > 0, got {self.exec_time}"
            )


@dataclass(frozen=True)
class Chunk:
    """A contiguous execution interval of one job."""

    job_id: int
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ResourceTimeline:
    """Result of :func:`build_timeline`.

    Attributes
    ----------
    chunks:
        Execution intervals in time order; a preempted job contributes
        multiple chunks.
    finish_times:
        Completion time of every job.
    feasible:
        True when every job finishes by its deadline (within :data:`EPS`).
    misses:
        Ids of jobs that miss their deadline, in completion order.
    makespan:
        Completion time of the last job (the activation time if there is
        no work).
    """

    chunks: tuple[Chunk, ...]
    finish_times: dict[int, float]
    feasible: bool
    misses: tuple[int, ...]
    makespan: float

    def chunks_of(self, job_id: int) -> tuple[Chunk, ...]:
        """All execution intervals of one job."""
        return tuple(c for c in self.chunks if c.job_id == job_id)

    def start_time(self, job_id: int) -> float:
        """First time the job executes."""
        for chunk in self.chunks:
            if chunk.job_id == job_id:
                return chunk.start
        raise KeyError(f"job {job_id} never executes")


@dataclass
class _JobState:
    remaining: float
    deadline: float
    arrived: bool
    future: bool = False


def build_timeline(
    ready_jobs: list[ReadyJob] | tuple[ReadyJob, ...],
    future_jobs: list[FutureJob] | tuple[FutureJob, ...] = (),
    *,
    start_time: float = 0.0,
    preemptable: bool = True,
) -> ResourceTimeline:
    """Simulate one resource under work-conserving EDF.

    Parameters
    ----------
    ready_jobs:
        Jobs ready at ``start_time`` (the admitted tasks mapped here).
    future_jobs:
        Jobs arriving later (the predicted task).  Arrivals before
        ``start_time`` are treated as ready.
    start_time:
        The RM activation time ``t``.
    preemptable:
        Whether future arrivals may preempt the running job (CPU: yes,
        GPU: no).

    Ties in deadlines are broken by ``job_id`` so the schedule is fully
    deterministic.
    """
    forced_ids = [j.job_id for j in ready_jobs if j.must_run_first]
    if len(forced_ids) > 1:
        raise ValueError(
            f"at most one job may be must_run_first, got {forced_ids}"
        )
    forced_id = forced_ids[0] if forced_ids else None
    if forced_id is not None and preemptable:
        # On a preemptable resource the running job can be paused, so the
        # flag is meaningless; ignore it for robustness.
        forced_id = None

    states: dict[int, _JobState] = {}
    for job in ready_jobs:
        if job.job_id in states:
            raise ValueError(f"duplicate job_id {job.job_id}")
        states[job.job_id] = _JobState(job.exec_time, job.deadline, arrived=True)
    pending = sorted(future_jobs, key=lambda j: (j.arrival, j.job_id))
    for job in pending:
        if job.job_id in states:
            raise ValueError(f"duplicate job_id {job.job_id}")
        states[job.job_id] = _JobState(
            job.exec_time,
            job.deadline,
            arrived=job.arrival <= start_time + EPS,
            future=True,
        )
    pending = [j for j in pending if not states[j.job_id].arrived]

    chunks: list[Chunk] = []
    finish_times: dict[int, float] = {}
    time = start_time

    def mark_arrivals(now: float) -> None:
        nonlocal pending
        while pending and pending[0].arrival <= now + EPS:
            states[pending[0].job_id].arrived = True
            pending = pending[1:]

    def pick() -> int | None:
        candidates = [
            (state.deadline, job_id)
            for job_id, state in states.items()
            if state.arrived and state.remaining > EPS
        ]
        if not candidates:
            return None
        if forced_id is not None and states[forced_id].remaining > EPS:
            return forced_id
        return min(candidates)[1]

    def emit(job_id: int, start: float, end: float) -> None:
        if end <= start + EPS:
            return
        if chunks and chunks[-1].job_id == job_id and chunks[-1].end >= start - EPS:
            chunks[-1] = Chunk(job_id, chunks[-1].start, end)
        else:
            chunks.append(Chunk(job_id, start, end))

    mark_arrivals(time)
    while True:
        current = pick()
        if current is None:
            if not pending:
                break
            time = max(time, pending[0].arrival)
            mark_arrivals(time)
            continue
        state = states[current]
        end = time + state.remaining
        next_arrival = pending[0].arrival if pending else None
        interrupt = (
            next_arrival is not None
            and next_arrival < end - EPS
            and preemptable
        )
        if interrupt:
            # Run until the arrival, then re-evaluate EDF; the arrival
            # preempts only if its deadline is earlier (pick() decides).
            run_until = max(next_arrival, time)
            emit(current, time, run_until)
            state.remaining -= run_until - time
            time = run_until
            mark_arrivals(time)
            continue
        # Non-preemptable or no interfering arrival: run to completion.
        emit(current, time, end)
        state.remaining = 0.0
        finish_times[current] = end
        time = end
        mark_arrivals(time)

    misses = tuple(
        job_id
        for job_id, finish in sorted(finish_times.items(), key=lambda kv: kv[1])
        if finish > states[job_id].deadline + EPS
    )
    makespan = max(finish_times.values(), default=start_time)
    return ResourceTimeline(
        chunks=tuple(chunks),
        finish_times=finish_times,
        feasible=not misses,
        misses=misses,
        makespan=makespan,
    )
