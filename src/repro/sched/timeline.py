"""Single-resource EDF timeline construction.

:func:`build_timeline` simulates one resource from an activation time
``t`` forward, given

* a set of *ready* jobs (all admitted tasks are ready at ``t``) and
* a set of *future* jobs (the predicted task(s), arriving later),

under work-conserving EDF.  On a preemptable resource a future arrival
with an earlier deadline preempts the running job.  On a non-preemptable
resource nothing is ever preempted and the currently executing job (if
any) runs first: a future arrival joins the EDF queue and is considered
only at job-completion boundaries (non-preemptive EDF) — it may run
before queued later-deadline jobs but never interrupts the one executing.
This reproduces the schedule semantics behind the paper's constraints
(3)-(14) and its GPU rules ("preemption caused by the predicted task is
considered except for nonpreemptable resources"):

* predicted task with the latest deadline -> starts at ``max(s_p, q_i)``
  (eqs. (4)/(5));
* predicted task arriving before the earlier-deadline jobs finish ->
  slots in after them with no preemption (eqs. (6)/(7));
* predicted task arriving later, on a preemptable resource -> preempts
  the running later-deadline job, splitting it into two chunks
  (eqs. (8)-(14)); on a non-preemptable resource -> waits for the
  completion boundary, then outranks queued later-deadline jobs.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass

__all__ = [
    "EPS",
    "ReadyJob",
    "FutureJob",
    "Chunk",
    "ResourceTimeline",
    "Timeline",
    "build_timeline",
]

EPS: float = 1e-9
"""Absolute tolerance for deadline/time comparisons."""


@dataclass(frozen=True)
class ReadyJob:
    """A job that is ready to execute at the activation time.

    Attributes
    ----------
    job_id:
        Identifier, unique within one :func:`build_timeline` call.
    exec_time:
        Time the job still needs on *this* resource (``cpm[j,i]``:
        remaining WCET plus any migration overhead).
    deadline:
        Absolute deadline.
    must_run_first:
        True when the job is currently executing on this resource and the
        resource is non-preemptable: it must complete before anything else
        starts.  At most one ready job may set this.
    """

    job_id: int
    exec_time: float
    deadline: float
    must_run_first: bool = False

    def __post_init__(self) -> None:
        if self.exec_time <= 0:
            raise ValueError(
                f"job {self.job_id}: exec_time must be > 0, got {self.exec_time}"
            )


@dataclass(frozen=True)
class FutureJob:
    """A job that arrives after the activation time (the predicted task)."""

    job_id: int
    arrival: float
    exec_time: float
    deadline: float

    def __post_init__(self) -> None:
        if self.exec_time <= 0:
            raise ValueError(
                f"job {self.job_id}: exec_time must be > 0, got {self.exec_time}"
            )


@dataclass(frozen=True)
class Chunk:
    """A contiguous execution interval of one job."""

    job_id: int
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ResourceTimeline:
    """Result of :func:`build_timeline`.

    Attributes
    ----------
    chunks:
        Execution intervals in time order; a preempted job contributes
        multiple chunks.
    finish_times:
        Completion time of every job.
    feasible:
        True when every job finishes by its deadline (within :data:`EPS`).
    misses:
        Ids of jobs that miss their deadline, in completion order.
    makespan:
        Completion time of the last job (the activation time if there is
        no work).
    """

    chunks: tuple[Chunk, ...]
    finish_times: dict[int, float]
    feasible: bool
    misses: tuple[int, ...]
    makespan: float

    def chunks_of(self, job_id: int) -> tuple[Chunk, ...]:
        """All execution intervals of one job."""
        return tuple(c for c in self.chunks if c.job_id == job_id)

    def start_time(self, job_id: int) -> float:
        """First time the job executes."""
        for chunk in self.chunks:
            if chunk.job_id == job_id:
                return chunk.start
        raise KeyError(f"job {job_id} never executes")


@dataclass
class _JobState:
    remaining: float
    deadline: float
    arrived: bool
    future: bool = False


def build_timeline(
    ready_jobs: list[ReadyJob] | tuple[ReadyJob, ...],
    future_jobs: list[FutureJob] | tuple[FutureJob, ...] = (),
    *,
    start_time: float = 0.0,
    preemptable: bool = True,
) -> ResourceTimeline:
    """Simulate one resource under work-conserving EDF.

    Parameters
    ----------
    ready_jobs:
        Jobs ready at ``start_time`` (the admitted tasks mapped here).
    future_jobs:
        Jobs arriving later (the predicted task).  Arrivals before
        ``start_time`` are treated as ready.
    start_time:
        The RM activation time ``t``.
    preemptable:
        Whether future arrivals may preempt the running job (CPU: yes,
        GPU: no).

    Ties in deadlines are broken by ``job_id`` so the schedule is fully
    deterministic.
    """
    forced_ids = [j.job_id for j in ready_jobs if j.must_run_first]
    if len(forced_ids) > 1:
        raise ValueError(
            f"at most one job may be must_run_first, got {forced_ids}"
        )
    forced_id = forced_ids[0] if forced_ids else None
    if forced_id is not None and preemptable:
        # On a preemptable resource the running job can be paused, so the
        # flag is meaningless; ignore it for robustness.
        forced_id = None

    states: dict[int, _JobState] = {}
    for job in ready_jobs:
        if job.job_id in states:
            raise ValueError(f"duplicate job_id {job.job_id}")
        states[job.job_id] = _JobState(job.exec_time, job.deadline, arrived=True)
    pending = sorted(future_jobs, key=lambda j: (j.arrival, j.job_id))
    for job in pending:
        if job.job_id in states:
            raise ValueError(f"duplicate job_id {job.job_id}")
        states[job.job_id] = _JobState(
            job.exec_time,
            job.deadline,
            arrived=job.arrival <= start_time + EPS,
            future=True,
        )
    pending = [j for j in pending if not states[j.job_id].arrived]

    chunks: list[Chunk] = []
    finish_times: dict[int, float] = {}
    time = start_time
    # The EDF queue: (deadline, job_id) of every arrived job with work
    # left, kept sorted incrementally instead of rescanned per pick —
    # remaining work only ever hits zero at completions, and jobs only
    # join at arrivals, so the queue is cheap to maintain exactly.
    active = sorted(
        (state.deadline, job_id)
        for job_id, state in states.items()
        if state.arrived and state.remaining > EPS
    )
    n_pending = len(pending)
    next_pending = 0  # cursor into `pending` (no per-arrival list copies)

    def mark_arrivals(now: float) -> None:
        nonlocal next_pending
        while (
            next_pending < n_pending
            and pending[next_pending].arrival <= now + EPS
        ):
            job_id = pending[next_pending].job_id
            state = states[job_id]
            state.arrived = True
            if state.remaining > EPS:
                insort(active, (state.deadline, job_id))
            next_pending += 1

    def emit(job_id: int, start: float, end: float) -> None:
        if end <= start + EPS:
            return
        if chunks and chunks[-1].job_id == job_id and chunks[-1].end >= start - EPS:
            chunks[-1] = Chunk(job_id, chunks[-1].start, end)
        else:
            chunks.append(Chunk(job_id, start, end))

    mark_arrivals(time)
    while True:
        if not active:
            if next_pending >= n_pending:
                break
            time = max(time, pending[next_pending].arrival)
            mark_arrivals(time)
            continue
        # EDF pick; the forced job (non-preemptable resource) outranks it
        # while it still has work.
        if forced_id is not None and states[forced_id].remaining > EPS:
            current = forced_id
        else:
            current = active[0][1]
        state = states[current]
        end = time + state.remaining
        next_arrival = (
            pending[next_pending].arrival
            if next_pending < n_pending
            else None
        )
        interrupt = (
            next_arrival is not None
            and next_arrival < end - EPS
            and preemptable
        )
        if interrupt:
            # Run until the arrival, then re-evaluate EDF; the arrival
            # preempts only if its deadline is earlier (the queue head
            # decides).  The preempted job keeps remaining > EPS (the
            # arrival is strictly earlier than its completion), so it
            # stays in the queue.
            run_until = max(next_arrival, time)
            emit(current, time, run_until)
            state.remaining -= run_until - time
            time = run_until
            mark_arrivals(time)
            continue
        # Non-preemptable or no interfering arrival: run to completion.
        emit(current, time, end)
        state.remaining = 0.0
        finish_times[current] = end
        time = end
        del active[bisect_left(active, (state.deadline, current))]
        mark_arrivals(time)

    misses = tuple(
        job_id
        for job_id, finish in sorted(finish_times.items(), key=lambda kv: kv[1])
        if finish > states[job_id].deadline + EPS
    )
    makespan = max(finish_times.values(), default=start_time)
    return ResourceTimeline(
        chunks=tuple(chunks),
        finish_times=finish_times,
        feasible=not misses,
        misses=misses,
        makespan=makespan,
    )


class Timeline:
    """Incremental single-resource EDF timeline with a slack/feasibility
    cache.

    Maintains the *same* schedule semantics as :func:`build_timeline`
    under ``insert``/``remove``/``probe`` mutations, but answers
    feasibility probes from cached prefix finish times instead of
    replaying the whole resource per query.  This is the structure behind
    the heuristic's ``IsSchedulable``: an admission activation places
    jobs one by one, probing many (job, resource) pairs, and a full
    replay per probe is the dominant cost of the naive implementation.

    Cache design (see DESIGN.md §8 for the invalidation rules):

    * Ready jobs with ``exec_time > EPS`` form the *chain*: parallel
      arrays sorted by ``(deadline, job_id)`` holding execution times and
      cached sequential finish times (identical float-addition order to
      :func:`build_timeline`, so results are bit-identical).
    * A ``must_run_first`` job on a non-preemptable resource sits in
      front of the chain; on a preemptable resource the flag is recorded
      (for validation parity) but ignored, as in :func:`build_timeline`.
    * Jobs with ``exec_time <= EPS`` never get scheduled by the event
      loop (it only picks jobs with ``remaining > EPS``); they are kept
      for bookkeeping but excluded from the chain, mirroring that
      behaviour.
    * Future jobs that have effectively arrived
      (``arrival <= start_time + EPS``) behave exactly like ready jobs
      and join the chain.  *Pending* future arrivals make slack
      non-composable (a preemption can split a chunk; a non-preemptive
      completion boundary can reorder the queue), so any query on a
      timeline holding pending futures falls back to an authoritative
      :func:`build_timeline` replay, cached until the next mutation.

    Mutations are *suffix-dirty*: a chain edit at position ``p`` records
    ``p`` (keeping the minimum across stacked edits) and the next query
    re-accumulates only ``chain[p:]`` from the cached prefix finish —
    the float-addition order is identical to a full re-accumulation, so
    cached results stay bit-identical to :func:`build_timeline`.  Per-
    entry miss flags (invariant: ``_miss_count == sum(_missed)`` after
    every mutation and refresh) keep the feasibility count exact without
    rescanning the clean prefix; future/tiny bookkeeping edits never
    touch the chain cache at all.  A non-mutating ``probe`` likewise
    re-accumulates only the suffix at the hypothetical insertion point.
    """

    __slots__ = (
        "_start",
        "_preemptable",
        "_jobs",
        "_keys",
        "_execs",
        "_finish",
        "_missed",
        "_futures",
        "_tiny",
        "_forced_id",
        "_forced_entry",
        "_forced_finish",
        "_forced_missed",
        "_miss_count",
        "_dirty_from",
        "_ref",
        "_lists",
    )

    def __init__(
        self, *, start_time: float = 0.0, preemptable: bool = True
    ) -> None:
        self._start = start_time
        self._preemptable = preemptable
        # job_id -> (exec_time, deadline, arrival | None, must_run_first)
        self._jobs: dict[int, tuple[float, float, float | None, bool]] = {}
        self._keys: list[tuple[float, int]] = []  # (deadline, job_id)
        self._execs: list[float] = []
        self._finish: list[float] = []
        self._missed: list[bool] = []
        self._futures: dict[int, tuple[float, float, float]] = {}
        self._tiny: set[int] = set()
        self._forced_id: int | None = None
        self._forced_entry: tuple[int, float, float] | None = None
        self._forced_finish: float | None = None
        self._forced_missed = False
        self._miss_count = 0
        # First chain index whose cached finish/missed entries are stale
        # (None = clean).  0 additionally re-derives the forced job's
        # finish, the base of the chain.
        self._dirty_from: int | None = 0
        self._ref: ResourceTimeline | None = None
        self._lists: tuple[list[ReadyJob], list[FutureJob]] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def start_time(self) -> float:
        return self._start

    @property
    def preemptable(self) -> bool:
        return self._preemptable

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def job_ids(self) -> tuple[int, ...]:
        """All held job ids, in insertion-agnostic sorted order."""
        return tuple(sorted(self._jobs))

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(
        self,
        job_id: int,
        exec_time: float,
        deadline: float,
        *,
        arrival: float | None = None,
        must_run_first: bool = False,
    ) -> None:
        """Add one job; ``arrival`` marks a future job (the predicted
        task), ``None`` a ready one.

        Raises ``ValueError`` on the same inputs :func:`build_timeline`
        rejects: non-positive execution time, duplicate ids, a second
        ``must_run_first`` job, or a forced *future* job.
        """
        if exec_time <= 0:
            raise ValueError(
                f"job {job_id}: exec_time must be > 0, got {exec_time}"
            )
        if job_id in self._jobs:
            raise ValueError(f"duplicate job_id {job_id}")
        if must_run_first:
            if arrival is not None:
                raise ValueError(
                    f"job {job_id}: a future job cannot be must_run_first"
                )
            if self._forced_id is not None:
                raise ValueError(
                    "at most one job may be must_run_first, got "
                    f"{[self._forced_id, job_id]}"
                )
            self._forced_id = job_id
        self._jobs[job_id] = (exec_time, deadline, arrival, must_run_first)
        if arrival is not None and arrival > self._start + EPS:
            self._futures[job_id] = (arrival, exec_time, deadline)
            self._invalidate_refs()
        elif exec_time <= EPS:
            self._tiny.add(job_id)
            self._invalidate_refs()
        elif must_run_first and not self._preemptable:
            self._forced_entry = (job_id, exec_time, deadline)
            self._mark_chain_dirty(0)
        else:
            key = (deadline, job_id)
            pos = bisect_left(self._keys, key)
            self._keys.insert(pos, key)
            self._execs.insert(pos, exec_time)
            # Placeholders keep the parallel arrays aligned; False is not
            # counted, preserving _miss_count == sum(_missed) until the
            # suffix refresh computes the real values.
            self._finish.insert(pos, 0.0)
            self._missed.insert(pos, False)
            self._mark_chain_dirty(pos)

    def remove(self, job_id: int) -> None:
        """Remove one job (``KeyError`` when absent)."""
        exec_time, deadline, arrival, must_run_first = self._jobs.pop(job_id)
        if must_run_first:
            self._forced_id = None
        if job_id in self._futures:
            del self._futures[job_id]
            self._invalidate_refs()
        elif job_id in self._tiny:
            self._tiny.discard(job_id)
            self._invalidate_refs()
        elif (
            self._forced_entry is not None
            and self._forced_entry[0] == job_id
        ):
            self._forced_entry = None
            self._mark_chain_dirty(0)
        else:
            pos = bisect_left(self._keys, (deadline, job_id))
            del self._keys[pos]
            del self._execs[pos]
            if self._missed[pos]:
                self._miss_count -= 1
            del self._finish[pos]
            del self._missed[pos]
            self._mark_chain_dirty(pos)

    def clear(self) -> None:
        """Drop every job."""
        self._jobs.clear()
        self._keys.clear()
        self._execs.clear()
        self._finish.clear()
        self._missed.clear()
        self._futures.clear()
        self._tiny.clear()
        self._forced_id = None
        self._forced_entry = None
        self._miss_count = 0
        self._mark_chain_dirty(0)

    def _mark_chain_dirty(self, pos: int) -> None:
        """Chain edited at ``pos``: everything from there is stale."""
        if self._dirty_from is None or pos < self._dirty_from:
            self._dirty_from = pos
        self._ref = None
        self._lists = None

    def _invalidate_refs(self) -> None:
        """Non-chain mutation (future/tiny bookkeeping): the ready-chain
        cache stays valid, only the reference replay is stale."""
        self._ref = None
        self._lists = None

    # ------------------------------------------------------------------
    # Cache refresh (ready-chain fast path)
    # ------------------------------------------------------------------

    def _base_finish(self) -> float:
        """Completion time of the forced job (or the start time)."""
        if self._forced_entry is None:
            return self._start
        return self._start + self._forced_entry[1]

    def _refresh(self) -> None:
        """Re-accumulate the stale suffix of the chain (O(suffix)).

        Starts from the cached prefix finish (the same partial sum a
        full left-to-right pass would have reached), so the sequential
        float-addition order — and with it bit-identity to
        :func:`build_timeline` — is preserved.
        """
        first = self._dirty_from
        if first is None:
            return
        if first == 0:
            if self._forced_entry is None:
                self._forced_finish = None
                self._forced_missed = False
                time = self._start
            else:
                _job_id, exec_time, deadline = self._forced_entry
                time = self._start + exec_time
                self._forced_finish = time
                self._forced_missed = time > deadline + EPS
        else:
            time = self._finish[first - 1]
        keys = self._keys
        execs = self._execs
        finish = self._finish
        missed = self._missed
        misses = self._miss_count
        for index in range(first, len(keys)):
            time = time + execs[index]
            finish[index] = time
            miss = time > keys[index][0] + EPS
            if miss != missed[index]:
                misses += 1 if miss else -1
                missed[index] = miss
        self._miss_count = misses
        self._dirty_from = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def feasible(self) -> bool:
        """Whether every scheduled job meets its deadline (within EPS);
        agrees exactly with ``build_timeline(...).feasible`` on the same
        job set."""
        if self._futures:
            return self.as_reference().feasible
        self._refresh()
        return self._miss_count == 0 and not self._forced_missed

    def probe(
        self,
        job_id: int,
        exec_time: float,
        deadline: float,
        *,
        arrival: float | None = None,
        must_run_first: bool = False,
    ) -> bool:
        """Feasibility of the current job set *plus* the given job,
        without mutating the timeline.

        Bit-identical to inserting the job into a fresh
        :func:`build_timeline` replay; the fast path touches only the
        suffix of the cached chain at the hypothetical insertion point.
        """
        if exec_time <= 0:
            raise ValueError(
                f"job {job_id}: exec_time must be > 0, got {exec_time}"
            )
        if job_id in self._jobs:
            raise ValueError(f"duplicate job_id {job_id}")
        if must_run_first and arrival is not None:
            raise ValueError(
                f"job {job_id}: a future job cannot be must_run_first"
            )
        if must_run_first and self._forced_id is not None:
            raise ValueError(
                "at most one job may be must_run_first, got "
                f"{[self._forced_id, job_id]}"
            )
        if self._futures or (
            arrival is not None and arrival > self._start + EPS
        ):
            if not must_run_first:
                fast = self._probe_one_future_fast(
                    job_id, exec_time, deadline, arrival
                )
                if fast is not None:
                    return fast
            return self._probe_reference(
                job_id,
                exec_time,
                deadline,
                arrival=arrival,
                must_run_first=must_run_first,
            )
        self._refresh()
        if self._miss_count > 0 or self._forced_missed:
            # Ready-only EDF: adding work never repairs a miss (finish
            # times are monotone in the job set).
            return False
        if exec_time <= EPS:
            return True  # never scheduled; nothing shifts
        if must_run_first and not self._preemptable:
            # The probe job runs first and shifts the whole chain.
            time = self._start + exec_time
            if time > deadline + EPS:
                return False
            for key, chain_exec in zip(self._keys, self._execs, strict=True):
                time = time + chain_exec
                if time > key[0] + EPS:
                    return False
            return True
        pos = bisect_left(self._keys, (deadline, job_id))
        time = self._finish[pos - 1] if pos else self._base_finish()
        time = time + exec_time
        if time > deadline + EPS:
            return False
        for index in range(pos, len(self._keys)):
            time = time + self._execs[index]
            if time > self._keys[index][0] + EPS:
                return False
        return True

    def finish_times(self) -> dict[int, float]:
        """Completion time of every scheduled job, in completion order
        (matches ``build_timeline(...).finish_times`` exactly)."""
        if self._futures:
            return dict(self.as_reference().finish_times)
        self._refresh()
        times: dict[int, float] = {}
        if self._forced_entry is not None:
            assert self._forced_finish is not None
            times[self._forced_entry[0]] = self._forced_finish
        for key, finish in zip(self._keys, self._finish, strict=True):
            times[key[1]] = finish
        return times

    def slack(self, job_id: int) -> float:
        """``deadline - finish`` of one scheduled job.

        Raises ``KeyError`` for unknown jobs and for jobs the scheduler
        never completes (``exec_time <= EPS``).
        """
        if job_id not in self._jobs:
            raise KeyError(f"job {job_id} not in timeline")
        finish = self.finish_times()
        if job_id not in finish:
            raise KeyError(f"job {job_id} never finishes")
        return self._jobs[job_id][1] - finish[job_id]

    def min_slack(self) -> float:
        """Smallest ``deadline - finish`` over all scheduled jobs
        (``inf`` when nothing is scheduled); negative below ``-EPS``
        exactly when the timeline is infeasible."""
        finish = self.finish_times()
        if not finish:
            return float("inf")
        return min(
            self._jobs[job_id][1] - end for job_id, end in finish.items()
        )

    def as_reference(self) -> ResourceTimeline:
        """Authoritative :func:`build_timeline` replay of the current job
        set (cached until the next mutation)."""
        if self._ref is None:
            ready, future = self._job_lists()
            self._ref = build_timeline(
                ready,
                future,
                start_time=self._start,
                preemptable=self._preemptable,
            )
        return self._ref

    # ------------------------------------------------------------------
    # Reference fallback plumbing
    # ------------------------------------------------------------------

    def _job_lists(self) -> tuple[list[ReadyJob], list[FutureJob]]:
        """The current job set as build_timeline inputs (cached until the
        next mutation; callers must not mutate the returned lists)."""
        if self._lists is None:
            ready: list[ReadyJob] = []
            future: list[FutureJob] = []
            for job_id, (exec_time, deadline, arrival, forced) in sorted(
                self._jobs.items()
            ):
                if arrival is None:
                    ready.append(
                        ReadyJob(
                            job_id, exec_time, deadline, must_run_first=forced
                        )
                    )
                else:
                    future.append(
                        FutureJob(job_id, arrival, exec_time, deadline)
                    )
            self._lists = (ready, future)
        return self._lists

    def _probe_one_future_fast(
        self,
        job_id: int,
        exec_time: float,
        deadline: float,
        arrival: float | None,
    ) -> bool | None:
        """Exact probe for job sets holding exactly one pending future.

        Covers the two shapes the admission loop hammers: probing the
        predicted (future) job against a futures-free chain, and probing
        a ready job against a chain holding one pending future.  A single
        arrival cannot cascade — once it is in the queue no further event
        reorders the EDF pick — so :func:`build_timeline`'s event loop
        collapses to three linear phases over the cached parallel arrays:
        drain ready work until the arrival, slot the future at its EDF
        position, accumulate the displaced suffix.  Every float operation
        below mirrors the replay's (same additions, same order, same
        ``EPS`` comparisons), so the boolean is bit-identical.  Returns
        ``None`` when the job set is outside this proof (several
        futures, tiny executions); the caller falls back to the
        authoritative replay.  A forced (``must_run_first``) job *is*
        covered: on a non-preemptable resource it runs to completion
        before anything else — arrivals only mark at completion
        boundaries there — so it merely shifts the chain base to
        :meth:`_base_finish`; on a preemptable resource the flag is
        ignored and the job sits in the chain, exactly as in the replay.
        """
        if exec_time <= EPS:
            return None
        start = self._start
        if arrival is not None and arrival > start + EPS:
            if self._futures:
                return None  # two pending futures: outside the proof
            future = (arrival, exec_time, deadline, job_id)
            ready = None
        else:
            if len(self._futures) != 1:
                return None
            ((f_id, (f_arrival, f_exec, f_deadline)),) = self._futures.items()
            if f_exec <= EPS:
                return None  # never scheduled; rare enough for the replay
            future = (f_arrival, f_exec, f_deadline, f_id)
            ready = (deadline, job_id, exec_time)
        self._refresh()
        if self._miss_count > 0 or self._forced_missed:
            # Adding work never repairs a miss (finish times are
            # monotone in the job set), so the superset misses too.
            return False
        jobs = list(zip(self._keys, self._execs))
        if ready is not None:
            rkey = (ready[0], ready[1])
            jobs.insert(bisect_left(self._keys, rkey), (rkey, ready[2]))
        a, f_exec, f_deadline, f_id = future
        fkey = (f_deadline, f_id)
        time = self._base_finish()
        index = 0
        n = len(jobs)
        # Phase 1: drain ready work until the future arrives.
        while index < n:
            if a <= time + EPS:
                break  # joins the queue at this completion boundary
            key, chain_exec = jobs[index]
            end = time + chain_exec
            if self._preemptable and a < end - EPS:
                # The arrival splits the running job (the replay's
                # interrupt branch: run until ``a``, then re-pick EDF).
                remaining = chain_exec - (a - time)
                time = a
                if fkey < key:
                    time = time + f_exec
                    if time > f_deadline + EPS:
                        return False
                    time = time + remaining
                    if time > key[0] + EPS:
                        return False
                    index += 1
                    # The future already completed; only the suffix
                    # of the chain is displaced (by its execution).
                    while index < n:
                        key, chain_exec = jobs[index]
                        time = time + chain_exec
                        if time > key[0] + EPS:
                            return False
                        index += 1
                    return True
                # Later-deadline arrival: the split job runs on to
                # completion, then the future is in the queue.
                time = time + remaining
                if time > key[0] + EPS:
                    return False
                index += 1
                break
            time = end
            if time > key[0] + EPS:
                return False
            index += 1
        else:
            if a > time + EPS:
                time = a  # idle gap: work-conserving jump to the arrival
        # Phase 2: the future is queued; earlier-deadline jobs first.
        while index < n and jobs[index][0] < fkey:
            key, chain_exec = jobs[index]
            time = time + chain_exec
            if time > key[0] + EPS:
                return False
            index += 1
        time = time + f_exec
        if time > f_deadline + EPS:
            return False
        # Phase 3: the displaced suffix.
        while index < n:
            key, chain_exec = jobs[index]
            time = time + chain_exec
            if time > key[0] + EPS:
                return False
            index += 1
        return True

    def _probe_reference(
        self,
        job_id: int,
        exec_time: float,
        deadline: float,
        *,
        arrival: float | None,
        must_run_first: bool,
    ) -> bool:
        ready, future = self._job_lists()
        if arrival is None:
            ready = [
                *ready,
                ReadyJob(
                    job_id, exec_time, deadline, must_run_first=must_run_first
                ),
            ]
        else:
            future = [
                *future,
                FutureJob(job_id, arrival, exec_time, deadline),
            ]
        return build_timeline(
            ready,
            future,
            start_time=self._start,
            preemptable=self._preemptable,
        ).feasible

    @classmethod
    def from_jobs(
        cls,
        ready_jobs: list[ReadyJob] | tuple[ReadyJob, ...],
        future_jobs: list[FutureJob] | tuple[FutureJob, ...] = (),
        *,
        start_time: float = 0.0,
        preemptable: bool = True,
    ) -> "Timeline":
        """Build a timeline holding the given jobs (test convenience)."""
        timeline = cls(start_time=start_time, preemptable=preemptable)
        for job in ready_jobs:
            timeline.insert(
                job.job_id,
                job.exec_time,
                job.deadline,
                must_run_first=job.must_run_first,
            )
        for job in future_jobs:
            timeline.insert(
                job.job_id, job.exec_time, job.deadline, arrival=job.arrival
            )
        return timeline
