"""EDF ordering helpers.

The paper's RM sorts the tasks mapped to each resource by absolute
deadline (Sec. 4.1); ties are broken by job id so every consumer of the
ordering agrees on one deterministic schedule.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

T = TypeVar("T")

__all__ = ["edf_order", "edf_position"]


def edf_order(
    items: Iterable[T],
    deadline: Callable[[T], float],
    tiebreak: Callable[[T], object] | None = None,
) -> list[T]:
    """Sort ``items`` by (deadline, tiebreak).

    ``tiebreak`` defaults to the item's position in the input, which keeps
    the sort stable and deterministic for items without a natural key.
    """
    items = list(items)
    if tiebreak is None:
        index = {id(item): position for position, item in enumerate(items)}
        return sorted(items, key=lambda it: (deadline(it), index[id(it)]))
    return sorted(items, key=lambda it: (deadline(it), tiebreak(it)))


def edf_position(
    items: Iterable[T],
    new_deadline: float,
    deadline: Callable[[T], float],
) -> int:
    """Index at which a job with ``new_deadline`` would run in EDF order.

    Existing jobs with an equal deadline keep priority (FIFO among equals).
    """
    position = 0
    for item in items:
        if deadline(item) <= new_deadline:
            position += 1
    return position
