"""Scheduling substrate: per-resource EDF timelines and feasibility.

The resource managers in :mod:`repro.core` decide *mappings*; given a
mapping, the schedule on each resource is fully determined by the rules of
Sec. 4.1 of the paper:

* tasks already admitted are all ready at the activation time ``t``;
* each resource runs its tasks in EDF order (work-conserving);
* the predicted task arrives in the future and — on preemptable
  resources only — preempts the running task if its deadline is earlier;
* on non-preemptable (GPU-like) resources the currently executing task
  must run first and nothing is ever preempted.

:func:`~repro.sched.timeline.build_timeline` simulates exactly these rules
for one resource and reports per-task finish times, which is how both the
heuristic's ``IsSchedulable`` and the validation of MILP solutions are
implemented.
"""

from repro.sched.timeline import (
    Chunk,
    FutureJob,
    ReadyJob,
    ResourceTimeline,
    Timeline,
    build_timeline,
)
from repro.sched.feasibility import check_resource_feasible, latest_finish
from repro.sched.edf import edf_order

__all__ = [
    "ReadyJob",
    "FutureJob",
    "Chunk",
    "ResourceTimeline",
    "Timeline",
    "build_timeline",
    "check_resource_feasible",
    "latest_finish",
    "edf_order",
]
