"""A numpy struct-of-arrays mirror of the EDF :class:`Timeline` probe.

:class:`VectorTimeline` keeps the ready chain as parallel numpy arrays
(sorted deadlines, execution times, job ids) instead of Python lists,
and answers *batches* of feasibility probes at once (DESIGN.md §14).

Exactness contract: every answer is bit-identical to
:meth:`repro.sched.timeline.Timeline.probe` on the same chain.  The
sequential EDF finish-time fold ``time = time + exec`` is reproduced
with ``np.add.accumulate`` (an ordered left fold — numpy does not
reassociate ``accumulate``, unlike ``reduce``); probes that would land
*inside* the chain (and therefore shift a suffix whose float folds must
be replayed term-by-term) fall back to the scalar mirror, so the
vectorised fast path only ever answers append-at-end probes — the hot
case in admission, where the new deadline dominates the chain.

The class intentionally supports only the preemptable, no-futures,
no-forced-job subset the admission fast path exercises;
:class:`~repro.sched.timeline.Timeline` remains the general reference.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

import numpy as np

from repro.sched.timeline import EPS

__all__ = ["VectorTimeline"]


class VectorTimeline:
    """Batched EDF feasibility probes over struct-of-arrays state."""

    __slots__ = (
        "_start",
        "_deadlines",
        "_execs",
        "_job_ids",
        "_finish",
        "_missed",
    )

    def __init__(
        self,
        jobs: Iterable[tuple[int, float, float]] = (),
        *,
        start_time: float = 0.0,
    ) -> None:
        """Build from ``(job_id, exec_time, deadline)`` triples.

        Jobs are ordered EDF — by ``(deadline, job_id)`` — exactly like
        the reference timeline's key order.
        """
        entries = sorted(
            ((deadline, job_id, exec_time)
             for job_id, exec_time, deadline in jobs)
        )
        for deadline, job_id, exec_time in entries:
            if exec_time <= 0:
                raise ValueError(
                    f"exec_time must be > 0, got {exec_time} for job {job_id}"
                )
        self._start = float(start_time)
        self._deadlines = np.array(
            [entry[0] for entry in entries], dtype=np.float64
        )
        self._job_ids = np.array(
            [entry[1] for entry in entries], dtype=np.int64
        )
        self._execs = np.array(
            [entry[2] for entry in entries], dtype=np.float64
        )
        # Ordered left fold: finish[0] = start + exec[0],
        # finish[i] = finish[i-1] + exec[i] — np.add.accumulate keeps
        # this exact order, matching Timeline._refresh bit-for-bit.
        if len(entries):
            chain = np.empty(len(entries) + 1, dtype=np.float64)
            chain[0] = self._start
            chain[1:] = self._execs
            self._finish = np.add.accumulate(chain)[1:]
            self._missed = bool(
                np.any(self._finish > self._deadlines + EPS)
            )
        else:
            self._finish = np.empty(0, dtype=np.float64)
            self._missed = False

    def __len__(self) -> int:
        return len(self._execs)

    @property
    def start_time(self) -> float:
        return self._start

    def feasible(self) -> bool:
        """Whether every job in the chain meets its deadline."""
        return not self._missed

    def finish_times(self) -> np.ndarray:
        """EDF finish time per job, in chain order (copy)."""
        return self._finish.copy()

    def _base_finish(self) -> float:
        return self._start

    def probe(self, job_id: int, exec_time: float, deadline: float) -> bool:
        """Scalar probe — the exact mirror of ``Timeline.probe``.

        Same float operations in the same order, including the
        tiny-execution early accept and the suffix replay.
        """
        if exec_time <= 0:
            raise ValueError(f"exec_time must be > 0, got {exec_time}")
        if self._missed:
            return False
        if exec_time <= EPS:
            return True
        keys = list(zip(self._deadlines.tolist(), self._job_ids.tolist()))
        pos = bisect_left(keys, (deadline, job_id))
        time = float(self._finish[pos - 1]) if pos else self._base_finish()
        time = time + exec_time
        if time > deadline + EPS:
            return False
        execs = self._execs.tolist()
        deadlines = self._deadlines.tolist()
        for index in range(pos, len(execs)):
            time = time + execs[index]
            if time > deadlines[index] + EPS:
                return False
        return True

    def probe_batch(
        self,
        job_ids: Sequence[int] | np.ndarray,
        exec_times: Sequence[float] | np.ndarray,
        deadlines: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Answer many independent probes; returns a bool array.

        Each probe asks "could this job join the current chain", exactly
        as if it were the only addition — probes do not see each other.
        Append-at-end probes (EDF position past every existing key) are
        answered vectorised; interior probes fall back to the exact
        scalar mirror.
        """
        ids = np.asarray(job_ids, dtype=np.int64)
        execs = np.asarray(exec_times, dtype=np.float64)
        dls = np.asarray(deadlines, dtype=np.float64)
        if not (len(ids) == len(execs) == len(dls)):
            raise ValueError("probe_batch arrays must have equal length")
        if np.any(execs <= 0):
            raise ValueError("exec_time must be > 0 for every probe")
        out = np.zeros(len(ids), dtype=bool)
        if self._missed:
            return out
        tiny = execs <= EPS
        out[tiny] = True
        n = len(self._execs)
        if n == 0:
            rest = ~tiny
            time = self._base_finish() + execs[rest]
            out[rest] = ~(time > dls[rest] + EPS)
            return out
        positions = np.searchsorted(self._deadlines, dls, side="left")
        # Deadline ties resolve by job id (the reference key order).
        # A probe deadline equal to an existing one may still sort past
        # it when the probe's job id is larger.
        tie = (positions < n) & (
            self._deadlines[np.minimum(positions, n - 1)] == dls
        )
        for index in np.nonzero(tie)[0]:
            pos = int(positions[index])
            while (
                pos < n
                and self._deadlines[pos] == dls[index]
                and self._job_ids[pos] < ids[index]
            ):
                pos += 1
            positions[index] = pos
        at_end = (positions == n) & ~tiny
        time = self._finish[-1] + execs[at_end]
        out[at_end] = ~(time > dls[at_end] + EPS)
        interior = ~at_end & ~tiny
        for index in np.nonzero(interior)[0]:
            out[index] = self.probe(
                int(ids[index]), float(execs[index]), float(dls[index])
            )
        return out
