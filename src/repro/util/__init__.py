"""Shared utilities: seeded RNG streams, validation and ASCII reporting.

These helpers are deliberately dependency-light so every other subpackage
can import them without cycles.
"""

from repro.util.rng import RngStreams, derive_seed
from repro.util.stats import (
    Interval,
    binomial_confidence_interval,
    mean_confidence_interval,
    paired_difference,
)
from repro.util.tables import ascii_bar_chart, ascii_table, format_float
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "RngStreams",
    "derive_seed",
    "ascii_table",
    "ascii_bar_chart",
    "format_float",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_finite",
    "Interval",
    "mean_confidence_interval",
    "paired_difference",
    "binomial_confidence_interval",
]
