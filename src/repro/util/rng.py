"""Deterministic random-number management.

Every stochastic component in the library (trace generation, noisy
predictors, tie-breaking) draws from an explicitly named stream derived
from a single master seed.  This guarantees that

* experiments are exactly reproducible given a seed, and
* changing the amount of randomness consumed by one component does not
  perturb any other component (streams are independent).

The derivation uses ``numpy.random.SeedSequence.spawn`` semantics via a
stable hash of the stream name, so the mapping ``(master_seed, name) ->
child seed`` is stable across processes and Python versions.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngStreams"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from a master seed and a stream name.

    The derivation is a SHA-256 hash of the master seed and the name,
    truncated to 63 bits (so it is a valid non-negative numpy seed).

    >>> derive_seed(0, "traces") == derive_seed(0, "traces")
    True
    >>> derive_seed(0, "traces") != derive_seed(0, "tasks")
    True
    """
    if master_seed < 0:
        raise ValueError(f"master_seed must be non-negative, got {master_seed}")
    payload = f"{master_seed}:{name}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


class RngStreams:
    """A factory of independent, named random generators.

    Parameters
    ----------
    master_seed:
        The experiment-level seed.  Two :class:`RngStreams` built from the
        same master seed hand out identical streams for identical names.

    Examples
    --------
    >>> streams = RngStreams(42)
    >>> a = streams.get("workload")
    >>> b = RngStreams(42).get("workload")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError(f"master_seed must be non-negative, got {master_seed}")
        self.master_seed = master_seed
        self._issued: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its state advances as it is consumed).
        """
        if name not in self._issued:
            seed = derive_seed(self.master_seed, name)
            self._issued[name] = np.random.default_rng(seed)
        return self._issued[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` with its initial state.

        Unlike :meth:`get`, this never reuses a previously issued
        generator, so the stream is re-read from the start.
        """
        return np.random.default_rng(derive_seed(self.master_seed, name))

    def spawn(self, name: str) -> "RngStreams":
        """Create a child :class:`RngStreams` namespace.

        Useful when a sub-experiment needs its own family of streams that
        must not collide with the parent's.
        """
        return RngStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    def issued_names(self) -> list[str]:
        """Names of all streams issued so far (for diagnostics)."""
        return sorted(self._issued)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(master_seed={self.master_seed}, issued={len(self._issued)})"
