"""Small argument-validation helpers.

All raise ``ValueError`` with a message naming the offending argument, so
constructors across the library validate consistently.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_finite",
    "check_probability",
    "check_non_empty",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Require ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_finite(name: str, value: float) -> float:
    """Require a finite float (no NaN/inf)."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require a probability in ``[0, 1]``."""
    return check_in_range(name, value, 0.0, 1.0)


def check_non_empty(name: str, value: Iterable) -> Iterable:
    """Require a non-empty sized collection."""
    try:
        size = len(value)  # type: ignore[arg-type]
    except TypeError as exc:  # pragma: no cover - defensive
        raise TypeError(f"{name} must be a sized collection") from exc
    if size == 0:
        raise ValueError(f"{name} must not be empty")
    return value
