"""Crash-safe file writes (temp file + atomic rename).

A plain ``write_text`` that dies mid-write — crash, OOM kill, full disk
— leaves a truncated file behind, silently corrupting reports, saved
traces and benchmark baselines.  :func:`atomic_write_text` writes to a
temporary file in the *same directory* (so the final rename never
crosses a filesystem boundary) and publishes it with :func:`os.replace`,
which is atomic on POSIX and Windows: readers see either the old
complete content or the new complete content, never a torn file.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | os.PathLike[str], text: str) -> None:
    """Write ``text`` to ``path`` atomically (all-or-nothing).

    The temporary file is fsync'd before the rename so the content is
    durable once the new name is visible; on any failure the temp file
    is removed and the destination is left untouched.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, target)
    except BaseException:
        try:
            os.unlink(temp_path)
        except FileNotFoundError:
            pass
        raise
