"""ASCII rendering of experiment results.

The experiment harness reports every table and figure of the paper as
plain-text tables and bar charts so results are readable directly from a
terminal or a CI log (no plotting dependency required).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_float", "ascii_table", "ascii_bar_chart", "ascii_line_chart"]


def format_float(value: float, digits: int = 2) -> str:
    """Format a float compactly: integers lose the trailing ``.0``.

    >>> format_float(3.0)
    '3'
    >>> format_float(3.14159, 3)
    '3.142'
    """
    text = f"{value:.{digits}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text or "0"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_digits: int = 2,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed ASCII table.

    Floats are formatted with :func:`format_float`; everything else via
    ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return format_float(cell, float_digits)
        return str(cell)

    text_rows = [[render(c) for c in row] for row in rows]
    for i, row in enumerate(text_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(fill: str, joint: str) -> str:
        return joint + joint.join(fill * (w + 2) for w in widths) + joint

    def fmt(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            c.ljust(w) for c, w in zip(cells, widths, strict=False)
        ) + " |"

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line("-", "+"))
    parts.append(fmt(list(headers)))
    parts.append(line("=", "+"))
    for row in text_rows:
        parts.append(fmt(row))
    parts.append(line("-", "+"))
    return "\n".join(parts)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str | None = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart (one bar per label).

    Bars are scaled so the maximum value spans ``width`` characters.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        raise ValueError("nothing to chart")
    vmax = max(max(values), 0.0)
    label_w = max(len(str(lbl)) for lbl in labels)
    parts: list[str] = []
    if title:
        parts.append(title)
    for label, value in zip(labels, values, strict=False):
        if vmax > 0:
            bar = "#" * max(0, round(width * value / vmax))
        else:
            bar = ""
        parts.append(
            f"{str(label).rjust(label_w)} | {bar} {format_float(value)}{unit}"
        )
    return "\n".join(parts)


def ascii_line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
    height: int = 12,
    width: int = 60,
) -> str:
    """Render one or more series as a coarse ASCII scatter/line chart.

    Each series gets a distinct marker; points are binned onto a
    ``width``×``height`` character grid.  Intended for quick visual checks
    of trends (e.g. rejection vs accuracy) in terminal output.
    """
    if not series:
        raise ValueError("no series to chart")
    markers = "*o+x@%&$"
    all_ys = [y for ys in series.values() for y in ys]
    if not all_ys:
        raise ValueError("series are empty")
    ymin, ymax = min(all_ys), max(all_ys)
    xmin, xmax = min(xs), max(xs)
    yspan = (ymax - ymin) or 1.0
    xspan = (xmax - xmin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), markers, strict=False):
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch with xs")
        for x, y in zip(xs, ys):
            col = round((x - xmin) / xspan * (width - 1))
            row = height - 1 - round((y - ymin) / yspan * (height - 1))
            grid[row][col] = marker
    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(f"y: {format_float(ymin)} .. {format_float(ymax)}")
    for row in grid:
        parts.append("|" + "".join(row))
    parts.append("+" + "-" * width)
    parts.append(f"x: {format_float(xmin)} .. {format_float(xmax)}")
    legend = "  ".join(
        f"{marker}={name}"
        for (name, _), marker in zip(series.items(), markers, strict=False)
    )
    parts.append(legend)
    return "\n".join(parts)
