"""Statistics for experiment aggregation.

The paper reports means over hundreds of traces; at the reduced scales a
reproduction typically runs, point estimates deserve error bars.  This
module provides the small amount of inference the harness needs:

* :func:`mean_confidence_interval` — Student-t interval on a mean;
* :func:`paired_difference` — CI on a paired difference (the natural
  analysis for "prediction on vs off on the *same* traces");
* :func:`binomial_confidence_interval` — Wilson interval for proportions
  (e.g. the Sec. 5.2 "MILP wins on 88% of traces" statistic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats

from repro.util.validation import check_in_range, check_non_empty

__all__ = [
    "Interval",
    "mean_confidence_interval",
    "paired_difference",
    "binomial_confidence_interval",
]


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3g} "
            f"[{self.low:.3g}, {self.high:.3g}]@{self.confidence:.0%}"
        )


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Interval:
    """Student-t confidence interval on the mean of ``values``.

    A single observation yields a degenerate interval at the value.
    """
    check_non_empty("values", values)
    check_in_range("confidence", confidence, 0.0, 1.0, inclusive=False)
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Interval(mean, mean, mean, confidence)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    half = t_crit * sem
    return Interval(mean, mean - half, mean + half, confidence)


def paired_difference(
    first: Sequence[float],
    second: Sequence[float],
    confidence: float = 0.95,
) -> Interval:
    """CI on the mean of ``first[i] - second[i]``.

    Pairing removes the between-trace variance, which dominates when two
    configurations are run over the same workloads — exactly the design
    of every comparison in this harness.
    """
    if len(first) != len(second):
        raise ValueError(
            f"paired samples must have equal length, got "
            f"{len(first)} vs {len(second)}"
        )
    differences = [a - b for a, b in zip(first, second, strict=True)]
    return mean_confidence_interval(differences, confidence)


def binomial_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Interval:
    """Wilson score interval for a proportion."""
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    check_in_range("confidence", confidence, 0.0, 1.0, inclusive=False)
    z = float(_scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return Interval(p, max(0.0, centre - half), min(1.0, centre + half),
                    confidence)
