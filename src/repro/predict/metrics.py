"""Prediction-quality evaluation.

Quantifies a predictor against a trace with the two measures the paper
uses (Sec. 1 and Sec. 5.4): type accuracy and the normalised RMS error of
the predicted arrival time (normalised by the trace's mean inter-arrival
time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.predict.base import Predictor
from repro.workload.trace import Trace

__all__ = ["PredictionReport", "evaluate_predictor", "nrmse", "type_accuracy"]


def nrmse(
    predicted: Sequence[float],
    actual: Sequence[float],
    *,
    norm: float | None = None,
) -> float:
    """Normalised RMS error of paired forecasts.

    ``sqrt(mean((predicted - actual)^2)) / norm``; when ``norm`` is
    omitted it defaults to the mean first difference of ``actual`` (the
    trace-level convention of :func:`evaluate_predictor`), falling back
    to ``1.0`` when that mean is not strictly positive — degenerate
    inputs (constant series, a single sample) degrade to the
    unnormalised error rather than NaN or a zero division.

    Raises :class:`ValueError` on mismatched lengths, on empty inputs,
    and on a non-positive explicit ``norm``.
    """
    if len(predicted) != len(actual):
        raise ValueError(
            f"length mismatch: {len(predicted)} predictions vs "
            f"{len(actual)} actuals"
        )
    if not actual:
        raise ValueError("cannot score zero forecasts")
    if norm is not None and not norm > 0:
        raise ValueError(f"norm must be > 0, got {norm}")
    if norm is None:
        gaps = [b - a for a, b in zip(actual, actual[1:], strict=False)]
        mean_gap = sum(gaps) / len(gaps) if gaps else 0.0
        norm = mean_gap if mean_gap > 0 else 1.0
    squared = sum((p - a) ** 2 for p, a in zip(predicted, actual, strict=True))
    return math.sqrt(squared / len(actual)) / norm


def type_accuracy(predicted: Sequence[int], actual: Sequence[int]) -> float:
    """Fraction of matching entries in two equal-length type sequences.

    Raises :class:`ValueError` on mismatched lengths and on empty
    inputs (an accuracy over nothing is undefined, not 0 or 1).
    """
    if len(predicted) != len(actual):
        raise ValueError(
            f"length mismatch: {len(predicted)} predictions vs "
            f"{len(actual)} actuals"
        )
    if not actual:
        raise ValueError("cannot score zero forecasts")
    hits = sum(1 for p, a in zip(predicted, actual, strict=True) if p == a)
    return hits / len(actual)


@dataclass(frozen=True)
class PredictionReport:
    """Accuracy measures of one predictor over one trace.

    Attributes
    ----------
    n_predictions:
        Steps at which the predictor produced a forecast.
    n_abstained:
        Steps at which it returned ``None`` (warm-up, end of trace...).
    type_accuracy:
        Fraction of forecasts whose type matched the actual next request.
    arrival_nrmse:
        RMS error of the predicted arrival, divided by the trace's mean
        inter-arrival time (the paper's normalised error; 0 = perfect).
    arrival_mean_abs_error:
        Mean absolute arrival error, same normalisation.

    Degenerate traces have *defined* (never NaN, never a division by
    zero) error values:

    * a trace whose mean inter-arrival time is zero — e.g. a single
      request, where there are no gaps to average — normalises by 1.0
      instead, so the errors degrade to their *unnormalised* values;
    * a predictor that never forecasts reports ``arrival_nrmse`` and
      ``arrival_mean_abs_error`` of ``inf`` (no information is worse
      than any finite error), with ``type_accuracy`` 0.0;
    * exact forecasts on any trace score exactly ``0.0``.
    """

    n_predictions: int
    n_abstained: int
    type_accuracy: float
    arrival_nrmse: float
    arrival_mean_abs_error: float

    @property
    def coverage(self) -> float:
        """Fraction of steps with a forecast."""
        total = self.n_predictions + self.n_abstained
        return self.n_predictions / total if total else 0.0


def evaluate_predictor(predictor: Predictor, trace: Trace) -> PredictionReport:
    """Replay ``trace`` through ``predictor`` and score every forecast.

    The predictor is reset first.  At each request ``i`` (except the
    last) the forecast for ``i + 1`` is compared against the actual
    request ``i + 1``.
    """
    predictor.reset()
    mean_gap = trace.mean_interarrival()
    n_predictions = 0
    n_abstained = 0
    type_hits = 0
    squared_error = 0.0
    abs_error = 0.0
    for index in range(len(trace) - 1):
        prediction = predictor.predict(trace, index)
        if prediction is None:
            n_abstained += 1
            continue
        n_predictions += 1
        actual = trace[index + 1]
        if prediction.type_id == actual.type_id:
            type_hits += 1
        error = prediction.arrival - actual.arrival
        squared_error += error * error
        abs_error += abs(error)
    if n_predictions == 0:
        return PredictionReport(0, n_abstained, 0.0, math.inf, math.inf)
    # A zero (or pathological) mean gap must not divide the RMS error:
    # fall back to the unnormalised error rather than returning NaN/inf
    # for a perfectly good forecast (see the class docstring).
    norm = mean_gap if mean_gap > 0 else 1.0
    return PredictionReport(
        n_predictions=n_predictions,
        n_abstained=n_abstained,
        type_accuracy=type_hits / n_predictions,
        arrival_nrmse=math.sqrt(squared_error / n_predictions) / norm,
        arrival_mean_abs_error=abs_error / n_predictions / norm,
    )
