"""Noise-degraded predictors: the accuracy-sweep methodology of Sec. 5.4.

The paper studies prediction quality by degrading a perfect prediction
along the two axes the predictor provides:

* **task type** (Fig. 4a): with probability ``1 - accuracy`` the
  predicted request identity is wrong — replaced by a uniformly random
  *different* type.  The arrival time stays exact.
* **arrival time** (Fig. 4b): the predicted arrival carries Gaussian
  noise scaled so that the expected normalised RMS error (normalised by
  the trace's mean inter-arrival time) equals ``1 - accuracy``.  The
  type stays exact.

Both wrap an arbitrary base predictor (the oracle by default), so they
also compose with learned predictors for ablations.
"""

from __future__ import annotations

import numpy as np

from repro.model.request import PredictedRequest
from repro.predict.base import Predictor
from repro.predict.oracle import OraclePredictor
from repro.util.validation import check_non_negative, check_probability
from repro.workload.trace import Trace

__all__ = ["TypeNoisePredictor", "ArrivalNoisePredictor"]


class TypeNoisePredictor(Predictor):
    """Mispredicts the task type with probability ``1 - accuracy``.

    Parameters
    ----------
    accuracy:
        Probability that the predicted type is correct at each step
        (Fig. 4a's x-axis).
    base:
        The predictor being degraded (oracle by default).
    seed:
        Seed of the private noise stream.
    """

    def __init__(
        self,
        accuracy: float,
        *,
        base: Predictor | None = None,
        seed: int = 0,
    ) -> None:
        check_probability("accuracy", accuracy)
        self.accuracy = accuracy
        self.base = base or OraclePredictor()
        self.seed = seed
        self.name = f"type-noise({accuracy:g})"
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self.base.reset()
        self._rng = np.random.default_rng(self.seed)

    def predict(self, trace: Trace, index: int) -> PredictedRequest | None:
        prediction = self.base.predict(trace, index)
        if prediction is None:
            return None
        if float(self._rng.random()) < self.accuracy:
            return prediction
        if len(trace.tasks) < 2:
            return prediction  # no different type exists to be wrong with
        wrong = int(self._rng.integers(0, len(trace.tasks) - 1))
        if wrong >= prediction.type_id:
            wrong += 1  # uniform over types != the true one
        return PredictedRequest(
            arrival=prediction.arrival,
            type_id=wrong,
            deadline=prediction.deadline,
        )


class ArrivalNoisePredictor(Predictor):
    """Adds Gaussian noise to the predicted arrival time.

    The noise standard deviation is ``(1 - accuracy) * mean_interarrival``
    of the trace, so the expected normalised RMS error over the trace is
    ``1 - accuracy`` — the paper's definition for Fig. 4b ("0.75 accuracy
    value means that the normalised root mean square error for the
    arrival time prediction over the corresponding trace is 0.25").

    Predicted arrivals are clamped to be no earlier than the current
    request's arrival (the prediction is made at that moment; a real
    predictor cannot announce an arrival in its own past).
    """

    def __init__(
        self,
        accuracy: float,
        *,
        base: Predictor | None = None,
        seed: int = 0,
    ) -> None:
        check_probability("accuracy", accuracy)
        self.accuracy = accuracy
        self.base = base or OraclePredictor()
        self.seed = seed
        self.name = f"arrival-noise({accuracy:g})"
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self.base.reset()
        self._rng = np.random.default_rng(self.seed)

    def predict(self, trace: Trace, index: int) -> PredictedRequest | None:
        prediction = self.base.predict(trace, index)
        if prediction is None:
            return None
        sigma = (1.0 - self.accuracy) * trace.mean_interarrival()
        check_non_negative("noise sigma", sigma)
        noise = float(self._rng.normal(0.0, sigma)) if sigma > 0 else 0.0
        now = trace[index].arrival
        return PredictedRequest(
            arrival=max(prediction.arrival + noise, now),
            type_id=prediction.type_id,
            deadline=prediction.deadline,
        )
