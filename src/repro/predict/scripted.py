"""Scripted predictions: exact control over what the RM is told.

Used by the motivational-example reproduction (Fig. 1, scenario with an
*inaccurate* prediction) and by tests that need a predictor to say one
specific — possibly wrong — thing at one specific step.
"""

from __future__ import annotations

from typing import Mapping

from repro.model.request import PredictedRequest
from repro.predict.base import Predictor
from repro.workload.trace import Trace

__all__ = ["ScriptedPredictor"]


class ScriptedPredictor(Predictor):
    """Returns pre-scripted predictions keyed by request index.

    Parameters
    ----------
    script:
        ``index -> PredictedRequest`` returned when request ``index``
        arrives; indices not in the script yield ``None`` (no
        prediction).
    """

    name = "scripted"

    def __init__(self, script: Mapping[int, PredictedRequest]) -> None:
        self.script = dict(script)

    def predict(self, trace: Trace, index: int) -> PredictedRequest | None:
        return self.script.get(index)
