"""Predictor interface.

The paper deliberately separates prediction from management: the RM
consumes a :class:`~repro.model.request.PredictedRequest` describing the
*next* expected request, however it was produced.  A
:class:`Predictor` is queried right after request ``index`` of a trace
arrives and returns its forecast of request ``index + 1`` (or ``None``
for "no prediction", in which case the RM plans without one).

Two families implement the interface:

* emulated predictors (:mod:`repro.predict.oracle`,
  :mod:`repro.predict.noisy`) that read the true next request and
  degrade it to a target accuracy — the paper's experimental methodology
  (Sec. 5.3-5.4);
* online learned predictors (:mod:`repro.predict.markov`,
  :mod:`repro.predict.interarrival`) in the spirit of the authors' prior
  work [12, 13], which must only ever look at the *past* of the stream —
  :class:`OnlinePredictor` enforces this by construction.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.model.request import PredictedRequest, Request
from repro.workload.trace import Trace

__all__ = ["Predictor", "OnlinePredictor", "NullPredictor"]


class Predictor(abc.ABC):
    """Forecasts the next request of a trace."""

    #: short identifier used in experiment reports
    name: str = "predictor"

    def reset(self) -> None:
        """Clear any learned state before replaying a new trace."""

    @abc.abstractmethod
    def predict(self, trace: Trace, index: int) -> PredictedRequest | None:
        """Forecast request ``index + 1`` just after request ``index`` arrived.

        ``index`` is the position of the request that triggered the
        current RM activation.  Returns ``None`` when no forecast is
        available (e.g. end of trace, or not enough history).
        """

    def predict_horizon(
        self, trace: Trace, index: int, horizon: int
    ) -> list[PredictedRequest]:
        """Forecast up to ``horizon`` upcoming requests.

        The paper predicts one request; a lookahead horizon is this
        library's extension.  The default implementation returns just the
        single-step forecast — predictors with genuine multi-step ability
        (e.g. the oracle) override it.
        """
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        prediction = self.predict(trace, index)
        return [] if prediction is None else [prediction]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class OnlinePredictor(Predictor):
    """A predictor that may only use the observed past of the stream.

    Subclasses implement :meth:`observe` (called once per arrived
    request, in order) and :meth:`forecast`.  The base class feeds them
    exactly the prefix ``trace[0..index]`` and never the future, so
    causality is guaranteed by construction rather than by convention.
    """

    def __init__(self) -> None:
        self._next_to_observe = 0

    def reset(self) -> None:
        self._next_to_observe = 0
        self._reset_state()

    def _reset_state(self) -> None:
        """Clear learned state (override as needed)."""

    @abc.abstractmethod
    def observe(self, request: Request) -> None:
        """Ingest one arrived request (called in arrival order)."""

    @abc.abstractmethod
    def forecast(self, history: Sequence[Request]) -> PredictedRequest | None:
        """Forecast the next request from the observed history."""

    def predict(self, trace: Trace, index: int) -> PredictedRequest | None:
        if index < 0 or index >= len(trace):
            raise IndexError(f"request index {index} out of range")
        if index + 1 >= len(trace):
            return None  # nothing follows; avoid predicting past the end
        if self._next_to_observe > index + 1:
            raise RuntimeError(
                "online predictor replayed backwards; call reset() between "
                "traces"
            )
        while self._next_to_observe <= index:
            self.observe(trace[self._next_to_observe])
            self._next_to_observe += 1
        return self.forecast(trace.requests[: index + 1])


class NullPredictor(Predictor):
    """The "predictor off" configuration: never forecasts anything."""

    name = "off"

    def predict(self, trace: Trace, index: int) -> PredictedRequest | None:
        return None
