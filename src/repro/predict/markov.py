"""Online task-type prediction and the composed learned predictor.

:class:`MarkovTypePredictor` learns a first-order Markov chain over task
types (the request-type prediction of the authors' prior work [13]
operates at the same granularity: "which request type comes next").
:class:`ComposedPredictor` assembles a full
:class:`~repro.model.request.PredictedRequest` from

* a type model (Markov chain),
* an inter-arrival model (:mod:`repro.predict.interarrival`),
* a per-type running mean of observed relative deadlines (the trace's
  deadline field is tied to the task type through RWCET, so the type's
  history is the natural estimator).
"""

from __future__ import annotations

import collections
from typing import Sequence

from repro.model.request import PredictedRequest, Request
from repro.predict.base import OnlinePredictor
from repro.predict.interarrival import (
    ArInterarrival,
    InterarrivalModel,
    SeasonalInterarrival,
    TwoPhaseInterarrival,
)

__all__ = [
    "MarkovTypePredictor",
    "NGramTypePredictor",
    "ComposedPredictor",
    "make_ar_predictor",
    "make_seasonal_predictor",
]


class MarkovTypePredictor:
    """First-order Markov chain over task-type ids.

    ``update`` feeds observed types in order; ``forecast`` returns the
    most frequent successor of the latest type, falling back to the
    globally most frequent type when the current type has never been
    seen before (or at the start of the stream).
    """

    def __init__(self) -> None:
        self._transitions: dict[int, collections.Counter] = {}
        self._frequency: collections.Counter = collections.Counter()
        self._last_type: int | None = None
        # Cached ``min((-count, type))`` per context and globally, kept
        # exact incrementally: counts only ever grow, so a stored best
        # stays valid until the incremented entry beats (or is) it.
        self._best: dict[int, tuple[int, int]] = {}
        self._best_frequency: tuple[int, int] | None = None

    def reset(self) -> None:
        self._transitions.clear()
        self._frequency.clear()
        self._last_type = None
        self._best.clear()
        self._best_frequency = None

    def update(self, type_id: int) -> None:
        last = self._last_type
        if last is not None:
            successors = self._transitions.setdefault(
                last, collections.Counter()
            )
            successors[type_id] += 1
            candidate = (-successors[type_id], type_id)
            best = self._best.get(last)
            if best is None or candidate < best or best[1] == type_id:
                self._best[last] = candidate
        self._frequency[type_id] += 1
        candidate = (-self._frequency[type_id], type_id)
        best = self._best_frequency
        if best is None or candidate < best or best[1] == type_id:
            self._best_frequency = candidate
        self._last_type = type_id

    def forecast(self) -> int | None:
        if self._last_type is not None:
            best = self._best.get(self._last_type)
            if best is not None:
                return best[1]
        if self._best_frequency is not None:
            return self._best_frequency[1]
        return None


class NGramTypePredictor:
    """Order-``k`` type model with back-off.

    Keeps successor counts for every context length from ``k`` down to 1
    and predicts from the longest context that has been observed —
    longer motifs beat a first-order chain on streams with repeating
    patterns longer than a single transition (e.g. ``A B A C``: after
    ``A`` alone the successor is ambiguous, after ``B A`` it is not).
    """

    def __init__(self, order: int = 3) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = order
        self._tables: list[dict[tuple[int, ...], collections.Counter]] = [
            {} for _ in range(order)
        ]
        self._frequency: collections.Counter = collections.Counter()
        self._recent: collections.deque[int] = collections.deque(maxlen=order)

    def reset(self) -> None:
        for table in self._tables:
            table.clear()
        self._frequency.clear()
        self._recent.clear()

    def update(self, type_id: int) -> None:
        history = tuple(self._recent)
        for length in range(1, min(len(history), self.order) + 1):
            key = history[-length:]
            self._tables[length - 1].setdefault(
                key, collections.Counter()
            )[type_id] += 1
        self._frequency[type_id] += 1
        self._recent.append(type_id)

    def forecast(self) -> int | None:
        history = tuple(self._recent)
        for length in range(min(len(history), self.order), 0, -1):
            successors = self._tables[length - 1].get(history[-length:])
            if successors:
                return min(successors, key=lambda t: (-successors[t], t))
        if self._frequency:
            return min(self._frequency, key=lambda t: (-self._frequency[t], t))
        return None


class ComposedPredictor(OnlinePredictor):
    """A full next-request predictor from online type + gap models.

    Parameters
    ----------
    interarrival:
        The gap model (two-phase by default).
    type_model:
        The type model: anything with ``update(type_id)``, ``forecast()``
        and ``reset()`` (first-order Markov by default; see
        :class:`NGramTypePredictor` for longer contexts).
    warmup:
        Minimum number of observed requests before forecasting; below
        it the predictor abstains (returns ``None``), which the RM
        treats as "no prediction" — better than guessing from nothing.
    """

    name = "learned"

    def __init__(
        self,
        interarrival: InterarrivalModel | None = None,
        *,
        type_model=None,
        warmup: int = 5,
    ) -> None:
        super().__init__()
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.warmup = warmup
        self._type_model = type_model or MarkovTypePredictor()
        self._gap_model = interarrival or TwoPhaseInterarrival()
        self._deadline_sum: collections.Counter = collections.Counter()
        self._deadline_count: collections.Counter = collections.Counter()
        self._global_deadline_sum = 0.0
        self._observed = 0
        self._last_arrival: float | None = None

    def _reset_state(self) -> None:
        self._type_model.reset()
        self._gap_model.reset()
        self._deadline_sum.clear()
        self._deadline_count.clear()
        self._global_deadline_sum = 0.0
        self._observed = 0
        self._last_arrival = None

    def observe(self, request: Request) -> None:
        self._type_model.update(request.type_id)
        if self._last_arrival is not None:
            self._gap_model.update(request.arrival - self._last_arrival)
        self._last_arrival = request.arrival
        self._deadline_sum[request.type_id] += request.deadline
        self._deadline_count[request.type_id] += 1
        self._global_deadline_sum += request.deadline
        self._observed += 1

    def _deadline_estimate(self, type_id: int) -> float:
        if self._deadline_count[type_id]:
            return self._deadline_sum[type_id] / self._deadline_count[type_id]
        return self._global_deadline_sum / self._observed

    def forecast(self, history: Sequence[Request]) -> PredictedRequest | None:
        if self._observed < self.warmup:
            return None
        type_id = self._type_model.forecast()
        gap = self._gap_model.forecast()
        if type_id is None or gap is None or self._last_arrival is None:
            return None
        deadline = self._deadline_estimate(type_id)
        if deadline <= 0:
            return None
        return PredictedRequest(
            arrival=self._last_arrival + max(gap, 0.0),
            type_id=type_id,
            deadline=deadline,
        )


def make_ar_predictor(
    order: int = 3, window: int = 64, *, warmup: int = 5
) -> ComposedPredictor:
    """The ``"ar"`` registry predictor: Markov types + AR(p) gap model.

    Same composition as the learned predictor, with the two-phase gap
    model replaced by a sliding-window autoregressive fit
    (:class:`~repro.predict.interarrival.ArInterarrival`) — better on
    streams whose cadence trends rather than repeats.
    """
    predictor = ComposedPredictor(
        ArInterarrival(order=order, window=window), warmup=warmup
    )
    predictor.name = "ar"
    return predictor


def make_seasonal_predictor(
    period: int = 8,
    alpha: float = 0.4,
    gamma: float = 0.3,
    *,
    warmup: int = 5,
) -> ComposedPredictor:
    """The ``"seasonal"`` registry predictor: Markov types + Holt-Winters gaps.

    The gap model
    (:class:`~repro.predict.interarrival.SeasonalInterarrival`) smooths
    a level plus a per-phase correction, tracking periodic arrival
    cadence the EWMA family averages away.
    """
    predictor = ComposedPredictor(
        SeasonalInterarrival(period=period, alpha=alpha, gamma=gamma),
        warmup=warmup,
    )
    predictor.name = "seasonal"
    return predictor
