"""Workload predictors.

The resource managers consume a
:class:`~repro.model.request.PredictedRequest` describing the next
expected request.  This package provides:

* :class:`~repro.predict.oracle.OraclePredictor` — perfect prediction
  (the paper's "predictor on" configuration);
* :class:`~repro.predict.base.NullPredictor` — no prediction
  ("predictor off");
* :class:`~repro.predict.noisy.TypeNoisePredictor` /
  :class:`~repro.predict.noisy.ArrivalNoisePredictor` — controlled
  degradation for the accuracy sweeps of Fig. 4;
* :class:`~repro.predict.markov.ComposedPredictor` — an actual online
  learned predictor (Markov type chain + two-phase inter-arrival model)
  in the spirit of the authors' prior work [12, 13];
* :func:`~repro.predict.metrics.evaluate_predictor` — type accuracy and
  normalised arrival error of any predictor over any trace.
"""

from repro.predict.base import NullPredictor, OnlinePredictor, Predictor
from repro.predict.interarrival import (
    EwmaInterarrival,
    InterarrivalModel,
    MeanInterarrival,
    TwoPhaseInterarrival,
)
from repro.predict.markov import (
    ComposedPredictor,
    MarkovTypePredictor,
    NGramTypePredictor,
)
from repro.predict.metrics import PredictionReport, evaluate_predictor
from repro.predict.noisy import ArrivalNoisePredictor, TypeNoisePredictor
from repro.predict.oracle import OraclePredictor
from repro.predict.scripted import ScriptedPredictor

__all__ = [
    "Predictor",
    "OnlinePredictor",
    "NullPredictor",
    "OraclePredictor",
    "TypeNoisePredictor",
    "ArrivalNoisePredictor",
    "MarkovTypePredictor",
    "NGramTypePredictor",
    "ComposedPredictor",
    "InterarrivalModel",
    "MeanInterarrival",
    "EwmaInterarrival",
    "TwoPhaseInterarrival",
    "ScriptedPredictor",
    "PredictionReport",
    "evaluate_predictor",
]
