"""Workload predictors.

The resource managers consume a
:class:`~repro.model.request.PredictedRequest` describing the next
expected request.  This package provides:

* :class:`~repro.predict.oracle.OraclePredictor` — perfect prediction
  (the paper's "predictor on" configuration);
* :class:`~repro.predict.base.NullPredictor` — no prediction
  ("predictor off");
* :class:`~repro.predict.noisy.TypeNoisePredictor` /
  :class:`~repro.predict.noisy.ArrivalNoisePredictor` — controlled
  degradation for the accuracy sweeps of Fig. 4;
* :class:`~repro.predict.markov.ComposedPredictor` — an actual online
  learned predictor (Markov type chain + two-phase inter-arrival model)
  in the spirit of the authors' prior work [12, 13], with
  :func:`~repro.predict.markov.make_ar_predictor` /
  :func:`~repro.predict.markov.make_seasonal_predictor` variants over
  AR(p) and Holt-Winters-seasonal gap models;
* :class:`~repro.predict.drift.DriftingPredictor` — the online-learning
  wrapper: Page-Hinkley + windowed-NRMSE drift detection, incremental
  retraining, fallback to the no-prediction path (DESIGN.md §16);
* :mod:`~repro.predict.demand` — per-task resource-demand time-series
  forecasting (:class:`~repro.predict.demand.DemandPredictor` with
  EWMA / Holt-Winters / AR(p) implementations) and the Lotaru-style
  :class:`~repro.predict.demand.LotaruRuntimeEstimator` for
  heterogeneous platforms;
* :func:`~repro.predict.metrics.evaluate_predictor` — type accuracy and
  normalised arrival error of any predictor over any trace.
"""

from repro.predict.base import NullPredictor, OnlinePredictor, Predictor
from repro.predict.demand import (
    ArDemandPredictor,
    DemandPredictor,
    EwmaDemandPredictor,
    HoltWintersDemandPredictor,
    LotaruRuntimeEstimator,
    demand_series,
    fit_ar_coefficients,
)
from repro.predict.drift import DriftingPredictor, PageHinkley, WindowedNrmse
from repro.predict.interarrival import (
    ArInterarrival,
    EwmaInterarrival,
    InterarrivalModel,
    MeanInterarrival,
    SeasonalInterarrival,
    TwoPhaseInterarrival,
)
from repro.predict.markov import (
    ComposedPredictor,
    MarkovTypePredictor,
    NGramTypePredictor,
    make_ar_predictor,
    make_seasonal_predictor,
)
from repro.predict.metrics import (
    PredictionReport,
    evaluate_predictor,
    nrmse,
    type_accuracy,
)
from repro.predict.noisy import ArrivalNoisePredictor, TypeNoisePredictor
from repro.predict.oracle import OraclePredictor
from repro.predict.scripted import ScriptedPredictor

__all__ = [
    "Predictor",
    "OnlinePredictor",
    "NullPredictor",
    "OraclePredictor",
    "TypeNoisePredictor",
    "ArrivalNoisePredictor",
    "MarkovTypePredictor",
    "NGramTypePredictor",
    "ComposedPredictor",
    "make_ar_predictor",
    "make_seasonal_predictor",
    "InterarrivalModel",
    "MeanInterarrival",
    "EwmaInterarrival",
    "TwoPhaseInterarrival",
    "ArInterarrival",
    "SeasonalInterarrival",
    "DriftingPredictor",
    "PageHinkley",
    "WindowedNrmse",
    "DemandPredictor",
    "EwmaDemandPredictor",
    "HoltWintersDemandPredictor",
    "ArDemandPredictor",
    "LotaruRuntimeEstimator",
    "demand_series",
    "fit_ar_coefficients",
    "ScriptedPredictor",
    "PredictionReport",
    "evaluate_predictor",
    "nrmse",
    "type_accuracy",
]
