"""Per-task resource-demand time-series forecasting.

The paper's predictor answers *which request comes next*; the related
work goes further — Elasecutor profiles each executor's **resource
demand vector over time** and schedules against the forecast, and
Lotaru estimates task runtimes on heterogeneous nodes it never profiled
by scaling a reference profile with a microbenchmark-derived node
factor (arXiv 2309.06918).  This module provides both families in pure
numpy (no new dependencies):

* :class:`DemandPredictor` — the interface: observe one demand vector
  (one value per resource) per step, forecast the next ``horizon``
  vectors.  Implementations are registered in
  :data:`repro.registry.DEMAND_PREDICTORS` beside the request
  predictors.
* :class:`EwmaDemandPredictor` — exponentially weighted level per
  resource (flat forecast).
* :class:`HoltWintersDemandPredictor` — Holt-Winters-style additive
  seasonal smoothing: a level plus a per-phase seasonal correction,
  which tracks periodic demand (batch windows, diurnal load).
* :class:`ArDemandPredictor` — an AR(p) model fitted per resource by
  ridge-regularised least squares over a sliding history window,
  rolled forward for multi-step forecasts.
* :class:`LotaruRuntimeEstimator` — the heterogeneity story: scale
  profiled per-resource runtimes by ``reference_score / node_score``.

Everything here is deterministic: the AR fit is a closed-form linear
solve, smoothing is a fold, and no module draws randomness.  (The
RPR001 lint taint pass is extended to ``repro.predict`` so an unseeded
generator sneaking into a fitter fails ``repro analyze``.)
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.model.task import NOT_EXECUTABLE, TaskType
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
)
from repro.workload.trace import Trace

__all__ = [
    "DemandPredictor",
    "EwmaDemandPredictor",
    "HoltWintersDemandPredictor",
    "ArDemandPredictor",
    "LotaruRuntimeEstimator",
    "demand_series",
    "fit_ar_coefficients",
]


def fit_ar_coefficients(
    series: Sequence[float] | np.ndarray,
    order: int,
    *,
    ridge: float = 1e-6,
) -> np.ndarray:
    """Fit AR(``order``) coefficients to a scalar series.

    Returns ``[intercept, c_1, ..., c_p]`` where ``c_1`` weights the
    most recent lag: the one-step forecast is
    ``intercept + sum(c_k * x[t - k])``.  The fit solves the
    ridge-regularised normal equations — a deterministic closed-form
    linear solve, unlike iterative or driver-dependent least squares.

    Requires at least ``order + 1`` samples (one usable regression row).
    """
    check_positive("order", order)
    check_non_negative("ridge", ridge)
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {values.shape}")
    if not np.all(np.isfinite(values)):
        raise ValueError("series must be finite")
    n_rows = values.size - order
    if n_rows < 1:
        raise ValueError(
            f"need at least order + 1 = {order + 1} samples to fit AR"
            f"({order}), got {values.size}"
        )
    # Row t regresses x[t] on [1, x[t-1], ..., x[t-p]].
    design = np.ones((n_rows, order + 1))
    for lag in range(1, order + 1):
        design[:, lag] = values[order - lag : order - lag + n_rows]
    target = values[order:]
    gram = design.T @ design + ridge * np.eye(order + 1)
    coefficients: np.ndarray = np.linalg.solve(gram, design.T @ target)
    return coefficients


def _predict_ar(coefficients: np.ndarray, recent: np.ndarray) -> float:
    """One-step AR forecast from ``recent`` (oldest first)."""
    order = coefficients.size - 1
    lags = recent[-order:][::-1]  # c_1 weights the newest sample
    return float(coefficients[0] + coefficients[1:] @ lags)


class DemandPredictor(abc.ABC):
    """Forecasts a per-resource demand vector over a horizon.

    One :meth:`observe` call per time step feeds the demand vector that
    materialised (e.g. the requested type's WCET per resource, or a
    measured utilisation sample); :meth:`forecast` returns the next
    ``horizon`` expected vectors as a ``(horizon, n_resources)`` array.

    The resource dimension is pinned by the first observation; every
    later vector must match it.
    """

    #: short identifier used in reports and the registry
    name: str = "demand"

    def __init__(self) -> None:
        self._n_resources: int | None = None
        self._observed = 0

    @property
    def n_resources(self) -> int | None:
        """Width of the demand vector (``None`` before any observation)."""
        return self._n_resources

    @property
    def observed(self) -> int:
        """Number of demand vectors observed so far."""
        return self._observed

    def reset(self) -> None:
        """Clear learned state before a new series."""
        self._n_resources = None
        self._observed = 0
        self._reset_state()

    def _reset_state(self) -> None:
        """Clear implementation state (override as needed)."""

    def observe(self, demand: Sequence[float] | np.ndarray) -> None:
        """Ingest one demand vector (one entry per resource, in order)."""
        vector = np.asarray(demand, dtype=float)
        if vector.ndim != 1 or vector.size == 0:
            raise ValueError(
                f"demand must be a non-empty 1-D vector, got shape "
                f"{vector.shape}"
            )
        if not np.all(np.isfinite(vector)) or np.any(vector < 0):
            raise ValueError("demand entries must be finite and >= 0")
        if self._n_resources is None:
            self._n_resources = vector.size
        elif vector.size != self._n_resources:
            raise ValueError(
                f"demand width changed: expected {self._n_resources} "
                f"resources, got {vector.size}"
            )
        self._observed += 1
        self._ingest(vector)

    @abc.abstractmethod
    def _ingest(self, vector: np.ndarray) -> None:
        """Fold one validated demand vector into the model."""

    @abc.abstractmethod
    def forecast(self, horizon: int = 1) -> np.ndarray:
        """The next ``horizon`` demand vectors, ``(horizon, n_resources)``.

        Raises :class:`ValueError` on ``horizon < 1``; before any
        observation the forecast is all zeros (nothing is known, and a
        non-negative demand floor is the safe default).
        """

    def _check_horizon(self, horizon: int) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class EwmaDemandPredictor(DemandPredictor):
    """Exponentially weighted level per resource; flat forecast."""

    name = "ewma"

    def __init__(self, alpha: float = 0.3) -> None:
        super().__init__()
        check_in_range("alpha", alpha, 0.0, 1.0, inclusive=True)
        if alpha == 0.0:
            raise ValueError("alpha must be > 0")
        self.alpha = alpha
        self._level: np.ndarray | None = None

    def _reset_state(self) -> None:
        self._level = None

    def _ingest(self, vector: np.ndarray) -> None:
        if self._level is None:
            self._level = vector.copy()
        else:
            self._level = self.alpha * vector + (1.0 - self.alpha) * self._level

    def forecast(self, horizon: int = 1) -> np.ndarray:
        self._check_horizon(horizon)
        if self._level is None:
            return np.zeros((horizon, self._n_resources or 1))
        return np.tile(self._level, (horizon, 1))


class HoltWintersDemandPredictor(DemandPredictor):
    """Additive seasonal smoothing: level plus per-phase correction.

    Parameters
    ----------
    period:
        Season length in steps; phase ``t % period`` indexes the
        seasonal correction.
    alpha:
        Level smoothing weight in ``(0, 1]``.
    gamma:
        Seasonal smoothing weight in ``(0, 1]``.

    Forecasts are clipped at zero — demand is non-negative by
    definition, and a strongly negative seasonal correction on a small
    level must not forecast negative work.
    """

    name = "holt-winters"

    def __init__(
        self, period: int = 8, alpha: float = 0.4, gamma: float = 0.3
    ) -> None:
        super().__init__()
        check_positive("period", period)
        check_in_range("alpha", alpha, 0.0, 1.0, inclusive=True)
        check_in_range("gamma", gamma, 0.0, 1.0, inclusive=True)
        if alpha == 0.0 or gamma == 0.0:
            raise ValueError("alpha and gamma must be > 0")
        self.period = period
        self.alpha = alpha
        self.gamma = gamma
        self._level: np.ndarray | None = None
        self._season: np.ndarray | None = None  # (period, n_resources)

    def _reset_state(self) -> None:
        self._level = None
        self._season = None

    def _ingest(self, vector: np.ndarray) -> None:
        if self._level is None or self._season is None:
            self._level = vector.copy()
            self._season = np.zeros((self.period, vector.size))
            return
        phase = (self._observed - 1) % self.period
        seasonal = self._season[phase].copy()
        self._level = (
            self.alpha * (vector - seasonal)
            + (1.0 - self.alpha) * self._level
        )
        self._season[phase] = (
            self.gamma * (vector - self._level) + (1.0 - self.gamma) * seasonal
        )

    def forecast(self, horizon: int = 1) -> np.ndarray:
        self._check_horizon(horizon)
        if self._level is None or self._season is None:
            return np.zeros((horizon, self._n_resources or 1))
        steps = np.empty((horizon, self._level.size))
        for step in range(horizon):
            phase = (self._observed + step) % self.period
            steps[step] = self._level + self._season[phase]
        return np.clip(steps, 0.0, None)


class ArDemandPredictor(DemandPredictor):
    """AR(p) per resource over a sliding history window.

    The fit (:func:`fit_ar_coefficients`) happens at forecast time over
    the retained window, so the forecast is a pure function of the
    observed history.  Multi-step forecasts roll the model forward on
    its own outputs.  With fewer than ``order + 1`` retained samples the
    predictor falls back to repeating the last observation (and to
    zeros before any observation).
    """

    name = "ar"

    def __init__(
        self, order: int = 3, window: int = 64, *, ridge: float = 1e-6
    ) -> None:
        super().__init__()
        check_positive("order", order)
        check_positive("window", window)
        check_non_negative("ridge", ridge)
        if window < order + 1:
            raise ValueError(
                f"window ({window}) must be >= order + 1 ({order + 1})"
            )
        self.order = order
        self.window = window
        self.ridge = ridge
        self._history: list[np.ndarray] = []

    def _reset_state(self) -> None:
        self._history.clear()

    def _ingest(self, vector: np.ndarray) -> None:
        self._history.append(vector.copy())
        if len(self._history) > self.window:
            del self._history[0]

    def forecast(self, horizon: int = 1) -> np.ndarray:
        self._check_horizon(horizon)
        if not self._history:
            return np.zeros((horizon, self._n_resources or 1))
        history = np.stack(self._history)  # (samples, n_resources)
        if history.shape[0] < self.order + 1:
            return np.tile(history[-1], (horizon, 1))
        forecastT = np.empty((history.shape[1], horizon))
        for resource in range(history.shape[1]):
            series = history[:, resource]
            coefficients = fit_ar_coefficients(
                series, self.order, ridge=self.ridge
            )
            rolling = series.copy()
            for step in range(horizon):
                value = max(_predict_ar(coefficients, rolling), 0.0)
                forecastT[resource, step] = value
                rolling = np.append(rolling, value)
        return forecastT.T


class LotaruRuntimeEstimator:
    """Scale profiled runtimes onto unprofiled heterogeneous nodes.

    Lotaru's local estimation: profile a task once on a *reference*
    node, run a quick microbenchmark on every node, and estimate the
    task's runtime on node ``n`` as
    ``profiled_runtime * reference_score / node_score`` — a node twice
    as fast (double score) halves the estimate.  Scores are throughput
    measures (work per second), one per resource of the platform.

    Parameters
    ----------
    reference_scores:
        Per-resource microbenchmark scores of the node the profile was
        taken on.
    node_scores:
        Per-resource scores of the target node (same length).
    """

    def __init__(
        self,
        reference_scores: Sequence[float],
        node_scores: Sequence[float],
    ) -> None:
        reference = np.asarray(reference_scores, dtype=float)
        node = np.asarray(node_scores, dtype=float)
        if reference.ndim != 1 or reference.size == 0:
            raise ValueError("reference_scores must be a non-empty 1-D vector")
        if node.shape != reference.shape:
            raise ValueError(
                f"score vectors must match: reference has {reference.size} "
                f"entries, node has {node.size}"
            )
        for label, scores in (
            ("reference", reference),
            ("node", node),
        ):
            if not np.all(np.isfinite(scores)) or np.any(scores <= 0):
                raise ValueError(
                    f"{label} scores must be finite and > 0"
                )
        self._factors = reference / node

    @property
    def factors(self) -> np.ndarray:
        """Per-resource runtime scale factors (``reference / node``)."""
        return self._factors.copy()

    def estimate(
        self, profiled_runtimes: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Scale a profiled per-resource runtime vector onto the node.

        ``inf`` entries (non-executable resources) pass through as
        ``inf``.
        """
        profiled = np.asarray(profiled_runtimes, dtype=float)
        if profiled.shape != self._factors.shape:
            raise ValueError(
                f"expected {self._factors.size} runtimes, got "
                f"{profiled.size}"
            )
        if np.any(np.isnan(profiled)) or np.any(profiled < 0):
            raise ValueError("profiled runtimes must be >= 0 (inf allowed)")
        return profiled * self._factors

    def estimate_task(self, task: TaskType) -> tuple[float, ...]:
        """The task's WCET vector rescaled onto the node.

        Non-executable resources stay :data:`NOT_EXECUTABLE`.
        """
        scaled = self.estimate(np.asarray(task.wcet, dtype=float))
        return tuple(
            NOT_EXECUTABLE if math.isinf(value) else float(value)
            for value in scaled
        )


def demand_series(trace: Trace) -> np.ndarray:
    """The trace's demand matrix: row ``j`` is request ``j``'s WCET vector.

    Non-executable resources contribute zero demand (no work can be
    placed there), which keeps the series finite for the forecasters.
    """
    rows = np.zeros((len(trace), trace.n_resources))
    for position, request in enumerate(trace):
        wcet = np.asarray(trace.tasks[request.type_id].wcet, dtype=float)
        rows[position] = np.where(np.isinf(wcet), 0.0, wcet)
    return rows
