"""Perfect prediction: the oracle.

The paper's "accurate prediction" configuration (Sec. 5.3): the predictor
knows the next request exactly — type, arrival time and deadline.  It is
implemented by peeking one step ahead in the trace, which is the whole
point: it upper-bounds what any real predictor could deliver.
"""

from __future__ import annotations

from repro.model.request import PredictedRequest
from repro.predict.base import Predictor
from repro.workload.trace import Trace

__all__ = ["OraclePredictor"]


class OraclePredictor(Predictor):
    """Returns the true next request of the trace."""

    name = "oracle"

    def predict(self, trace: Trace, index: int) -> PredictedRequest | None:
        requests = trace.requests
        if index < 0 or index >= len(requests):
            raise IndexError(f"request index {index} out of range")
        if index + 1 >= len(requests):
            return None
        nxt = requests[index + 1]
        return PredictedRequest(
            arrival=nxt.arrival, type_id=nxt.type_id, deadline=nxt.deadline
        )

    def predict_horizon(
        self, trace: Trace, index: int, horizon: int
    ) -> list[PredictedRequest]:
        """The true next ``horizon`` requests (as many as remain)."""
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if index < 0 or index >= len(trace):
            raise IndexError(f"request index {index} out of range")
        upcoming = trace.requests[index + 1 : index + 1 + horizon]
        return [
            PredictedRequest(
                arrival=r.arrival, type_id=r.type_id, deadline=r.deadline
            )
            for r in upcoming
        ]
