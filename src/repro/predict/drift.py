"""Drift detection and the online-learning drift wrapper.

A learned predictor trained on one workload regime silently decays when
the stream shifts (new request mix, new arrival process).  This module
adds the standard remedy from the online-learning literature:

* :class:`PageHinkley` — the Page-Hinkley cumulative-deviation test over
  a scalar error stream; fires when the stream's recent mean rises
  persistently above its running mean.
* :class:`WindowedNrmse` — a sliding-window RMS error threshold; fires
  when the normalised forecast error over the last ``window`` scored
  forecasts exceeds a budget.
* :class:`DriftingPredictor` — an :class:`~repro.predict.base.Predictor`
  wrapper that scores every forecast of a wrapped *online* base
  predictor against the request that actually arrived, feeds the error
  into both detectors, and reacts to a detection by **retraining**
  (dropping the stale model and relearning from the post-shift stream
  only) up to ``retrain_budget`` times, after which it **falls back** to
  the no-prediction path (:class:`~repro.predict.base.NullPredictor`
  behaviour) for the rest of the stream.

Every reaction is surfaced as a ``(kind, detail)`` event through
:meth:`DriftingPredictor.drain_events` — the same duck-typed drain
protocol the :class:`~repro.faults.watchdog.SolverWatchdog` uses — so
the simulator records :class:`~repro.faults.events.DegradationEvent`\\ s
and the live engine counts them in its metrics.

Both detectors and the wrapper are **pure deterministic folds over the
observed stream**: no randomness, no wall-clock reads.  That is what
makes a drift-triggered fallback replay bit-identically through the
admission journal (DESIGN.md §15) — a recovered engine re-observes the
same prefix and reaches the same detector state, retrain count and
fallback flag.
"""

from __future__ import annotations

import collections
import math
from typing import Sequence

from repro.model.request import PredictedRequest, Request
from repro.predict.base import OnlinePredictor
from repro.predict.markov import ComposedPredictor
from repro.util.validation import check_non_negative, check_positive

__all__ = ["PageHinkley", "WindowedNrmse", "DriftingPredictor"]


class PageHinkley:
    """Page-Hinkley test for an upward shift in a scalar error stream.

    Maintains the running mean of all inputs and the cumulative sum of
    deviations ``m_t = sum(x_i - mean_i - delta)``; drift is signalled
    when ``m_t`` rises more than ``threshold`` above its historical
    minimum.  ``delta`` is the magnitude of change tolerated without
    firing, ``min_samples`` suppresses detections before the mean has
    stabilised.

    The test is a deterministic fold over its inputs: same stream, same
    verdicts — a property the admission-journal replay relies on.
    """

    def __init__(
        self,
        *,
        delta: float = 0.05,
        threshold: float = 4.0,
        min_samples: int = 8,
    ) -> None:
        check_non_negative("delta", delta)
        check_positive("threshold", threshold)
        check_positive("min_samples", min_samples)
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def reset(self) -> None:
        """Forget the error history (after a retrain)."""
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    @property
    def statistic(self) -> float:
        """The current test statistic ``m_t - min(m)`` (>= 0)."""
        return self._cumulative - self._minimum

    def update(self, value: float) -> bool:
        """Ingest one error sample; ``True`` when drift is detected."""
        if not math.isfinite(value):
            raise ValueError(f"error sample must be finite, got {value}")
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._count < self.min_samples:
            return False
        return self.statistic > self.threshold


class WindowedNrmse:
    """RMS error over a sliding window, against a fixed threshold.

    The inputs are already-normalised forecast errors (see
    :meth:`DriftingPredictor._score`); the detector fires when the RMS
    over the last ``window`` samples exceeds ``threshold`` and at least
    ``min_samples`` samples have been scored since the last reset.
    """

    def __init__(
        self,
        *,
        window: int = 32,
        threshold: float = 2.5,
        min_samples: int = 8,
    ) -> None:
        check_positive("window", window)
        check_positive("threshold", threshold)
        check_positive("min_samples", min_samples)
        if min_samples > window:
            raise ValueError(
                f"min_samples ({min_samples}) must be <= window ({window})"
            )
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self._squares: collections.deque[float] = collections.deque(
            maxlen=window
        )

    def reset(self) -> None:
        """Forget the error window (after a retrain)."""
        self._squares.clear()

    @property
    def value(self) -> float:
        """The current windowed RMS error (0.0 while empty)."""
        if not self._squares:
            return 0.0
        return math.sqrt(sum(self._squares) / len(self._squares))

    def update(self, error: float) -> bool:
        """Ingest one error sample; ``True`` when the RMS exceeds budget."""
        if not math.isfinite(error):
            raise ValueError(f"error sample must be finite, got {error}")
        self._squares.append(error * error)
        if len(self._squares) < self.min_samples:
            return False
        return self.value > self.threshold


class DriftingPredictor(OnlinePredictor):
    """Online-learning wrapper: score, detect drift, retrain, fall back.

    Wraps an :class:`~repro.predict.base.OnlinePredictor` (the composed
    learned predictor by default).  Each arrived request first settles
    the forecast made for it: the normalised arrival error plus a unit
    penalty for a type miss feeds both drift detectors.  On detection:

    * while the retrain budget lasts, the base model is dropped and
      relearns **from the post-shift stream only** (its internal state
      is reset; it is never re-fed the stale prefix), and both detectors
      restart;
    * once the budget is exhausted, the wrapper permanently degrades to
      the no-prediction path — ``predict`` returns ``None`` for the rest
      of the stream, exactly the :class:`NullPredictor` behaviour the
      resource manager already plans without.

    Reactions are queued as ``(kind, detail)`` pairs — kinds are
    registered in :data:`repro.faults.events.DEGRADATION_KINDS` — and
    collected by the simulator / live engine via :meth:`drain_events`.

    The wrapper (detectors included) is a pure deterministic fold over
    the observed prefix of the stream: no RNG, no clock.  Causality is
    inherited from :class:`OnlinePredictor` — the future of the trace is
    never read.
    """

    name = "drift"

    def __init__(
        self,
        base: OnlinePredictor | None = None,
        *,
        delta: float = 0.05,
        threshold: float = 4.0,
        nrmse_window: int = 32,
        nrmse_threshold: float = 2.5,
        min_samples: int = 8,
        retrain_budget: int = 2,
    ) -> None:
        super().__init__()
        if base is None:
            base = ComposedPredictor()
        if not isinstance(base, OnlinePredictor):
            raise TypeError(
                "DriftingPredictor requires an OnlinePredictor base (it "
                f"feeds observations directly), got {type(base).__name__}"
            )
        check_non_negative("retrain_budget", retrain_budget)
        self.retrain_budget = retrain_budget
        self._base = base
        self._page_hinkley = PageHinkley(
            delta=delta, threshold=threshold, min_samples=min_samples
        )
        self._nrmse = WindowedNrmse(
            window=nrmse_window,
            threshold=nrmse_threshold,
            min_samples=min_samples,
        )
        self._pending: PredictedRequest | None = None
        self._fallen_back = False
        self._retrains = 0
        self._scored = 0
        self._events: list[tuple[str, str]] = []
        self._gap_total = 0.0
        self._gap_count = 0
        self._last_arrival: float | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def fallen_back(self) -> bool:
        """Whether the wrapper degraded to the no-prediction path."""
        return self._fallen_back

    @property
    def retrains(self) -> int:
        """Retrains performed so far (capped by ``retrain_budget``)."""
        return self._retrains

    def drain_events(self) -> list[tuple[str, str]]:
        """Pop queued ``(kind, detail)`` degradation events.

        The same drain protocol as
        :meth:`repro.faults.watchdog.SolverWatchdog.drain_events`; the
        simulator turns them into
        :class:`~repro.faults.events.DegradationEvent` records, the live
        engine into metrics counters.
        """
        events, self._events = self._events, []
        return events

    # ------------------------------------------------------------------
    # OnlinePredictor protocol
    # ------------------------------------------------------------------

    def _reset_state(self) -> None:
        self._base.reset()
        self._page_hinkley.reset()
        self._nrmse.reset()
        self._pending = None
        self._fallen_back = False
        self._retrains = 0
        self._scored = 0
        self._events.clear()
        self._gap_total = 0.0
        self._gap_count = 0
        self._last_arrival = None

    def observe(self, request: Request) -> None:
        pending, self._pending = self._pending, None
        if pending is not None and not self._fallen_back:
            error = self._score(pending, request)
            self._scored += 1
            # Evaluate both detectors unconditionally so their state
            # advances in lockstep regardless of which one fires.
            ph_fired = self._page_hinkley.update(error)
            rms_fired = self._nrmse.update(error)
            if ph_fired or rms_fired:
                self._on_drift(
                    "page-hinkley" if ph_fired else "windowed-nrmse", error
                )
        if self._last_arrival is not None:
            self._gap_total += request.arrival - self._last_arrival
            self._gap_count += 1
        self._last_arrival = request.arrival
        if not self._fallen_back:
            self._base.observe(request)

    def forecast(self, history: Sequence[Request]) -> PredictedRequest | None:
        if self._fallen_back:
            return None
        forecast = self._base.forecast(history)
        self._pending = forecast
        return forecast

    # ------------------------------------------------------------------
    # Scoring and the drift state machine
    # ------------------------------------------------------------------

    def _score(self, forecast: PredictedRequest, actual: Request) -> float:
        """Normalised error of one settled forecast.

        Arrival error is normalised by the running mean inter-arrival
        gap of the *observed past* (1.0 before any gap exists), and a
        type miss adds a unit penalty — the same two quality measures
        :func:`repro.predict.metrics.evaluate_predictor` reports.
        """
        norm = (
            self._gap_total / self._gap_count if self._gap_count > 0 else 1.0
        )
        if norm <= 0:
            norm = 1.0
        error = abs(forecast.arrival - actual.arrival) / norm
        if forecast.type_id != actual.type_id:
            error += 1.0
        return error

    def _on_drift(self, detector: str, error: float) -> None:
        self._events.append(
            (
                "predictor-drift",
                f"{detector} fired at error {error:.3g} after "
                f"{self._scored} scored forecasts",
            )
        )
        if self._retrains >= self.retrain_budget:
            self._fallen_back = True
            # The base model is never consulted again; drop its state so
            # a fallen-back wrapper carries no stale tables around.
            self._base.reset()
            self._events.append(
                (
                    "predictor-fallback",
                    f"retrain budget {self.retrain_budget} exhausted; "
                    "degraded to the no-prediction path",
                )
            )
            return
        self._retrains += 1
        self._base.reset()
        self._page_hinkley.reset()
        self._nrmse.reset()
        self._scored = 0
        self._events.append(
            (
                "predictor-retrain",
                f"retrain {self._retrains}/{self.retrain_budget}: model "
                "relearns from the post-shift stream",
            )
        )
