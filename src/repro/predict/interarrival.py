"""Online inter-arrival time models.

Lightweight next-gap estimators in the spirit of the authors' prior work
on inter-arrival prediction for runtime resource management [12]: small
state, O(1) updates, usable inside an RM activation.

Three models are provided:

* :class:`MeanInterarrival` — running mean of all gaps;
* :class:`EwmaInterarrival` — exponentially weighted moving average;
* :class:`TwoPhaseInterarrival` — a two-phase scheme: phase one matches
  the recent (quantised) gap history against a learned pattern table;
  phase two falls back to an EWMA when the pattern is unknown.  This
  mirrors the structure of the two-phase predictor of [12]: exploit
  repeating patterns when present, degrade gracefully to smoothing when
  not.

Two time-series models back the richer predictors of the online
learning suite (DESIGN.md §16):

* :class:`ArInterarrival` — an AR(p) fit over a sliding gap window
  (closed-form ridge least squares, :mod:`repro.predict.demand`);
* :class:`SeasonalInterarrival` — Holt-Winters-style additive seasonal
  smoothing of the gap sequence, for workloads with periodic cadence.
"""

from __future__ import annotations

import abc
import collections

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "InterarrivalModel",
    "MeanInterarrival",
    "EwmaInterarrival",
    "TwoPhaseInterarrival",
    "ArInterarrival",
    "SeasonalInterarrival",
]


class InterarrivalModel(abc.ABC):
    """Online estimator of the next inter-arrival gap."""

    @abc.abstractmethod
    def update(self, gap: float) -> None:
        """Ingest one observed gap (in arrival order)."""

    @abc.abstractmethod
    def forecast(self) -> float | None:
        """Estimate the next gap; ``None`` before any observation."""

    def reset(self) -> None:
        """Clear learned state."""


class MeanInterarrival(InterarrivalModel):
    """Running mean of all observed gaps."""

    def __init__(self) -> None:
        self._count = 0
        self._total = 0.0

    def reset(self) -> None:
        self._count = 0
        self._total = 0.0

    def update(self, gap: float) -> None:
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        self._count += 1
        self._total += gap

    def forecast(self) -> float | None:
        if self._count == 0:
            return None
        return self._total / self._count


class EwmaInterarrival(InterarrivalModel):
    """Exponentially weighted moving average of gaps.

    Parameters
    ----------
    alpha:
        Smoothing weight of the newest observation, in ``(0, 1]``.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        check_in_range("alpha", alpha, 0.0, 1.0, inclusive=True)
        if alpha == 0.0:
            raise ValueError("alpha must be > 0")
        self.alpha = alpha
        self._value: float | None = None

    def reset(self) -> None:
        self._value = None

    def update(self, gap: float) -> None:
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        if self._value is None:
            self._value = gap
        else:
            self._value = self.alpha * gap + (1.0 - self.alpha) * self._value

    def forecast(self) -> float | None:
        return self._value


class TwoPhaseInterarrival(InterarrivalModel):
    """Pattern table over quantised gaps, with an EWMA fallback.

    Gaps are quantised to ``resolution``-sized bins.  The model keeps,
    for every ``context_length``-gram of recent bins, a histogram of the
    bin that followed; the forecast is the centre of the most frequent
    successor bin.  When the current context has never been seen (or the
    history is too short), the EWMA fallback answers instead.

    Parameters
    ----------
    context_length:
        Number of recent gaps forming the lookup key.
    resolution:
        Bin width of the quantisation, as a fraction of the running mean
        gap (adaptive, so the table works across time scales).
    fallback_alpha:
        EWMA weight of the phase-two fallback.
    """

    def __init__(
        self,
        context_length: int = 3,
        resolution: float = 0.25,
        fallback_alpha: float = 0.3,
    ) -> None:
        check_positive("context_length", context_length)
        check_positive("resolution", resolution)
        self.context_length = context_length
        self.resolution = resolution
        self._fallback = EwmaInterarrival(fallback_alpha)
        self._mean = MeanInterarrival()
        self._recent: collections.deque[int] = collections.deque(
            maxlen=context_length
        )
        self._table: dict[tuple[int, ...], collections.Counter] = {}
        # Cached ``min((-count, bin))`` per context, kept exact
        # incrementally: counts only grow, so the stored best stays
        # valid until the incremented bin beats (or is) it.
        self._table_best: dict[tuple[int, ...], tuple[int, int]] = {}

    def reset(self) -> None:
        self._fallback.reset()
        self._mean.reset()
        self._recent.clear()
        self._table.clear()
        self._table_best.clear()

    def _bin_of(self, gap: float) -> int:
        mean = self._mean.forecast() or gap or 1.0
        width = max(self.resolution * mean, 1e-12)
        return int(gap / width)

    def _bin_centre(self, bin_index: int) -> float:
        mean = self._mean.forecast() or 1.0
        width = max(self.resolution * mean, 1e-12)
        return (bin_index + 0.5) * width

    def update(self, gap: float) -> None:
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        new_bin = self._bin_of(gap)
        if len(self._recent) == self.context_length:
            key = tuple(self._recent)
            histogram = self._table.setdefault(key, collections.Counter())
            histogram[new_bin] += 1
            # Most frequent successor bin; ties to the smaller bin so
            # the forecast is deterministic.
            candidate = (-histogram[new_bin], new_bin)
            best = self._table_best.get(key)
            if best is None or candidate < best or best[1] == new_bin:
                self._table_best[key] = candidate
        self._recent.append(new_bin)
        self._fallback.update(gap)
        self._mean.update(gap)

    def forecast(self) -> float | None:
        if len(self._recent) == self.context_length:
            best = self._table_best.get(tuple(self._recent))
            if best is not None:
                return self._bin_centre(best[1])
        return self._fallback.forecast()

    @property
    def table_size(self) -> int:
        """Number of learned contexts (diagnostics)."""
        return len(self._table)


class ArInterarrival(InterarrivalModel):
    """AR(p) over the recent gap history.

    Keeps the last ``window`` gaps; the forecast fits AR(``order``)
    coefficients by closed-form ridge least squares
    (:func:`repro.predict.demand.fit_ar_coefficients`) and extrapolates
    one step, clamped at zero.  With fewer than ``order + 1`` retained
    gaps it degrades to the running mean of what it has; with none it
    abstains.
    """

    def __init__(
        self, order: int = 3, window: int = 64, *, ridge: float = 1e-6
    ) -> None:
        check_positive("order", order)
        check_positive("window", window)
        check_non_negative("ridge", ridge)
        if window < order + 1:
            raise ValueError(
                f"window ({window}) must be >= order + 1 ({order + 1})"
            )
        self.order = order
        self.window = window
        self.ridge = ridge
        self._gaps: collections.deque[float] = collections.deque(maxlen=window)

    def reset(self) -> None:
        self._gaps.clear()

    def update(self, gap: float) -> None:
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        self._gaps.append(gap)

    def forecast(self) -> float | None:
        # Imported lazily to keep module import costs flat for callers
        # that never touch the AR model (numpy-free paths).
        from repro.predict.demand import fit_ar_coefficients, _predict_ar

        import numpy as np

        if not self._gaps:
            return None
        if len(self._gaps) < self.order + 1:
            return sum(self._gaps) / len(self._gaps)
        series = np.asarray(self._gaps, dtype=float)
        coefficients = fit_ar_coefficients(
            series, self.order, ridge=self.ridge
        )
        return max(_predict_ar(coefficients, series), 0.0)


class SeasonalInterarrival(InterarrivalModel):
    """Holt-Winters-style additive seasonal smoothing of the gaps.

    A scalar level plus a per-phase seasonal correction of length
    ``period``; phase is the observation count modulo the period.
    Forecasts are clamped at zero.
    """

    def __init__(
        self, period: int = 8, alpha: float = 0.4, gamma: float = 0.3
    ) -> None:
        check_positive("period", period)
        check_in_range("alpha", alpha, 0.0, 1.0, inclusive=True)
        check_in_range("gamma", gamma, 0.0, 1.0, inclusive=True)
        if alpha == 0.0 or gamma == 0.0:
            raise ValueError("alpha and gamma must be > 0")
        self.period = period
        self.alpha = alpha
        self.gamma = gamma
        self._level: float | None = None
        self._season: list[float] = [0.0] * period
        self._count = 0

    def reset(self) -> None:
        self._level = None
        self._season = [0.0] * self.period
        self._count = 0

    def update(self, gap: float) -> None:
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        if self._level is None:
            self._level = gap
            self._count = 1
            return
        phase = self._count % self.period
        seasonal = self._season[phase]
        self._level = (
            self.alpha * (gap - seasonal) + (1.0 - self.alpha) * self._level
        )
        self._season[phase] = (
            self.gamma * (gap - self._level) + (1.0 - self.gamma) * seasonal
        )
        self._count += 1

    def forecast(self) -> float | None:
        if self._level is None:
            return None
        phase = self._count % self.period
        return max(self._level + self._season[phase], 0.0)
