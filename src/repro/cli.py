"""Command-line interface.

Nine subcommands cover the library's main entry points without writing
Python::

    python -m repro generate --group VT --traces 3 --requests 200 --out traces/
    python -m repro simulate traces/vt_000.json --strategy heuristic \
        --predictor oracle --overhead 0.05
    python -m repro experiment fig2 --traces 5 --requests 120
    python -m repro evaluate traces/vt_000.json --predictor learned
    python -m repro predict --frontier --csv frontier.csv
    python -m repro bench --out BENCH.json  # deterministic perf suite
    python -m repro analyze --self          # lint the repro package
    python -m repro analyze --smoke         # verified smoke simulation
    python -m repro analyze traces/vt_000.json --strategy milp
    python -m repro faults --smoke          # verified fault-injection grid
    python -m repro faults --sweep          # fault-sensitivity experiment
    python -m repro obs traces/vt_000.json --export-chrome trace.json \
        --summary                           # structured tracing + metrics
    python -m repro serve --port 8787       # live admission daemon
    python -m repro serve --smoke           # CI smoke pass of the daemon

All randomness is controlled by ``--seed``; outputs are plain text (and
JSON where noted) so runs are scriptable and diffable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.config import HarnessScale
from repro.experiments.executor import ParallelConfig
from repro.registry import (
    kernel_names,
    predictor_names,
    resolve_predictor,
    resolve_strategy,
    strategy_names,
)
from repro.sim.simulator import SimulationConfig, simulate
from repro.model.platform import Platform
from repro.predict.metrics import evaluate_predictor
from repro.util.rng import RngStreams
from repro.workload.taskgen import generate_task_set
from repro.workload.trace import Trace
from repro.workload.tracegen import DeadlineGroup, TraceConfig, generate_trace

__all__ = ["main", "build_parser"]

#: Predictors whose constructors take the CLI's --accuracy/--seed knobs.
_NOISE_PREDICTORS = ("type-noise", "arrival-noise")


def _jobs_count(text: str) -> int:
    """argparse type for --jobs: a non-negative worker count."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all cores; 1 = serial), got {value}"
        )
    return value


def _cli_predictor(name: str, accuracy: float, seed: int):
    """Resolve a predictor name, wiring in the noise knobs where they
    apply."""
    if name in _NOISE_PREDICTORS:
        return resolve_predictor(name, accuracy=accuracy, seed=seed)
    return resolve_predictor(name)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for shell-completion tools
    and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Runtime Resource Management with Workload "
            "Prediction' (DAC 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate workload traces")
    gen.add_argument("--group", choices=["VT", "LT"], default="VT")
    gen.add_argument("--traces", type=int, default=1)
    gen.add_argument("--requests", type=int, default=500)
    gen.add_argument("--cpus", type=int, default=5)
    gen.add_argument("--gpus", type=int, default=1)
    gen.add_argument("--arrival-scale", type=float, default=None)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", type=Path, required=True,
                     help="output directory for trace JSON files")

    run = sub.add_parser("simulate", help="replay a trace through an RM")
    run.add_argument("trace", type=Path, help="trace JSON file")
    run.add_argument("--cpus", type=int, default=5)
    run.add_argument("--gpus", type=int, default=1)
    run.add_argument(
        "--strategy", choices=strategy_names(), default="heuristic"
    )
    run.add_argument(
        "--predictor", choices=predictor_names(), default="off"
    )
    run.add_argument("--accuracy", type=float, default=0.75,
                     help="accuracy level for the noise predictors")
    run.add_argument("--overhead", type=float, default=0.0,
                     help="prediction overhead (absolute time units)")
    run.add_argument("--lookahead", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--shards", type=int, default=1,
                     help="split the trace at idle points and simulate "
                     "the shards independently (bit-identical to serial)")
    run.add_argument("--kernel", choices=kernel_names(), default=None,
                     help="event-core kernel (default: registry default; "
                     "'vector' falls back per-segment where its proof "
                     "does not apply)")
    run.add_argument("--json", action="store_true",
                     help="emit the result summary as JSON")

    exp = sub.add_parser("experiment", help="regenerate a paper artefact")
    exp.add_argument(
        "id",
        choices=["fig2", "fig3", "fig4", "fig5", "sec52", "motivational",
                 "all"],
    )
    exp.add_argument("--traces", type=int, default=5)
    exp.add_argument("--requests", type=int, default=120)
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--jobs", type=_jobs_count, default=1,
                     help="worker processes for the experiment matrix "
                     "(0 = all cores; 1 = serial)")
    exp.add_argument("--out", type=Path, default=None,
                     help="directory for the full report (id = all)")

    ev = sub.add_parser("evaluate", help="score a predictor on a trace")
    ev.add_argument("trace", type=Path)
    ev.add_argument(
        "--predictor",
        choices=[name for name in predictor_names() if name != "off"],
        default="learned",
    )
    ev.add_argument("--accuracy", type=float, default=0.75)
    ev.add_argument("--seed", type=int, default=0)

    pred = sub.add_parser(
        "predict",
        help="online predictor suite: drift frontier experiment",
        description=(
            "Entry point of the online-learning predictor suite "
            "(repro.predict, DESIGN.md §16).  --frontier runs the E8 "
            "accuracy-vs-energy frontier: every registered online "
            "predictor earns its own accuracy on drift-perturbed "
            "traces, and the resulting (accuracy, energy, rejection) "
            "cells are printed as one table per drift scenario — "
            "optionally written as deterministic CSV with --csv."
        ),
    )
    pred.add_argument("--frontier", action="store_true",
                      help="run the E8 accuracy-vs-energy frontier")
    pred.add_argument("--traces", type=int, default=4,
                      help="frontier: traces per cell")
    pred.add_argument("--requests", type=int, default=100,
                      help="frontier: requests per trace")
    pred.add_argument("--seed", type=int, default=0)
    pred.add_argument(
        "--strategy", choices=strategy_names(), default="heuristic"
    )
    pred.add_argument("--group", choices=["VT", "LT"], default="VT")
    pred.add_argument("--jobs", type=_jobs_count, default=1,
                      help="worker processes for the frontier matrix "
                      "(0 = all cores; 1 = serial)")
    pred.add_argument("--csv", type=Path, default=None, metavar="PATH",
                      help="also write the frontier as CSV here")
    pred.add_argument("--json", action="store_true",
                      help="emit the frontier cells as JSON")

    bench = sub.add_parser(
        "bench",
        help="run the deterministic performance benchmarks",
        description=(
            "Time the simulation core's hot paths (EDF timelines, "
            "heuristic admission, predictor updates, the simulator "
            "event loop, and the fig2-scale macro grid) on fixed-seed "
            "workloads and emit a machine-readable BENCH_*.json "
            "trajectory file.  With --baseline the speedup ratios are "
            "embedded in the output, and --fail-threshold turns any "
            "ratio below the bar into a nonzero exit (perf regression "
            "gate)."
        ),
    )
    bench.add_argument("--traces", type=int, default=2,
                       help="macro grid: traces per spec")
    bench.add_argument("--requests", type=int, default=120,
                       help="requests per trace")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--group", choices=["VT", "LT"], default="VT")
    bench.add_argument("--repeats", type=int, default=5,
                       help="timed repetitions per benchmark")
    bench.add_argument("--scenario", choices=["default", "huge"],
                       default="default",
                       help="'huge' swaps sim_loop for the 10^7-request "
                       "idle-point trace through the vector kernel and "
                       "runs only the scaling benchmarks")
    bench.add_argument("--scenario-events", type=int, default=10_000_000,
                       metavar="N",
                       help="requests in the huge-scenario trace")
    bench.add_argument("--only", nargs="+", default=None, metavar="NAME",
                       help="run only the named benchmarks")
    bench.add_argument("--no-alloc", action="store_true",
                       help="skip the tracemalloc allocation pass")
    bench.add_argument("--out", type=Path, default=None,
                       help="write the BENCH_*.json payload here")
    bench.add_argument("--baseline", type=Path, default=None,
                       help="previous BENCH_*.json to compare against "
                       "(embedded into the output)")
    bench.add_argument("--fail-threshold", type=float, default=None,
                       metavar="RATIO",
                       help="exit 1 if any benchmark's events/sec falls "
                       "below RATIO x the baseline's")
    bench.add_argument("--json", action="store_true",
                       help="print the full payload as JSON")

    an = sub.add_parser(
        "analyze",
        help="static lint / schedule-invariant verification",
        description=(
            "Static analysis entry point: lint the repo's own sources "
            "(--self), lint arbitrary files (--lint), run a verified "
            "smoke simulation (--smoke), or replay one trace with the "
            "schedule-invariant verifier armed (positional TRACE).  "
            "Exits 1 on any lint finding or invariant violation."
        ),
    )
    an.add_argument(
        "trace", type=Path, nargs="?", default=None,
        help="trace JSON file to simulate with verification on",
    )
    an.add_argument(
        "--self", dest="self_lint", action="store_true",
        help="run the custom lint rules over the installed repro package",
    )
    an.add_argument(
        "--lint", type=Path, nargs="+", default=None, metavar="PATH",
        help="lint specific files or directories",
    )
    an.add_argument(
        "--rules", default=None, metavar="SELECTORS",
        help="comma-separated rule ids or family prefixes to enable "
        "(e.g. 'RPR001,RPR10' for seeding + the async family); "
        "default: all rules",
    )
    an.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help="baseline-suppression file of justified findings "
        "(with --self, defaults to the repo's analysis-baseline.txt "
        "when present).  Unused entries fail the run.",
    )
    an.add_argument(
        "--smoke", action="store_true",
        help="run the verified fig2-shaped smoke grid",
    )
    an.add_argument("--traces", type=int, default=2,
                    help="smoke grid: traces per cell")
    an.add_argument("--requests", type=int, default=40,
                    help="smoke grid: requests per trace")
    an.add_argument("--group", choices=["VT", "LT"], default="VT",
                    help="smoke grid: deadline group")
    an.add_argument("--cpus", type=int, default=5)
    an.add_argument("--gpus", type=int, default=1)
    an.add_argument(
        "--strategy", choices=strategy_names(), default="heuristic"
    )
    an.add_argument(
        "--predictor", choices=predictor_names(), default="off"
    )
    an.add_argument("--accuracy", type=float, default=0.75)
    an.add_argument("--overhead", type=float, default=0.0)
    an.add_argument("--lookahead", type=int, default=1)
    an.add_argument("--seed", type=int, default=0)
    an.add_argument("--json", action="store_true",
                    help="emit findings / the verification report as JSON")

    fl = sub.add_parser(
        "faults",
        help="fault injection: verified smoke grid / sensitivity sweep",
        description=(
            "Deterministic fault injection (see repro.faults): --smoke "
            "runs canonical fault scenarios (outages, predictor faults, "
            "solver faults) with the fault-aware schedule verifier armed "
            "and exits 1 on any violation; --sweep measures how "
            "rejection/energy respond to increasing outage and "
            "predictor-failure rates."
        ),
    )
    fl.add_argument("--smoke", action="store_true",
                    help="run the verified fault-scenario grid")
    fl.add_argument("--sweep", action="store_true",
                    help="run the fault-sensitivity sweep")
    fl.add_argument("--traces", type=int, default=2,
                    help="traces per cell")
    fl.add_argument("--requests", type=int, default=40,
                    help="requests per trace")
    fl.add_argument("--group", choices=["VT", "LT"], default="VT")
    fl.add_argument(
        "--strategy", choices=strategy_names(), default="heuristic"
    )
    fl.add_argument(
        "--predictor", choices=predictor_names(), default="oracle",
        help="predictor for the sweep ('off' disables prediction)"
    )
    fl.add_argument("--outage-grid", type=float, nargs="+",
                    default=[0.0, 1.0, 2.0], metavar="N",
                    help="sweep: expected outage windows per trace")
    fl.add_argument("--predictor-fault-grid", type=float, nargs="+",
                    default=[0.0, 1.0, 2.0], metavar="N",
                    help="sweep: expected predictor fault windows per trace")
    fl.add_argument("--seed", type=int, default=0,
                    help="master seed of traces and fault plans")
    fl.add_argument("--json", action="store_true",
                    help="emit the report as JSON")
    fl.add_argument("--out", type=Path, default=None,
                    help="also write the JSON report to this file")

    obs = sub.add_parser(
        "obs",
        help="structured tracing: event stream, metrics, Chrome trace",
        description=(
            "Replay one trace with the observability layer armed "
            "(repro.obs, DESIGN.md §11): collect the structured event "
            "stream and metrics registry, print event counts and the "
            "deterministic stream digest, and optionally export the "
            "events as canonical JSONL (--export-jsonl) or as a Chrome "
            "trace_event JSON (--export-chrome) viewable in Perfetto "
            "(https://ui.perfetto.dev) or chrome://tracing."
        ),
    )
    obs.add_argument("trace", type=Path, help="trace JSON file")
    obs.add_argument("--cpus", type=int, default=5)
    obs.add_argument("--gpus", type=int, default=1)
    obs.add_argument(
        "--strategy", choices=strategy_names(), default="heuristic"
    )
    obs.add_argument(
        "--predictor", choices=predictor_names(), default="off"
    )
    obs.add_argument("--accuracy", type=float, default=0.75,
                     help="accuracy level for the noise predictors")
    obs.add_argument("--overhead", type=float, default=0.0,
                     help="prediction overhead (absolute time units)")
    obs.add_argument("--lookahead", type=int, default=1)
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--export-chrome", type=Path, default=None,
                     metavar="PATH",
                     help="write a Chrome trace_event JSON here")
    obs.add_argument("--export-jsonl", type=Path, default=None,
                     metavar="PATH",
                     help="write the canonical event stream as JSONL here")
    obs.add_argument("--include-volatile", action="store_true",
                     help="keep wall-clock fields in the JSONL export "
                     "(breaks byte-reproducibility)")
    obs.add_argument("--summary", action="store_true",
                     help="print the metrics summary")
    obs.add_argument("--json", action="store_true",
                     help="emit digest, counts, and metrics as JSON")

    srv = sub.add_parser(
        "serve",
        help="run the live admission daemon (repro.serve)",
        description=(
            "Boot the online resource-management service (DESIGN.md "
            "§12): an asyncio daemon admitting per-tenant request "
            "streams over a newline-delimited-JSON socket protocol, "
            "with live metrics on the same port via GET /metrics.  "
            "--smoke instead runs the self-contained smoke pass "
            "(boot, drive a seeded workload, scrape metrics, clean "
            "shutdown) and prints the throughput report."
        ),
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8787,
                     help="listen port (0 picks a free port)")
    srv.add_argument("--cpus", type=int, default=5)
    srv.add_argument("--gpus", type=int, default=1)
    srv.add_argument("--tasks", type=int, default=20,
                     help="task types in the service catalog")
    srv.add_argument(
        "--strategy", choices=strategy_names(), default="heuristic"
    )
    srv.add_argument(
        "--predictor", choices=predictor_names(), default="off"
    )
    srv.add_argument("--mode", choices=["live", "replay"], default="live",
                     help="live stamps wall-clock arrivals; replay "
                     "requires declared arrivals on every frame")
    srv.add_argument("--speed", type=float, default=1.0,
                     help="simulation time units per wall second "
                     "(live mode time compression)")
    srv.add_argument("--queue-depth", type=int, default=64,
                     help="per-tenant admission queue bound (beyond it "
                     "requests are shed)")
    srv.add_argument("--tenant-quota", type=int, default=None,
                     help="max unfinished jobs per tenant "
                     "(over-quota rejects beyond it)")
    srv.add_argument("--lookahead", type=int, default=1)
    srv.add_argument("--overhead", type=float, default=0.0,
                     help="prediction overhead (simulation time units)")
    srv.add_argument("--solver-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="wall budget per solve; over it the watchdog "
                     "degrades to the heuristic fallback")
    srv.add_argument("--journal", type=Path, default=None, metavar="FILE",
                     help="write-ahead admission journal; an existing "
                     "journal is replayed before serving (crash "
                     "recovery, DESIGN.md §15)")
    srv.add_argument("--no-journal-fsync", action="store_true",
                     help="skip the per-append fsync (faster, durable "
                     "against process death only)")
    srv.add_argument("--snapshot-every", type=int, default=64,
                     help="journal a fingerprint snapshot every N "
                     "decisions (0 disables)")
    srv.add_argument("--fault-plan", type=Path, default=None,
                     metavar="FILE",
                     help="arm a ServeFaultPlan JSON file (chaos "
                     "testing: wire/journal fault injection)")
    srv.add_argument("--smoke", action="store_true",
                     help="run the CI smoke pass instead of serving")
    srv.add_argument("--smoke-requests", type=int, default=100,
                     help="requests driven through the smoke pass")
    srv.add_argument("--json", action="store_true",
                     help="emit the smoke report as JSON")

    cha = sub.add_parser(
        "chaos",
        help="chaos-test the live service (SIGKILL + journal recovery)",
        description=(
            "Run a seeded fault schedule against a live repro serve "
            "subprocess: inject wire and journal faults, SIGKILL the "
            "daemon mid-workload, restart it from the write-ahead "
            "journal, and assert the §15 recovery invariants — "
            "bit-identical engine fingerprint on local replay, no "
            "lost or double admissions, idempotent retries, and "
            "reconciled decision counters."
        ),
    )
    cha.add_argument("--seed", type=int, default=0)
    cha.add_argument("--requests", type=int, default=40)
    cha.add_argument("--kill-at", type=int, default=None,
                     help="request index at which the server is "
                     "SIGKILLed (default: half-way)")
    cha.add_argument("--tenants", type=int, default=2)
    cha.add_argument("--cpus", type=int, default=5)
    cha.add_argument("--gpus", type=int, default=1)
    cha.add_argument("--tasks", type=int, default=20)
    cha.add_argument(
        "--strategy", choices=strategy_names(), default="heuristic"
    )
    cha.add_argument("--queue-depth", type=int, default=64)
    cha.add_argument("--tenant-quota", type=int, default=None)
    cha.add_argument("--snapshot-every", type=int, default=8)
    cha.add_argument("--latency-rate", type=float, default=0.05)
    cha.add_argument("--corruption-rate", type=float, default=0.05)
    cha.add_argument("--drop-rate", type=float, default=0.05)
    cha.add_argument("--journal-fault-rate", type=float, default=0.05)
    cha.add_argument("--workdir", type=Path, default=None,
                     help="where the journal and fault plan live "
                     "(default: a fresh temporary directory)")
    cha.add_argument("--json", action="store_true",
                     help="emit the chaos report as JSON")
    return parser


def _cmd_generate(args) -> int:
    args.out.mkdir(parents=True, exist_ok=True)
    platform = Platform.cpu_gpu(args.cpus, args.gpus)
    group = DeadlineGroup(args.group)
    streams = RngStreams(args.seed)
    config_kwargs = {"group": group, "n_requests": args.requests}
    if args.arrival_scale is not None:
        config_kwargs["arrival_scale"] = args.arrival_scale
    config = TraceConfig(**config_kwargs)
    for index in range(args.traces):
        tasks = generate_task_set(
            platform, rng=streams.fresh(f"tasks:{group.value}:{index}")
        )
        trace = generate_trace(
            tasks,
            config,
            rng=streams.fresh(f"trace:{group.value}:{index}"),
            seed=args.seed,
        )
        path = args.out / f"{group.value.lower()}_{index:03d}.json"
        trace.save(path)
        stats = trace.stats()
        print(
            f"{path}: {stats.n_requests} requests, mean inter-arrival "
            f"{stats.mean_interarrival:.2f}"
        )
    return 0


def _cmd_simulate(args) -> int:
    trace = Trace.load(args.trace)
    platform = Platform.cpu_gpu(args.cpus, args.gpus)
    strategy = resolve_strategy(args.strategy)
    predictor = _cli_predictor(args.predictor, args.accuracy, args.seed)
    config = SimulationConfig(
        prediction_overhead=args.overhead, lookahead=args.lookahead
    )
    result = simulate(
        trace,
        platform,
        strategy,
        predictor,
        config,
        kernel=args.kernel,
        shards=args.shards,
    )
    if args.json:
        print(json.dumps(result.summary(), indent=2))
        return 0
    print(f"trace       : {args.trace} ({len(trace)} requests)")
    print(f"strategy    : {args.strategy}, predictor: {args.predictor}")
    if args.shards > 1 or args.kernel:
        print(f"execution   : shards={args.shards}, "
              f"kernel={args.kernel or 'default'}")
    print(f"rejection   : {result.rejection_percentage:.2f}% "
          f"({result.n_rejected}/{result.n_requests})")
    print(f"energy      : {result.total_energy:.2f} "
          f"(normalised {result.normalized_energy:.4f})")
    print(f"migrations  : {result.migration_count}, "
          f"aborts: {result.abort_count}, "
          f"wasted energy: {result.wasted_energy:.2f}")
    return 0


def _cmd_experiment(args) -> int:
    scale = HarnessScale(
        n_traces=args.traces, n_requests=args.requests, master_seed=args.seed
    )
    # jobs == 1 keeps the historical in-process path; anything else goes
    # through the parallel executor (0 = one worker per core).
    parallel = None if args.jobs == 1 else ParallelConfig(jobs=args.jobs)
    if args.id == "all":
        from repro.experiments.report_all import run_all

        report = run_all(
            scale,
            progress=lambda name: print(f"... {name}"),
            parallel=parallel,
        )
        print(report.render())
        if args.out is not None:
            for path in report.save(args.out):
                print(f"written: {path}")
        return 0
    if args.id == "motivational":
        from repro.experiments.motivational import (
            render_motivational,
            run_motivational,
        )

        print(render_motivational(run_motivational(parallel=parallel)))
        return 0
    if args.id == "sec52":
        from repro.experiments.sec52_milp_vs_heuristic import (
            render_sec52,
            run_sec52,
        )

        print(render_sec52(run_sec52(scale, parallel=parallel)))
        return 0
    if args.id in ("fig2", "fig3"):
        from repro.experiments.fig2_rejection import (
            render_fig2,
            run_prediction_impact,
        )
        from repro.experiments.fig3_energy import render_fig3

        lt = run_prediction_impact(DeadlineGroup.LT, scale, parallel=parallel)
        vt = run_prediction_impact(DeadlineGroup.VT, scale, parallel=parallel)
        print(render_fig2(lt, vt) if args.id == "fig2" else render_fig3(lt, vt))
        return 0
    if args.id == "fig4":
        from repro.experiments.fig4_accuracy import (
            render_fig4,
            run_accuracy_sweep,
        )

        print(
            render_fig4(
                run_accuracy_sweep("type", scale, parallel=parallel),
                run_accuracy_sweep("arrival", scale, parallel=parallel),
            )
        )
        return 0
    if args.id == "fig5":
        from repro.experiments.fig5_overhead import (
            render_fig5,
            run_overhead_sweep,
        )

        print(render_fig5(run_overhead_sweep(scale, parallel=parallel)))
        return 0
    raise AssertionError(f"unhandled experiment {args.id}")  # pragma: no cover


def _cmd_evaluate(args) -> int:
    trace = Trace.load(args.trace)
    predictor = _cli_predictor(args.predictor, args.accuracy, args.seed)
    report = evaluate_predictor(predictor, trace)
    print(f"predictor     : {args.predictor}")
    print(f"forecasts     : {report.n_predictions} "
          f"(abstained {report.n_abstained})")
    print(f"type accuracy : {100 * report.type_accuracy:.1f}%")
    print(f"arrival NRMSE : {100 * report.arrival_nrmse:.1f}%")
    return 0


def _cmd_predict(args) -> int:
    # Imported here so the plain simulate/experiment paths never pay for
    # the frontier machinery.
    from dataclasses import asdict

    from repro.experiments.fig4_frontier import (
        frontier_csv,
        render_fig4_frontier,
        run_frontier,
        write_frontier_csv,
    )

    if not args.frontier:
        print("nothing to run: pass --frontier", file=sys.stderr)
        return 2
    scale = HarnessScale(
        n_traces=args.traces, n_requests=args.requests, master_seed=args.seed
    )
    parallel = None if args.jobs == 1 else ParallelConfig(jobs=args.jobs)
    result = run_frontier(
        scale,
        strategy=args.strategy,
        group=DeadlineGroup(args.group),
        parallel=parallel,
    )
    if args.json:
        print(json.dumps(
            {
                "strategy": result.strategy,
                "scenarios": list(result.scenarios),
                "predictors": list(result.predictors),
                "cells": [asdict(cell) for cell in result.cells],
            },
            indent=2,
        ))
    else:
        print(render_fig4_frontier(result))
    if args.csv is not None:
        write_frontier_csv(result, args.csv)
        print(f"written: {args.csv}")
    elif not args.json:
        print()
        print(frontier_csv(result), end="")
    return 0


def _cmd_bench(args) -> int:
    # Imported here so the plain simulate/experiment paths never pay for
    # the perf harness.
    from repro.perf import (
        BenchConfig,
        attach_baseline,
        load_payload,
        run_suite,
        write_payload,
    )

    if args.fail_threshold is not None and args.baseline is None:
        print("--fail-threshold requires --baseline", file=sys.stderr)
        return 2
    config = BenchConfig(
        n_traces=args.traces,
        n_requests=args.requests,
        seed=args.seed,
        group=args.group,
        repeats=args.repeats,
        alloc=not args.no_alloc,
        scenario=args.scenario,
        scenario_events=args.scenario_events,
    )
    payload = run_suite(
        config,
        only=args.only,
        progress=None if args.json else (
            lambda name: print(f"... {name}")
        ),
    )
    ratios: dict[str, float] = {}
    if args.baseline is not None:
        ratios = attach_baseline(
            payload, load_payload(args.baseline), source=str(args.baseline)
        )
    if args.out is not None:
        write_payload(payload, args.out)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name, result in payload["benchmarks"].items():
            line = (
                f"{name:22s} p50 {result['p50'] * 1e3:9.2f} ms  "
                f"p95 {result['p95'] * 1e3:9.2f} ms  "
                f"{result['events_per_sec']:12.0f} events/s"
            )
            if result["alloc_peak_bytes"] is not None:
                line += f"  peak {result['alloc_peak_bytes'] / 1024:.0f} KiB"
            if name in ratios:
                line += f"  [{ratios[name]:.2f}x baseline]"
            print(line)
        if args.out is not None:
            print(f"written: {args.out}")
    if args.fail_threshold is not None:
        slow = {
            name: ratio
            for name, ratio in ratios.items()
            if ratio < args.fail_threshold
        }
        if slow:
            for name, ratio in slow.items():
                print(
                    f"REGRESSION: {name} at {ratio:.2f}x baseline "
                    f"(threshold {args.fail_threshold:.2f}x)",
                    file=sys.stderr,
                )
            return 1
    return 0


def _cmd_analyze(args) -> int:
    # Imported here so the plain simulate/experiment paths never pay for
    # the analysis package.
    from repro.analysis import (
        Baseline,
        LintConfig,
        VerificationError,
        default_baseline_path,
        findings_to_payload,
        lint_package,
        lint_paths,
        render_findings,
        run_verified_smoke,
        select_rules,
    )

    exit_code = 0
    ran_anything = False

    if args.self_lint or args.lint:
        lint_config = LintConfig()
        if args.rules is not None:
            try:
                lint_config = LintConfig(
                    rules=select_rules(args.rules.split(","))
                )
            except ValueError as exc:
                print(f"--rules: {exc}", file=sys.stderr)
                return 2
        baseline_path = args.baseline
        if baseline_path is None and args.self_lint:
            # Only whole-tree runs inherit the repo baseline; a spot
            # check of one path would trip its entries as "unused".
            baseline_path = default_baseline_path()
        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None
            else Baseline()
        )
        # An entry for a rule that is not enabled this run is dormant,
        # not stale: only entries the selected rules could have used
        # count toward unused-baseline detection.
        enabled = set(lint_config.rules)
        baseline = Baseline(
            entries=tuple(
                e for e in baseline.entries if e.rule in enabled
            ),
            source=baseline.source,
        )
        findings = []
        if args.self_lint:
            findings.extend(lint_package(lint_config))
        if args.lint:
            findings.extend(lint_paths(args.lint, config=lint_config))
        result = baseline.apply(findings)
        ran_anything = True
        if args.json:
            print(json.dumps(
                findings_to_payload(
                    result.kept,
                    suppressed=len(result.suppressed),
                    unused_baseline=[e.render() for e in result.unused],
                ),
                indent=2,
            ))
        else:
            print(render_findings(result.kept))
            if result.suppressed:
                print(
                    f"lint: {len(result.suppressed)} finding(s) suppressed "
                    f"by baseline {baseline.source}"
                )
            for entry in result.unused:
                print(
                    f"lint: unused baseline entry: {entry.render()}",
                    file=sys.stderr,
                )
        if not result.ok:
            exit_code = 1

    if args.smoke:
        ran_anything = True
        scale = HarnessScale(
            n_traces=args.traces,
            n_requests=args.requests,
            master_seed=args.seed,
        )
        report = run_verified_smoke(
            scale,
            group=DeadlineGroup(args.group),
            progress=None if args.json else (
                lambda label: print(f"... {label}")
            ),
        )
        if args.json:
            print(json.dumps(
                {
                    "ok": report.ok,
                    "n_cells": len(report.cells),
                    "n_violations": report.n_violations,
                    "cells": [
                        {
                            "label": cell.label,
                            "trace_index": cell.trace_index,
                            "ok": cell.ok,
                            "n_spans": cell.n_spans,
                            "violations": [
                                v.render() for v in cell.violations
                            ],
                        }
                        for cell in report.cells
                    ],
                },
                indent=2,
            ))
        else:
            print(report.render())
        if not report.ok:
            exit_code = 1

    if args.trace is not None:
        ran_anything = True
        trace = Trace.load(args.trace)
        platform = Platform.cpu_gpu(args.cpus, args.gpus)
        strategy = resolve_strategy(args.strategy)
        predictor = _cli_predictor(args.predictor, args.accuracy, args.seed)
        config = SimulationConfig(
            prediction_overhead=args.overhead,
            lookahead=args.lookahead,
            collect_records=True,
            verify=True,
        )
        try:
            result = simulate(trace, platform, strategy, predictor, config)
        except VerificationError as exc:
            report = exc.report
        else:
            report = result.verification
            assert report is not None  # verify=True guarantees it
        if args.json:
            print(json.dumps(report.summary(), indent=2))
        else:
            print(report.render())
        if not report.ok:
            exit_code = 1

    if not ran_anything:
        print(
            "nothing to analyze: pass --self, --lint, --smoke, and/or a "
            "trace file",
            file=sys.stderr,
        )
        return 2
    return exit_code


def _cmd_faults(args) -> int:
    # Imported here so the plain simulate/experiment paths never pay for
    # the fault-injection machinery.
    from repro.experiments.fault_sweep import (
        render_fault_sweep,
        run_fault_sweep,
    )
    from repro.faults.smoke import run_fault_smoke

    if not args.smoke and not args.sweep:
        print("nothing to run: pass --smoke and/or --sweep", file=sys.stderr)
        return 2
    exit_code = 0
    payload: dict = {}
    scale = HarnessScale(
        n_traces=args.traces,
        n_requests=args.requests,
        master_seed=args.seed,
    )
    group = DeadlineGroup(args.group)

    if args.smoke:
        report = run_fault_smoke(
            scale,
            group=group,
            strategies=(args.strategy,),
            seed=args.seed,
            progress=None if args.json else (
                lambda label: print(f"... {label}")
            ),
        )
        payload["smoke"] = {
            "ok": report.ok,
            "n_cells": len(report.cells),
            "n_violations": report.n_violations,
            "n_degradations": report.n_degradations,
            "cells": [
                {
                    "label": cell.label,
                    "scenario": cell.scenario,
                    "trace_index": cell.trace_index,
                    "ok": cell.ok,
                    "n_spans": cell.n_spans,
                    "n_degradations": cell.n_degradations,
                    "n_evicted": cell.n_evicted,
                    "violations": [v.render() for v in cell.violations],
                }
                for cell in report.cells
            ],
        }
        if not args.json:
            print(report.render())
        if not report.ok:
            exit_code = 1

    if args.sweep:
        sweep = run_fault_sweep(
            scale,
            group=group,
            strategy=args.strategy,
            predictor=None if args.predictor == "off" else args.predictor,
            outage_grid=tuple(args.outage_grid),
            predictor_fault_grid=tuple(args.predictor_fault_grid),
            seed=args.seed,
            progress=None if args.json else (
                lambda label: print(f"... {label}")
            ),
        )
        payload["sweep"] = sweep.to_payload()
        if not args.json:
            print(render_fault_sweep(sweep))

    if args.json:
        print(json.dumps(payload, indent=2))
    if args.out is not None:
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(args.out, json.dumps(payload, indent=2) + "\n")
        if not args.json:
            print(f"written: {args.out}")
    return exit_code


def _cmd_obs(args) -> int:
    # Imported here so the plain simulate/experiment paths never pay for
    # the observability exporters.
    from repro.obs import (
        TraceOptions,
        event_stream_digest,
        render_metrics,
        write_chrome_trace,
        write_events_jsonl,
    )

    trace = Trace.load(args.trace)
    platform = Platform.cpu_gpu(args.cpus, args.gpus)
    strategy = resolve_strategy(args.strategy)
    predictor = _cli_predictor(args.predictor, args.accuracy, args.seed)
    config = SimulationConfig(
        prediction_overhead=args.overhead,
        lookahead=args.lookahead,
        collect_execution_log=True,
        tracer=TraceOptions(),
    )
    result = simulate(trace, platform, strategy, predictor, config)
    assert result.metrics is not None  # TraceOptions() collects metrics
    digest = event_stream_digest(result.events)
    counts: dict[str, int] = {}
    for event in result.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    if args.export_chrome is not None:
        write_chrome_trace(
            args.export_chrome,
            result.events,
            result.execution_log,
            n_resources=platform.size,
        )
    if args.export_jsonl is not None:
        write_events_jsonl(
            args.export_jsonl,
            result.events,
            include_volatile=args.include_volatile,
        )
    if args.json:
        print(json.dumps(
            {
                "digest": digest,
                "n_events": len(result.events),
                "event_counts": dict(sorted(counts.items())),
                "metrics": result.metrics.deterministic().to_dict(),
                "summary": result.summary(),
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(f"trace        : {args.trace} ({len(trace)} requests)")
    print(f"strategy     : {args.strategy}, predictor: {args.predictor}")
    print(f"events       : {len(result.events)}")
    for kind in sorted(counts):
        print(f"  {kind:18s} {counts[kind]}")
    print(f"event digest : {digest}")
    if args.summary:
        print(render_metrics(result.metrics.deterministic()))
    if args.export_chrome is not None:
        print(f"written: {args.export_chrome}")
    if args.export_jsonl is not None:
        print(f"written: {args.export_jsonl}")
    return 0


def _cmd_serve(args) -> int:
    # Imported here so every other subcommand stays free of the server
    # stack (and of asyncio).
    import asyncio

    from repro.serve.server import AdmissionServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        mode=args.mode,
        speed=args.speed,
        queue_depth=args.queue_depth,
        tenant_quota=args.tenant_quota,
        prediction_overhead=args.overhead,
        lookahead=args.lookahead,
        solver_wall_budget=args.solver_budget,
        journal_path=(
            None if args.journal is None else str(args.journal)
        ),
        journal_fsync=not args.no_journal_fsync,
        snapshot_every=args.snapshot_every,
    )
    if args.smoke:
        from repro.serve.smoke import run_smoke

        report = run_smoke(
            n_requests=args.smoke_requests,
            strategy=args.strategy,
            config=ServeConfig(
                host=args.host,
                port=0,
                speed=1e6,
                queue_depth=args.queue_depth,
                tenant_quota=args.tenant_quota,
                solver_wall_budget=args.solver_budget,
            ),
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(f"requests          : {report.requests}")
            print(f"accepted          : {report.accepted}")
            print(f"rejected          : {report.rejected}")
            print(f"shed              : {report.shed}")
            print(f"over-quota        : {report.over_quota}")
            print(f"wall time         : {report.wall_time:.3f}s")
            print(f"decisions/s       : {report.decisions_per_sec:.0f}")
            print(f"metrics lines     : {report.metrics_lines}")
            print(f"clean shutdown    : {report.clean_shutdown}")
        healthy = (
            report.requests == args.smoke_requests
            and report.clean_shutdown
            and report.metrics_lines > 0
        )
        return 0 if healthy else 1

    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults.serve import ServeFaultPlan

        fault_plan = ServeFaultPlan.from_dict(
            json.loads(args.fault_plan.read_text(encoding="utf-8"))
        )

    platform = Platform.cpu_gpu(args.cpus, args.gpus)
    tasks = generate_task_set(platform)[: args.tasks]
    predictor = (
        None if args.predictor == "off"
        else resolve_predictor(args.predictor)
    )
    server = AdmissionServer(
        platform,
        args.strategy,
        predictor,
        tasks=tasks,
        config=config,
        fault_plan=fault_plan,
    )
    if server.recovery is not None:
        report = server.recovery
        print(
            f"repro serve: recovered {report.decisions} decisions, "
            f"{report.sheds} sheds, {report.unacked} unacked, "
            f"{report.snapshots_checked} snapshots verified from "
            f"{args.journal}"
        )

    async def _run() -> None:
        import signal

        await server.start()
        # Graceful drain on SIGTERM/SIGINT: the handler only flips the
        # shutdown event; serve_until_shutdown() does the orderly work.
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(
            f"repro serve: {args.mode} mode on "
            f"{args.host}:{server.port} "
            f"({len(tasks)} task types, strategy={args.strategy}, "
            f"predictor={args.predictor})"
        )
        print("  NDJSON admit/control frames on the socket; "
              "GET /metrics for Prometheus text")
        await server.serve_until_shutdown()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_chaos(args) -> int:
    import tempfile

    from repro.serve.chaos import ChaosConfig, run_chaos

    workdir = (
        str(args.workdir)
        if args.workdir is not None
        else tempfile.mkdtemp(prefix="repro-chaos-")
    )
    kill_at = (
        args.kill_at if args.kill_at is not None else args.requests // 2
    )
    config = ChaosConfig(
        workdir=workdir,
        seed=args.seed,
        requests=args.requests,
        kill_at=kill_at,
        tenants=args.tenants,
        cpus=args.cpus,
        gpus=args.gpus,
        tasks=args.tasks,
        strategy=args.strategy,
        queue_depth=args.queue_depth,
        tenant_quota=args.tenant_quota,
        snapshot_every=args.snapshot_every,
        latency_rate=args.latency_rate,
        corruption_rate=args.corruption_rate,
        drop_rate=args.drop_rate,
        journal_fault_rate=args.journal_fault_rate,
    )
    report = run_chaos(config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"requests          : {report.requests}")
        print(f"accepted          : {report.accepted}")
        print(f"rejected          : {report.rejected}")
        print(f"shed              : {report.shed}")
        print(f"over-quota        : {report.over_quota}")
        print(f"duplicates        : {report.duplicates}")
        print(f"journal refusals  : {report.journal_refusals}")
        print(f"restarts          : {report.restarts}")
        print(f"clean shutdown    : {report.clean_shutdown}")
        print(f"live fingerprint  : {report.live_fingerprint[:16]}…")
        print(f"replay fingerprint: {report.replay_fingerprint[:16]}…")
        if report.violations:
            print("violations:")
            for violation in report.violations:
                print(f"  - {violation}")
        else:
            print("all recovery invariants held")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "evaluate": _cmd_evaluate,
        "predict": _cmd_predict,
        "bench": _cmd_bench,
        "analyze": _cmd_analyze,
        "faults": _cmd_faults,
        "obs": _cmd_obs,
        "serve": _cmd_serve,
        "chaos": _cmd_chaos,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
