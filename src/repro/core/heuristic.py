"""The paper's fast mapping heuristic (Algorithm 1, Sec. 4.3).

Resources are treated as knapsacks whose capacity is the planning window
``K-bar`` in processing time; tasks are items of weight ``cpm[j,i]``.
Following Martello's knapsack heuristic, tasks are mapped in order of
*regret*: at each step the unmapped task with the largest gap between its
best and second-best desirability ``f[j,i]`` is placed on its most
desirable schedulable resource.

Desirability is the remaining energy plus migration overhead, with a
large penalty ``M`` when the execution time exceeds the task's remaining
deadline budget (line 6 of Algorithm 1).  Schedulability is checked with
the exact EDF timeline of the target resource, including the predicted
task's arrival and (on preemptable resources) its preemption —
the ``IsSchedulable`` of the paper.

Worst-case complexity is ``O(N * L * log L)`` per activation, with ``L``
the size of ``S-bar``.

Implementation notes (hot path; all bit-identical to the naive form and
pinned by the golden-trace suite in ``tests/golden``):

* the ``cpm``/``f`` rows inline :meth:`PlannedTask.exec_time_on` /
  :meth:`~PlannedTask.energy_on` branch-for-branch (same operations in
  the same order, so the floats are identical to the letter);
* each task's resources are pre-sorted once by ``(f[j,i], i)``; the
  per-round candidate list filters that fixed total order by remaining
  capacity, which equals filtering-then-sorting;
* the regret scan stops at the first ``inf`` regret: no later task can
  exceed it under the strict ``>`` comparison, and a later task with *no*
  candidates still drives the decision to infeasible on a subsequent
  round (capacities only ever shrink), so the returned decision is
  unchanged;
* ``IsSchedulable`` keeps one incremental
  :class:`~repro.sched.timeline.Timeline` per resource and probes it,
  instead of replaying the whole resource with
  :func:`~repro.core.base.resource_timeline` on every query.
"""

from __future__ import annotations

import math

from repro.core.base import (
    MappingDecision,
    MappingStrategy,
    mapping_energy,
)
from repro.core.context import PlannedTask, RMContext
from repro.sched.timeline import Timeline

__all__ = ["HeuristicResourceManager"]

_EPS = 1e-9
_INF = math.inf


class HeuristicResourceManager(MappingStrategy):
    """Algorithm 1 of the paper.

    Parameters
    ----------
    deadline_penalty:
        The constant ``M`` added to ``f[j,i]`` when ``cpm[j,i]`` exceeds
        ``t_left_j`` (making such mappings maximally undesirable without
        excluding them from the knapsack filter, exactly as in the paper).
    remap_existing:
        When True (default), every task of ``S-bar`` is re-placed from
        scratch at each activation (full remapping freedom).  When
        False, already-mapped tasks keep their resource and only the new
        arrival (and the predicted task) are placed — an ablation of how
        much the RM's power comes from remapping versus placement.
    """

    name = "heuristic"

    def __init__(
        self,
        deadline_penalty: float = 1e9,
        *,
        remap_existing: bool = True,
    ) -> None:
        if deadline_penalty <= 0:
            raise ValueError(
                f"deadline_penalty must be > 0, got {deadline_penalty}"
            )
        self.deadline_penalty = deadline_penalty
        self.remap_existing = remap_existing

    def solve(self, context: RMContext) -> MappingDecision:
        """Run Algorithm 1 on one activation (see the class docstring)."""
        tasks = list(context.tasks)
        if not tasks:
            return MappingDecision(feasible=True, mapping={}, energy=0.0)
        tracer = self.tracer
        tracing = tracer.enabled
        platform = context.platform
        n = platform.size
        window = context.window
        capacity = [window] * n
        time = context.time
        charge_unstarted = context.charge_unstarted_migration
        deadline_penalty = self.deadline_penalty
        resources = range(n)
        down = context.down_resources

        # Line 6: desirability f[j,i] = ep + em + M * (cpm > t_left).
        # The rows replicate PlannedTask.exec_time_on/energy_on inline
        # (same arithmetic, same order); wcet and energy are finite on
        # exactly the same resources (TaskType invariant), so one
        # executability test covers both rows.
        desirability: dict[int, list[float]] = {}
        exec_times: dict[int, list[float]] = {}
        # Per task: resources with finite cpm, pre-sorted by (f, i).
        preference: dict[int, list[int]] = {}
        for task in tasks:
            task_type = task.task
            wcets = task_type.wcet
            energies = task_type.energy
            fraction = task.remaining_fraction
            current = task.current_resource
            run_np = task.running_non_preemptable
            pending = task.pending_migration_time
            migratable = (
                current is not None
                and not run_np
                and (task.started or charge_unstarted)
            )
            cm_row = (
                task_type.migration_time[current] if migratable else None
            )
            em_row = (
                task_type.migration_energy[current] if migratable else None
            )
            budget = self._deadline_budget(context, task)
            threshold = budget + _EPS
            row_f: list[float] = []
            row_c: list[float] = []
            for i in resources:
                wcet = wcets[i]
                if wcet == _INF or (down and i in down):
                    row_f.append(_INF)
                    row_c.append(_INF)
                    continue
                if run_np and i != current:
                    base_c = wcet
                    base_e = energies[i]
                else:
                    base_c = wcet * fraction
                    base_e = energies[i] * fraction
                if cm_row is not None and i != current:
                    cpm = base_c + cm_row[i]
                    energy = base_e + em_row[i]  # type: ignore[index]
                elif i == current:
                    cpm = base_c + pending
                    energy = base_e
                else:
                    cpm = base_c
                    energy = base_e
                penalty = deadline_penalty if cpm > threshold else 0.0
                row_f.append(energy + penalty)
                row_c.append(cpm)
            job_id = task.job_id
            desirability[job_id] = row_f
            exec_times[job_id] = row_c
            preference[job_id] = [
                i
                for _, i in sorted(
                    (row_f[i], i) for i in resources if row_c[i] != _INF
                )
            ]

        # One incremental EDF timeline per resource: placements insert,
        # IsSchedulable probes (no full replay per query).
        timelines = [
            Timeline(
                start_time=time, preemptable=platform.is_preemptable(i)
            )
            for i in resources
        ]

        def place(task: PlannedTask, resource: int, exec_time: float) -> None:
            if task.is_predicted:
                timelines[resource].insert(
                    task.job_id,
                    exec_time,
                    task.absolute_deadline,
                    arrival=max(task.arrival or time, time),
                )
            else:
                timelines[resource].insert(
                    task.job_id,
                    exec_time,
                    task.absolute_deadline,
                    must_run_first=(
                        task.running_non_preemptable
                        and task.current_resource == resource
                        and not platform.is_preemptable(resource)
                    ),
                )

        mapping: dict[int, int] = {}
        unmapped = {task.job_id: task for task in tasks}

        if not self.remap_existing:
            # Pin already-mapped tasks to their current resource; their
            # schedulability is re-verified by every IsSchedulable call
            # on that resource (the timeline covers all tasks there).
            for task in tasks:
                if task.current_resource is None:
                    continue
                resource = task.current_resource
                exec_time = exec_times[task.job_id][resource]
                if exec_time == _INF:
                    raise ValueError(
                        f"job {task.job_id} mapped to resource {resource} "
                        "where it is not executable"
                    )
                mapping[task.job_id] = resource
                capacity[resource] -= exec_time
                place(task, resource, exec_time)
                del unmapped[task.job_id]
            for resource in resources:
                if len(timelines[resource]) and not timelines[
                    resource
                ].feasible():
                    return MappingDecision.infeasible()

        sorted_ids = sorted(unmapped)
        # Candidate lists (resources with capacity left, in preference
        # order), maintained incrementally: capacities only ever shrink,
        # and only the placed-on resource shrinks per round, so pruning
        # that one resource from every list reproduces the per-round
        # filter exactly.
        candidates_of = {
            job_id: [
                i
                for i in preference[job_id]
                if exec_times[job_id][i] <= capacity[i] + _EPS
            ]
            for job_id in sorted_ids
        }
        while unmapped:
            # Lines 7-23: pick the unmapped task with the largest regret.
            chosen: PlannedTask | None = None
            chosen_candidates: list[int] = []
            best_regret = -_INF
            for job_id in sorted_ids:
                candidates = candidates_of[job_id]
                if not candidates:
                    return MappingDecision.infeasible()  # line 22: exit
                f_row = desirability[job_id]
                if len(candidates) == 1:
                    regret = _INF  # line 14: must place now
                else:
                    regret = f_row[candidates[1]] - f_row[candidates[0]]
                if regret > best_regret:
                    best_regret = regret
                    chosen = unmapped[job_id]
                    chosen_candidates = candidates
                    if regret == _INF:
                        # Nothing can beat inf under the strict `>`;
                        # skipping the rest of the scan is decision-
                        # preserving (see the module docstring).
                        break

            assert chosen is not None
            # Lines 24-34: place on the most desirable schedulable resource.
            placed = False
            chosen_exec = exec_times[chosen.job_id]
            for resource in chosen_candidates:
                exec_time = chosen_exec[resource]
                if self._is_schedulable(
                    timelines[resource], context, chosen, resource, exec_time
                ):
                    mapping[chosen.job_id] = resource
                    capacity[resource] -= exec_time
                    place(chosen, resource, exec_time)
                    placed = True
                    if tracing:
                        tracer.emit(
                            "heuristic-place",
                            time=time,
                            job_id=chosen.job_id,
                            resource=resource,
                            data=(
                                ("desirability", tuple(
                                    desirability[chosen.job_id]
                                )),
                                ("predicted", chosen.is_predicted),
                                ("regret", best_regret),
                            ),
                        )
                    break
            if not placed:
                return MappingDecision.infeasible()  # line 32: exit
            del unmapped[chosen.job_id]
            del candidates_of[chosen.job_id]
            sorted_ids.remove(chosen.job_id)
            # Prune the shrunk resource from the remaining candidates.
            threshold = capacity[resource] + _EPS
            for job_id in sorted_ids:
                candidates = candidates_of[job_id]
                if (
                    resource in candidates
                    and exec_times[job_id][resource] > threshold
                ):
                    candidates.remove(resource)

        return MappingDecision(
            feasible=True,
            mapping=mapping,
            energy=mapping_energy(context, mapping),
        )

    @staticmethod
    def _deadline_budget(context: RMContext, task: PlannedTask) -> float:
        """``t_left_j``; for the predicted task, measured from its arrival."""
        if task.is_predicted and task.arrival is not None:
            return task.absolute_deadline - max(context.time, task.arrival)
        return context.t_left(task)

    @staticmethod
    def _is_schedulable(
        timeline: Timeline,
        context: RMContext,
        task: PlannedTask,
        resource: int,
        exec_time: float,
    ) -> bool:
        """The paper's ``IsSchedulable(j*, i*)``.

        Probes the EDF timeline of ``resource`` (holding the tasks mapped
        there so far) with ``task`` added; other resources are unaffected
        by the placement (assignments only ever add work to one
        resource).
        """
        if task.is_predicted:
            return timeline.probe(
                task.job_id,
                exec_time,
                task.absolute_deadline,
                arrival=max(task.arrival or context.time, context.time),
            )
        return timeline.probe(
            task.job_id,
            exec_time,
            task.absolute_deadline,
            must_run_first=(
                task.running_non_preemptable
                and task.current_resource == resource
                and not context.platform.is_preemptable(resource)
            ),
        )
