"""The paper's fast mapping heuristic (Algorithm 1, Sec. 4.3).

Resources are treated as knapsacks whose capacity is the planning window
``K-bar`` in processing time; tasks are items of weight ``cpm[j,i]``.
Following Martello's knapsack heuristic, tasks are mapped in order of
*regret*: at each step the unmapped task with the largest gap between its
best and second-best desirability ``f[j,i]`` is placed on its most
desirable schedulable resource.

Desirability is the remaining energy plus migration overhead, with a
large penalty ``M`` when the execution time exceeds the task's remaining
deadline budget (line 6 of Algorithm 1).  Schedulability is checked with
the exact EDF timeline of the target resource, including the predicted
task's arrival and (on preemptable resources) its preemption —
the ``IsSchedulable`` of the paper.

Worst-case complexity is ``O(N * L * log L)`` per activation, with ``L``
the size of ``S-bar``.
"""

from __future__ import annotations

import math

from repro.core.base import (
    MappingDecision,
    MappingStrategy,
    mapping_energy,
    resource_timeline,
)
from repro.core.context import PlannedTask, RMContext

__all__ = ["HeuristicResourceManager"]

_EPS = 1e-9


class HeuristicResourceManager(MappingStrategy):
    """Algorithm 1 of the paper.

    Parameters
    ----------
    deadline_penalty:
        The constant ``M`` added to ``f[j,i]`` when ``cpm[j,i]`` exceeds
        ``t_left_j`` (making such mappings maximally undesirable without
        excluding them from the knapsack filter, exactly as in the paper).
    remap_existing:
        When True (default), every task of ``S-bar`` is re-placed from
        scratch at each activation (full remapping freedom).  When
        False, already-mapped tasks keep their resource and only the new
        arrival (and the predicted task) are placed — an ablation of how
        much the RM's power comes from remapping versus placement.
    """

    name = "heuristic"

    def __init__(
        self,
        deadline_penalty: float = 1e9,
        *,
        remap_existing: bool = True,
    ) -> None:
        if deadline_penalty <= 0:
            raise ValueError(
                f"deadline_penalty must be > 0, got {deadline_penalty}"
            )
        self.deadline_penalty = deadline_penalty
        self.remap_existing = remap_existing

    def solve(self, context: RMContext) -> MappingDecision:
        """Run Algorithm 1 on one activation (see the class docstring)."""
        tasks = list(context.tasks)
        if not tasks:
            return MappingDecision(feasible=True, mapping={}, energy=0.0)
        n = context.platform.size
        window = context.window
        capacity = [window] * n

        # Line 6: desirability f[j,i] = ep + em + M * (cpm > t_left).
        desirability: dict[int, list[float]] = {}
        exec_times: dict[int, list[float]] = {}
        for task in tasks:
            row_f: list[float] = []
            row_c: list[float] = []
            budget = self._deadline_budget(context, task)
            for i in range(n):
                cpm = context.cpm(task, i)
                energy = context.energy(task, i)
                if not math.isfinite(cpm):
                    row_f.append(math.inf)
                    row_c.append(math.inf)
                    continue
                penalty = self.deadline_penalty if cpm > budget + _EPS else 0.0
                row_f.append(energy + penalty)
                row_c.append(cpm)
            desirability[task.job_id] = row_f
            exec_times[task.job_id] = row_c

        mapping: dict[int, int] = {}
        unmapped = {task.job_id: task for task in tasks}

        if not self.remap_existing:
            # Pin already-mapped tasks to their current resource; their
            # schedulability is re-verified by every IsSchedulable call
            # on that resource (the timeline covers all tasks there).
            for task in tasks:
                if task.current_resource is None:
                    continue
                resource = task.current_resource
                mapping[task.job_id] = resource
                capacity[resource] -= exec_times[task.job_id][resource]
                del unmapped[task.job_id]
            for resource in range(n):
                if any(m == resource for m in mapping.values()):
                    if not resource_timeline(
                        context, mapping, resource
                    ).feasible:
                        return MappingDecision.infeasible()

        while unmapped:
            # Lines 7-23: pick the unmapped task with the largest regret.
            chosen: PlannedTask | None = None
            chosen_candidates: list[int] = []
            best_regret = -math.inf
            for job_id in sorted(unmapped):
                task = unmapped[job_id]
                cpms = exec_times[job_id]
                f_row = desirability[job_id]
                candidates = [
                    i
                    for i in range(n)
                    if cpms[i] <= capacity[i] + _EPS and math.isfinite(cpms[i])
                ]
                if not candidates:
                    return MappingDecision.infeasible()  # line 22: exit
                candidates.sort(key=lambda i: (f_row[i], i))
                if len(candidates) == 1:
                    regret = math.inf  # line 14: must place now
                else:
                    regret = f_row[candidates[1]] - f_row[candidates[0]]
                if regret > best_regret:
                    best_regret = regret
                    chosen = task
                    chosen_candidates = candidates

            assert chosen is not None
            # Lines 24-34: place on the most desirable schedulable resource.
            placed = False
            for resource in chosen_candidates:
                if self._is_schedulable(context, mapping, chosen, resource):
                    mapping[chosen.job_id] = resource
                    capacity[resource] -= exec_times[chosen.job_id][resource]
                    placed = True
                    break
            if not placed:
                return MappingDecision.infeasible()  # line 32: exit
            del unmapped[chosen.job_id]

        return MappingDecision(
            feasible=True,
            mapping=mapping,
            energy=mapping_energy(context, mapping),
        )

    @staticmethod
    def _deadline_budget(context: RMContext, task: PlannedTask) -> float:
        """``t_left_j``; for the predicted task, measured from its arrival."""
        if task.is_predicted and task.arrival is not None:
            return task.absolute_deadline - max(context.time, task.arrival)
        return context.t_left(task)

    @staticmethod
    def _is_schedulable(
        context: RMContext,
        mapping: dict[int, int],
        task: PlannedTask,
        resource: int,
    ) -> bool:
        """The paper's ``IsSchedulable(j*, i*)``.

        Checks the EDF timeline of ``resource`` with the tasks mapped
        there so far plus ``task``; other resources are unaffected by the
        placement (assignments only ever add work to one resource).
        """
        trial = dict(mapping)
        trial[task.job_id] = resource
        return resource_timeline(context, trial, resource).feasible
