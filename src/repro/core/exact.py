"""Exact resource manager by branch-and-bound over mappings.

Given a mapping, the schedule on every resource is fully determined by
the EDF rules of Sec. 4.1, so the optimisation problem of Sec. 4.2 is a
search over mapping vectors.  This strategy explores that space directly
with depth-first branch-and-bound:

* tasks are assigned most-constrained-first (fewest candidate resources);
* after each assignment, the EDF timeline of the touched resource is
  rebuilt — on preemptable resources adding work never repairs an
  earlier deadline miss, so infeasible partial assignments prune
  soundly;
* on a *non-preemptable* resource that the predicted task may map to,
  feasibility is NOT monotone: under non-preemptive EDF an added ready
  job can create an earlier completion boundary at which the arrived
  predicted task wins the queue, *improving* its start time.  Such
  resources are therefore never pruned mid-search; their timelines are
  verified only on complete assignments;
* a lower bound (energy so far + each unassigned task's cheapest
  candidate energy) prunes against the incumbent.

The result is provably optimal and relies on *no* LP/MILP machinery,
which makes it the independent reference the MILP formulation is
cross-validated against in the test suite.  Complexity is exponential in
``|S-bar|``, so it is intended for validation and for the small contexts
typical of one activation.
"""

from __future__ import annotations

import math

from repro.core.base import (
    MappingDecision,
    MappingStrategy,
    mapping_energy,
    resource_timeline,
)
from repro.core.context import RMContext

__all__ = ["ExactResourceManager"]


class ExactResourceManager(MappingStrategy):
    """Optimal mapping by exhaustive branch-and-bound.

    Parameters
    ----------
    max_nodes:
        Safety cap on search nodes; exceeding it raises ``RuntimeError``
        (the strategy must never silently return a sub-optimal answer).
    """

    name = "exact"

    def __init__(self, max_nodes: int = 2_000_000) -> None:
        if max_nodes <= 0:
            raise ValueError(f"max_nodes must be > 0, got {max_nodes}")
        self.max_nodes = max_nodes

    def solve(self, context: RMContext) -> MappingDecision:
        """Find the provably energy-optimal feasible mapping (or report
        infeasibility) by branch-and-bound over mapping vectors."""
        tasks = list(context.tasks)
        if not tasks:
            return MappingDecision(feasible=True, mapping={}, energy=0.0)

        candidates: dict[int, list[int]] = {}
        for task in tasks:
            cands = list(context.candidate_resources(task))
            if not cands:
                return MappingDecision.infeasible()
            # Cheapest-energy first: good incumbents early.
            cands.sort(key=lambda i: (context.energy(task, i), i))
            candidates[task.job_id] = cands

        # Most-constrained-first assignment order.
        order = sorted(tasks, key=lambda t: (len(candidates[t.job_id]), t.job_id))
        min_energy = [
            min(context.energy(t, i) for i in candidates[t.job_id]) for t in order
        ]
        # Suffix sums of the per-task cheapest energies (lower bounds).
        tail_bound = [0.0] * (len(order) + 1)
        for position in range(len(order) - 1, -1, -1):
            tail_bound[position] = tail_bound[position + 1] + min_energy[position]

        # Resources where incremental pruning would be unsound (see the
        # module docstring): non-preemptable, and reachable by any
        # predicted task.
        unsafe_resources = {
            i
            for predicted in context.predicted_tasks
            for i in candidates[predicted.job_id]
            if not context.platform.is_preemptable(i)
        }

        best_mapping: dict[int, int] | None = None
        best_energy = math.inf
        nodes = 0
        mapping: dict[int, int] = {}

        def dfs(position: int, energy_so_far: float) -> None:
            nonlocal best_mapping, best_energy, nodes
            nodes += 1
            if nodes > self.max_nodes:
                raise RuntimeError(
                    f"exact search exceeded {self.max_nodes} nodes "
                    f"({len(order)} tasks)"
                )
            if energy_so_far + tail_bound[position] >= best_energy - 1e-12:
                return
            if position == len(order):
                if all(
                    resource_timeline(context, mapping, r).feasible
                    for r in unsafe_resources
                ):
                    best_energy = energy_so_far
                    best_mapping = dict(mapping)
                return
            task = order[position]
            for resource in candidates[task.job_id]:
                mapping[task.job_id] = resource
                if (
                    resource in unsafe_resources
                    or resource_timeline(context, mapping, resource).feasible
                ):
                    dfs(
                        position + 1,
                        energy_so_far + context.energy(task, resource),
                    )
                del mapping[task.job_id]

        dfs(0, 0.0)
        if best_mapping is None:
            return MappingDecision.infeasible()
        return MappingDecision(
            feasible=True,
            mapping=best_mapping,
            energy=mapping_energy(context, best_mapping),
        )
