"""MILP-based exact resource manager (Sec. 4.2, eqs. (1)-(14)).

The formulation optimises the binary mapping variables ``x[j,i]``:

* objective — remaining energy plus migration overhead,
  ``min sum x[j,i] * (ep[j,i] + em[j,k,i])``;
* (1) every task maps to exactly one resource;
* (2) ``cpm[j,i] <= t_left_j`` (encoded by variable filtering);
* (3)/(6) EDF cumulative-work deadline constraints per resource;
* (4)/(5) the predicted task starts at ``max(s_p, q_i)`` on the resource
  it maps to when its deadline outranks nothing;
* (7)-(14) when the predicted task has an earlier deadline than some
  tasks (the SL2 sublist) on a *preemptable* resource, it preempts: each
  SL2 task either provably finishes before ``s_p`` or absorbs the
  predicted task's execution time.  The chunk-level disjunctions
  (8)-(14) of the paper admit a closed-form finish time under EDF
  (``finish_j = q_i + S_j + cp_p * [q_i + S_j > s_p - t]``), which is
  what we encode — one selector binary per (resource, SL2 task) instead
  of four-way chunk-overlap disjunctions, with identical feasible
  mappings;
* on a *non-preemptable* resource the predicted task cannot preempt but
  does join the EDF queue at completion boundaries (non-preemptive EDF):
  each SL2 task either *starts* before ``s_p`` (and then runs to
  completion ahead of the predicted task, delaying it) or yields the
  queue position and absorbs the predicted task's execution time.  One
  truth-forced binary per (resource, SL2 task) encodes the boundary.

Every optimal mapping returned by the solver is re-validated against the
ground-truth EDF timeline (:func:`repro.core.base.mapping_feasible`), so
a formulation/solver discrepancy raises instead of silently corrupting
experiment results.
"""

from __future__ import annotations


from repro.core.base import (
    MappingDecision,
    MappingStrategy,
    mapping_energy,
    mapping_feasible,
)
from repro.core.context import PlannedTask, RMContext
from repro.milp.model import LinExpr, Model, Variable

__all__ = ["MilpResourceManager", "MilpValidationError"]

_SAFETY = 0.0
"""Deadline tightening applied inside the MILP.

Kept at zero: the EDF timeline accepts boundary-exact finishes (within
its 1e-9 tolerance), so the MILP must too — and sub-tolerance shaving is
worse than useless with HiGHS (its MIP feasibility tolerance is larger
than any safe shave, and near-integral right-hand sides aggravate a
presolve bug; see repro.milp.scipy_backend).  Every returned mapping is
re-validated against the exact timeline regardless."""


class MilpValidationError(RuntimeError):
    """The solver returned a mapping the ground-truth timeline rejects."""


class MilpResourceManager(MappingStrategy):
    """Exact optimisation of one RM activation via MILP.

    Parameters
    ----------
    backend:
        ``"scipy"`` (HiGHS) or ``"bnb"`` (pure-Python branch-and-bound).
    validate:
        Re-check returned mappings against the exact EDF timeline,
        excluding tolerance-corrupted solutions with no-good cuts
        (default on; disabling also disables the repair loop).
    time_limit:
        Optional per-solve wall-clock limit in seconds (scipy backend).
    max_repairs:
        Bound on the solve-validate-cut iterations before raising
        :class:`MilpValidationError` (each cut removes one mapping the
        solver's tolerances wrongly admitted; in practice a single cut
        suffices on the rare affected activations).
    include_predicted_energy:
        Whether the predicted task's (phantom) energy enters the
        objective.  True follows the paper's objective (the sum ranges
        over all of ``S-bar``); False treats the prediction as a pure
        feasibility reservation — an ablation of how much the phantom
        term distorts real placements.
    """

    name = "milp"

    def __init__(
        self,
        backend: str = "scipy",
        *,
        validate: bool = True,
        time_limit: float | None = None,
        max_repairs: int = 16,
        include_predicted_energy: bool = True,
    ) -> None:
        if backend not in ("scipy", "bnb"):
            raise ValueError(f"unknown backend {backend!r}")
        if max_repairs < 1:
            raise ValueError(f"max_repairs must be >= 1, got {max_repairs}")
        self.backend = backend
        self.validate = validate
        self.time_limit = time_limit
        self.max_repairs = max_repairs
        self.include_predicted_energy = include_predicted_energy

    def solve(self, context: RMContext) -> MappingDecision:
        """Build, solve and validate the activation MILP (eqs. (1)-(14))."""
        tasks = list(context.tasks)
        if not tasks:
            return MappingDecision(feasible=True, mapping={}, energy=0.0)
        if len(context.predicted_tasks) > 1:
            raise NotImplementedError(
                "the paper's MILP formulation plans with a single predicted "
                "request; use HeuristicResourceManager or "
                "ExactResourceManager for lookahead horizons > 1"
            )

        n = context.platform.size
        predicted = context.predicted

        # Constraint (2) by filtering: candidate resources per task.
        candidates: dict[int, tuple[int, ...]] = {}
        for task in tasks:
            cands = context.candidate_resources(task)
            if not cands:
                return MappingDecision.infeasible()
            candidates[task.job_id] = cands

        model = Model("rm-activation")
        x: dict[tuple[int, int], Variable] = {}
        for task in tasks:
            for i in candidates[task.job_id]:
                x[task.job_id, i] = model.add_binary(f"x[{task.job_id},{i}]")

        # (1) each task on exactly one resource.
        for task in tasks:
            total = LinExpr()
            for i in candidates[task.job_id]:
                total = total + x[task.job_id, i]
            model.add(total == 1.0, name=f"map[{task.job_id}]")

        # Objective: remaining energy + migration overhead.
        objective = LinExpr()
        for task in tasks:
            if task.is_predicted and not self.include_predicted_energy:
                continue
            for i in candidates[task.job_id]:
                objective = objective + x[task.job_id, i] * context.energy(task, i)
        model.minimize(objective)

        big_m = self._big_m(context, tasks, candidates)
        sp_rel = 0.0
        if predicted is not None:
            sp_rel = max(0.0, (predicted.arrival or context.time) - context.time)

        for i in range(n):
            self._add_resource_constraints(
                model, context, tasks, candidates, x, i, predicted, sp_rel, big_m
            )

        # Solve-validate-cut loop.  Finite solver tolerances can let a
        # binary sit fractionally inside a big-M term, "satisfying" a
        # deadline constraint the actual schedule violates.  Any returned
        # mapping that fails the exact EDF timeline is therefore excluded
        # with a no-good cut and the model re-solved; cut mappings are
        # infeasible in the true semantics, so optimality is preserved.
        for repairs in range(self.max_repairs):
            solution = model.solve(self.backend, **self._solver_options())
            if not solution.optimal:
                self._trace_solve(context, feasible=False, repairs=repairs)
                return MappingDecision.infeasible()

            mapping: dict[int, int] = {}
            for task in tasks:
                chosen = [
                    i
                    for i in candidates[task.job_id]
                    if solution.binary(x[task.job_id, i])
                ]
                if len(chosen) != 1:  # pragma: no cover - solver pathology
                    raise MilpValidationError(
                        f"job {task.job_id} mapped to {chosen} resources"
                    )
                mapping[task.job_id] = chosen[0]

            if not self.validate or mapping_feasible(context, mapping):
                self._trace_solve(context, feasible=True, repairs=repairs)
                return MappingDecision(
                    feasible=True,
                    mapping=mapping,
                    energy=mapping_energy(context, mapping),
                )
            selected = LinExpr()
            for job_id, resource in mapping.items():
                selected = selected + x[job_id, resource]
            model.add(
                selected <= float(len(tasks) - 1),
                name=f"nogood[{len(model.constraints)}]",
            )
        raise MilpValidationError(
            f"MILP kept returning timeline-infeasible mappings after "
            f"{self.max_repairs} no-good cuts at t={context.time}"
        )

    def _trace_solve(
        self, context: RMContext, *, feasible: bool, repairs: int
    ) -> None:
        """Emit one ``milp-solve`` event (no-op when tracing is off)."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "milp-solve",
                time=context.time,
                detail=self.backend,
                data=(
                    ("context_size", len(context.tasks)),
                    ("feasible", feasible),
                    ("repairs", repairs),
                ),
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _solver_options(self) -> dict:
        if self.backend == "scipy" and self.time_limit is not None:
            return {"time_limit": self.time_limit}
        return {}

    @staticmethod
    def _big_m(
        context: RMContext,
        tasks: list[PlannedTask],
        candidates: dict[int, tuple[int, ...]],
    ) -> float:
        """A bound dominating any feasible finish time in the window."""
        total_work = sum(
            max(context.cpm(t, i) for i in candidates[t.job_id]) for t in tasks
        )
        horizon = context.window + total_work + 1.0
        predicted = context.predicted
        if predicted is not None and predicted.arrival is not None:
            horizon += max(0.0, predicted.arrival - context.time)
        return 2.0 * horizon

    def _add_resource_constraints(
        self,
        model: Model,
        context: RMContext,
        tasks: list[PlannedTask],
        candidates: dict[int, tuple[int, ...]],
        x: dict[tuple[int, int], Variable],
        resource: int,
        predicted: PlannedTask | None,
        sp_rel: float,
        big_m: float,
    ) -> None:
        """Deadline constraints of one resource (eqs. (3)-(14))."""

        def work(task: PlannedTask) -> LinExpr:
            """``A_j = x[j,i] * cpm[j,i]`` (zero if not a candidate)."""
            if resource not in candidates[task.job_id]:
                return LinExpr()
            return x[task.job_id, resource] * context.cpm(task, resource)

        preemptable = context.platform.is_preemptable(resource)
        real = [t for t in tasks if not t.is_predicted]

        # On a non-preemptable resource, the task currently executing
        # there runs first regardless of its deadline.
        forced = None
        if not preemptable:
            for t in real:
                if t.running_non_preemptable and t.current_resource == resource:
                    forced = t
                    break

        ordered = sorted(real, key=lambda t: (t.absolute_deadline, t.job_id))
        if forced is not None:
            ordered = [forced, *(t for t in ordered if t is not forced)]

        p_here = (
            predicted is not None
            and resource in candidates[predicted.job_id]
        )
        p_deadline = predicted.absolute_deadline if predicted is not None else 0.0
        cp_p = context.cpm(predicted, resource) if p_here else 0.0

        cumulative = LinExpr()  # running sum of A_k in schedule order
        queue_ahead = LinExpr()  # work guaranteed to precede the predicted task
        for task in ordered:
            previous = cumulative  # work ahead of this task (its start)
            contribution = work(task)
            cumulative = cumulative + contribution
            in_sl1 = (
                forced is task
                or not p_here
                or task.absolute_deadline <= p_deadline
            )
            if in_sl1:
                # SL1 (and the forced running task) always precede the
                # predicted task: it can neither preempt them nor outrank
                # them in the EDF queue.
                queue_ahead = queue_ahead + contribution
            if resource not in candidates[task.job_id]:
                continue  # never mapped here: no deadline constraint on i
            # Every constraint below applies only when x[j,i] = 1 (the
            # paper's "satisfied only under certain conditions", encoded
            # big-M): slack = big_m * (1 - x[j,i]).
            mapped_slack = (1.0 - x[task.job_id, resource]) * big_m
            t_left = context.t_left(task) - _SAFETY
            if in_sl1:
                # (3)/(6): plain EDF cumulative-work bound.
                model.add(
                    cumulative - mapped_slack <= t_left,
                    name=f"edf[{task.job_id},{resource}]",
                )
            elif preemptable:
                # (7)-(14): either the task finishes before s_p, or it
                # absorbs the predicted task's execution time.
                no_delay = model.add_binary(f"nodelay[{task.job_id},{resource}]")
                sel_slack = (1.0 - no_delay) * big_m
                model.add(
                    cumulative - sel_slack - mapped_slack <= sp_rel,
                    name=f"before_sp[{task.job_id},{resource}]",
                )
                model.add(
                    cumulative - sel_slack - mapped_slack <= t_left,
                    name=f"edf_nodelay[{task.job_id},{resource}]",
                )
                delayed = (
                    cumulative + x[predicted.job_id, resource] * cp_p
                )
                model.add(
                    delayed - no_delay * big_m - mapped_slack <= t_left,
                    name=f"edf_delayed[{task.job_id},{resource}]",
                )
            else:
                # Non-preemptive EDF insertion: the task runs before the
                # predicted one iff it *starts* (= its no-p queue position)
                # before s_p; the boundary binary is truth-forced so the
                # solver cannot mis-state the queue order.
                before = model.add_binary(f"before[{task.job_id},{resource}]")
                model.add(
                    previous - (1.0 - before) * big_m - mapped_slack <= sp_rel,
                    name=f"starts_early[{task.job_id},{resource}]",
                )
                model.add(
                    previous + before * big_m + mapped_slack >= sp_rel,
                    name=f"starts_late[{task.job_id},{resource}]",
                )
                model.add(
                    cumulative - (1.0 - before) * big_m - mapped_slack
                    <= t_left,
                    name=f"edf_before[{task.job_id},{resource}]",
                )
                model.add(
                    cumulative
                    + x[predicted.job_id, resource] * cp_p
                    - before * big_m
                    - mapped_slack
                    <= t_left,
                    name=f"edf_after[{task.job_id},{resource}]",
                )
                # The blocking prefix delays the predicted task:
                # y = before AND x[j,i], so queue_ahead gains A_j exactly
                # when the task really runs first.
                y = model.add_var(
                    f"ahead[{task.job_id},{resource}]", lb=0.0, ub=1.0
                )
                model.add(
                    y - before - x[task.job_id, resource] >= -1.0,
                    name=f"ahead_and[{task.job_id},{resource}]",
                )
                queue_ahead = queue_ahead + y * context.cpm(task, resource)

        if predicted is not None and p_here:
            # (4)/(5) generalised: the predicted task starts at
            # max(s_p, work guaranteed ahead of it on this resource).
            start = model.add_var(f"start_p[{resource}]", lb=0.0)
            model.add(start - queue_ahead >= 0.0, name=f"sp_q[{resource}]")
            model.add(start >= sp_rel, name=f"sp_arrival[{resource}]")
            finish = start + x[predicted.job_id, resource] * cp_p
            t_left_p = predicted.absolute_deadline - context.time - _SAFETY
            model.add(
                finish
                - (1.0 - x[predicted.job_id, resource]) * big_m
                <= t_left_p,
                name=f"deadline_p[{resource}]",
            )
