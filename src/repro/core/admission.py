"""Admission control: the paper's accept/reject protocol (Sec. 4.1).

On each arrival the RM first tries to find a feasible mapping for the
whole of ``S-bar`` *including* the predicted task.  If that fails, the
arriving task is not immediately rejected: a solution *without* the
predicted request is attempted, and only if that also fails is the new
task rejected (the previously admitted tasks then keep their current
mapping and schedule, which remains feasible).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import MappingDecision, MappingStrategy
from repro.core.context import RMContext
from repro.obs.events import NULL_TRACER, Tracer, monotonic_now

__all__ = ["AdmissionOutcome", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionOutcome:
    """Result of one arrival's admission decision.

    Attributes
    ----------
    admitted:
        Whether the arriving task was admitted.
    used_prediction:
        Whether the applied mapping was planned with the predicted task
        as a constraint (False when the prediction-constrained attempt
        failed and the fallback succeeded, or when no prediction was
        available).
    decision:
        The mapping applied to the platform; ``None`` when rejected (the
        previous mapping stays in force).
    solver_calls:
        How many strategy invocations the decision took (1 or 2).
    """

    admitted: bool
    used_prediction: bool
    decision: MappingDecision | None
    solver_calls: int


class AdmissionController:
    """Wraps a mapping strategy with the paper's admission protocol.

    ``tracer`` receives one ``solver-call`` event per strategy
    invocation, carrying the phase (with-prediction / fallback / plain /
    remap), feasibility, and the measured wall time as a *volatile*
    field (DESIGN.md §11).  The default tracer is disabled and costs one
    attribute check per solve.
    """

    def __init__(
        self, strategy: MappingStrategy, tracer: Tracer = NULL_TRACER
    ) -> None:
        self.strategy = strategy
        self.tracer = tracer

    def _solve(self, context: RMContext, phase: str) -> MappingDecision:
        """One traced strategy invocation."""
        tracer = self.tracer
        if not tracer.enabled:
            return self.strategy.solve(context)
        start = monotonic_now()
        decision = self.strategy.solve(context)
        tracer.emit(
            "solver-call",
            time=context.time,
            detail=phase,
            data=(
                ("context_size", len(context.tasks)),
                ("feasible", decision.feasible),
                ("strategy", self.strategy.name),
            ),
            wall_time=monotonic_now() - start,
        )
        return decision

    def decide(self, context: RMContext) -> AdmissionOutcome:
        """Decide admission for the activation described by ``context``.

        ``context.tasks`` must contain the admitted unfinished tasks and
        the new arrival; it may additionally contain one predicted task.
        """
        if context.predicted is not None:
            with_prediction = self._solve(context, "with-prediction")
            if with_prediction.feasible:
                return AdmissionOutcome(
                    admitted=True,
                    used_prediction=True,
                    decision=with_prediction,
                    solver_calls=1,
                )
            fallback = self._solve(context.without_prediction(), "fallback")
            if fallback.feasible:
                return AdmissionOutcome(
                    admitted=True,
                    used_prediction=False,
                    decision=fallback,
                    solver_calls=2,
                )
            return AdmissionOutcome(
                admitted=False,
                used_prediction=False,
                decision=None,
                solver_calls=2,
            )
        decision = self._solve(context, "plain")
        if decision.feasible:
            return AdmissionOutcome(
                admitted=True,
                used_prediction=False,
                decision=decision,
                solver_calls=1,
            )
        return AdmissionOutcome(
            admitted=False, used_prediction=False, decision=None, solver_calls=1
        )

    def remap(self, context: RMContext) -> AdmissionOutcome:
        """Re-admission of a job displaced by a resource outage.

        The displaced job restarts from scratch (its execution state died
        with the resource), so its firm-deadline semantics are the same
        as a fresh arrival's: find a feasible mapping for the whole of
        ``S-bar`` on the surviving resources, or reject.  No prediction
        is involved — the RM is reacting to a platform change, not an
        arrival (DESIGN.md §10).
        """
        decision = self._solve(context, "remap")
        if decision.feasible:
            return AdmissionOutcome(
                admitted=True,
                used_prediction=False,
                decision=decision,
                solver_calls=1,
            )
        return AdmissionOutcome(
            admitted=False, used_prediction=False, decision=None, solver_calls=1
        )
