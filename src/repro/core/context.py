"""The resource manager's view of the world at one activation.

Sec. 4.1 of the paper: when the RM is activated at time ``t``, it
considers the set ``S-bar`` of all admitted-but-unfinished tasks, plus the
newly arrived task, plus (with prediction) the predicted task.  For each
task the RM knows

* the remaining worst-case work ``cp[j,i]`` and energy ``ep[j,i]`` on
  every resource (scaled proportionally when the task migrates),
* the total execution time including migration, ``cpm[j,i]``,
* the remaining time to its deadline ``t_left_j = s_j + d_j - t``.

:class:`PlannedTask` captures one task's state and derives those
quantities; :class:`RMContext` bundles the full activation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.model.platform import Platform
from repro.model.task import TaskType

__all__ = ["PlannedTask", "RMContext", "PREDICTED_JOB_ID"]

PREDICTED_JOB_ID: int = 10**9
"""Reserved job id for the predicted task.

It is larger than any real request index, so EDF deadline ties between a
real task and the predicted task resolve in favour of the real task —
matching the paper's convention that tasks with deadline *equal* to the
predicted task's belong to SL1 (run before it)."""


@dataclass(frozen=True)
class PlannedTask:
    """One task of ``S-bar`` as the RM sees it at activation time.

    Attributes
    ----------
    job_id:
        Unique id within the activation (the trace request index; the
        predicted task uses a reserved id).
    task:
        The task type (WCET/energy/migration data).
    absolute_deadline:
        ``s_j + d_j``.
    remaining_fraction:
        Fraction of the task's work still to execute, in ``(0, 1]``;
        resource-independent (``cp[j,i] = c[j,i] * remaining_fraction``).
    current_resource:
        Resource the task is currently mapped to, or None for a task not
        yet mapped (the new arrival, the predicted task).
    started:
        Whether the task has executed at all (it may be mapped but still
        queued).
    running_non_preemptable:
        True when the task is *currently executing* on a non-preemptable
        resource: it can only continue there or be aborted and restarted
        from scratch elsewhere.
    pending_migration_time:
        Unpaid migration delay on the current resource (set when a
        previous activation migrated the task and the overhead has not
        fully elapsed).
    is_predicted:
        Marks the predicted task (planning constraint only).
    arrival:
        For the predicted task: its (predicted) future arrival time.
        ``None`` for tasks that are ready now.
    """

    job_id: int
    task: TaskType
    absolute_deadline: float
    remaining_fraction: float = 1.0
    current_resource: int | None = None
    started: bool = False
    running_non_preemptable: bool = False
    pending_migration_time: float = 0.0
    is_predicted: bool = False
    arrival: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.remaining_fraction <= 1.0:
            raise ValueError(
                f"job {self.job_id}: remaining_fraction must be in (0, 1], "
                f"got {self.remaining_fraction}"
            )
        if self.running_non_preemptable and self.current_resource is None:
            raise ValueError(
                f"job {self.job_id}: running_non_preemptable requires a "
                "current resource"
            )
        if self.pending_migration_time < 0:
            raise ValueError(
                f"job {self.job_id}: pending_migration_time must be >= 0"
            )
        if self.is_predicted and self.arrival is None:
            raise ValueError(
                f"job {self.job_id}: a predicted task needs an arrival time"
            )

    # ------------------------------------------------------------------
    # Remaining work / energy (Sec. 4.1 formulas)
    # ------------------------------------------------------------------

    def remaining_time_on(self, resource: int) -> float:
        """``cp[j,i]``: remaining WCET if the task runs on ``resource``.

        Continuing on the current resource keeps the proportional
        remainder; moving a task that is executing on a non-preemptable
        resource aborts it, so the work restarts from scratch.
        """
        wcet = self.task.wcet[resource]
        if not math.isfinite(wcet):
            return math.inf
        if self.running_non_preemptable and resource != self.current_resource:
            return wcet  # abort & restart from the beginning
        return wcet * self.remaining_fraction

    def remaining_energy_on(self, resource: int) -> float:
        """``ep[j,i]``: remaining average energy on ``resource``."""
        energy = self.task.energy[resource]
        if not math.isfinite(energy):
            return math.inf
        if self.running_non_preemptable and resource != self.current_resource:
            return energy
        return energy * self.remaining_fraction

    def migration_applies(
        self, resource: int, *, charge_unstarted: bool = False
    ) -> bool:
        """Whether mapping to ``resource`` incurs migration overhead.

        No overhead applies when the task stays put, has never been mapped,
        restarts after a non-preemptable abort (nothing to transfer), or —
        under the default policy — has been mapped but never started.
        """
        if self.current_resource is None or resource == self.current_resource:
            return False
        if self.running_non_preemptable:
            return False
        return self.started or charge_unstarted

    def exec_time_on(
        self, resource: int, *, charge_unstarted: bool = False
    ) -> float:
        """``cpm[j,i]``: remaining WCET plus migration delay on ``resource``."""
        base = self.remaining_time_on(resource)
        if not math.isfinite(base):
            return math.inf
        if self.migration_applies(resource, charge_unstarted=charge_unstarted):
            return base + self.task.cm(self.current_resource, resource)
        if resource == self.current_resource:
            return base + self.pending_migration_time
        return base

    def energy_on(self, resource: int, *, charge_unstarted: bool = False) -> float:
        """``ep[j,i] + em[j,k,i]``: the task's objective contribution."""
        base = self.remaining_energy_on(resource)
        if not math.isfinite(base):
            return math.inf
        if self.migration_applies(resource, charge_unstarted=charge_unstarted):
            return base + self.task.em(self.current_resource, resource)
        return base

    def with_fraction(self, fraction: float) -> "PlannedTask":
        """Copy with a different remaining fraction (simulator helper)."""
        return replace(self, remaining_fraction=fraction)


@dataclass(frozen=True)
class RMContext:
    """One activation of the resource manager.

    Attributes
    ----------
    time:
        The activation time ``t`` (decision time; includes any prediction
        overhead already elapsed).
    platform:
        The platform being managed.
    tasks:
        The set ``S-bar``: admitted unfinished tasks + the new arrival +
        optionally predicted task(s).  The paper plans with one predicted
        request; multiple (a lookahead horizon) are supported by the
        heuristic and exact strategies.
    charge_unstarted_migration:
        Policy knob (DESIGN.md semantics item 3): whether remapping a
        never-started task pays migration overhead.
    down_resources:
        Resources currently unavailable (fault injection, DESIGN.md
        §10): no task may be mapped there, and
        :meth:`candidate_resources` excludes them.
    """

    time: float
    platform: Platform
    tasks: tuple[PlannedTask, ...]
    charge_unstarted_migration: bool = False
    down_resources: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        ids = [t.job_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate job ids in context: {ids}")
        n = self.platform.size
        for resource in self.down_resources:
            if not 0 <= resource < n:
                raise ValueError(
                    f"down resource {resource} out of range for platform "
                    f"of size {n}"
                )
        for t in self.tasks:
            if t.task.n_resources != n:
                raise ValueError(
                    f"job {t.job_id}: task defined for {t.task.n_resources} "
                    f"resources, platform has {n}"
                )
            if t.current_resource is not None and not 0 <= t.current_resource < n:
                raise ValueError(
                    f"job {t.job_id}: current_resource {t.current_resource} "
                    "out of range"
                )

    @property
    def predicted_tasks(self) -> tuple[PlannedTask, ...]:
        """All predicted tasks, in arrival order.

        The paper plans with a single predicted request; this library
        also supports a *lookahead horizon* of several predicted requests
        (the paper's natural extension).  The exact and heuristic
        strategies handle any number; the MILP formulation follows the
        paper and supports at most one.
        """
        return tuple(
            sorted(
                (t for t in self.tasks if t.is_predicted),
                key=lambda t: (t.arrival or 0.0, t.job_id),
            )
        )

    @property
    def predicted(self) -> PlannedTask | None:
        """The earliest predicted task, if any (the paper's single
        predicted request)."""
        predicted = self.predicted_tasks
        return predicted[0] if predicted else None

    @property
    def real_tasks(self) -> tuple[PlannedTask, ...]:
        """``S-bar`` without the predicted task."""
        return tuple(t for t in self.tasks if not t.is_predicted)

    def t_left(self, task: PlannedTask) -> float:
        """``t_left_j = s_j + d_j - t`` (time to the absolute deadline)."""
        return task.absolute_deadline - self.time

    @property
    def window(self) -> float:
        """``K-bar``: the RM's planning window (latest ``t_left``)."""
        if not self.tasks:
            return 0.0
        return max(self.t_left(t) for t in self.tasks)

    def cpm(self, task: PlannedTask, resource: int) -> float:
        """``cpm[j,i]`` under this context's migration policy."""
        return task.exec_time_on(
            resource, charge_unstarted=self.charge_unstarted_migration
        )

    def energy(self, task: PlannedTask, resource: int) -> float:
        """``ep + em`` under this context's migration policy."""
        return task.energy_on(
            resource, charge_unstarted=self.charge_unstarted_migration
        )

    def candidate_resources(self, task: PlannedTask) -> tuple[int, ...]:
        """Resources where the task is executable and fits its deadline.

        This is the paper's constraint (2): ``cpm[j,i] <= t_left_j``.
        For the predicted task the deadline is measured from its arrival,
        since it cannot start before arriving.  Down resources are never
        candidates.
        """
        start = self.time
        if task.is_predicted and task.arrival is not None:
            start = max(self.time, task.arrival)
        budget = task.absolute_deadline - start
        down = self.down_resources
        return tuple(
            i
            for i in range(self.platform.size)
            if i not in down and self.cpm(task, i) <= budget + 1e-9
        )

    def without_prediction(self) -> "RMContext":
        """A copy of the context with the predicted task removed."""
        return RMContext(
            time=self.time,
            platform=self.platform,
            tasks=self.real_tasks,
            charge_unstarted_migration=self.charge_unstarted_migration,
            down_resources=self.down_resources,
        )
