"""Strategy interface and mapping validation shared by all RMs.

A *mapping strategy* solves one activation: given an
:class:`~repro.core.context.RMContext` it either produces a mapping of
every task in ``S-bar`` to a resource (and the planned energy), or reports
infeasibility.  :func:`mapping_feasible` and :func:`mapping_energy` define
the ground-truth semantics of a mapping — every strategy (heuristic, MILP,
exact search) is validated against them.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from repro.core.context import RMContext
from repro.obs.events import NULL_TRACER, Tracer
from repro.sched.timeline import FutureJob, ReadyJob, build_timeline

__all__ = [
    "MappingDecision",
    "MappingStrategy",
    "mapping_feasible",
    "mapping_energy",
    "resource_timeline",
]


@dataclass(frozen=True)
class MappingDecision:
    """Outcome of one strategy invocation.

    Attributes
    ----------
    feasible:
        Whether a mapping meeting every deadline was found.
    mapping:
        ``job_id -> resource index`` for every task in the context
        (including the predicted task, whose entry is planning-only).
        Empty when infeasible.
    energy:
        The objective value: planned remaining energy (incl. migration
        overheads) summed over ``S-bar``.  ``inf`` when infeasible.
    """

    feasible: bool
    mapping: dict[int, int] = field(default_factory=dict)
    energy: float = math.inf

    @classmethod
    def infeasible(cls) -> "MappingDecision":
        """The canonical "no feasible mapping" decision."""
        return cls(feasible=False)


class MappingStrategy(abc.ABC):
    """A mapping/scheduling solver for one RM activation."""

    #: short identifier used in experiment reports
    name: str = "strategy"

    #: event sink for structured tracing (DESIGN.md §11).  The class
    #: default is the disabled :data:`~repro.obs.events.NULL_TRACER`;
    #: the simulator installs a collecting tracer for the duration of a
    #: traced run.  Implementations guard every emit with
    #: ``tracer.enabled`` so untraced runs pay one attribute check.
    tracer: Tracer = NULL_TRACER

    @abc.abstractmethod
    def solve(self, context: RMContext) -> MappingDecision:
        """Map every task in the context, or report infeasibility.

        Implementations must return decisions for which
        :func:`mapping_feasible` holds whenever ``feasible`` is True.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _jobs_on_resource(
    context: RMContext, mapping: dict[int, int], resource: int
) -> tuple[list[ReadyJob], list[FutureJob]]:
    """Split one resource's assigned tasks into ready and future jobs."""
    ready: list[ReadyJob] = []
    future: list[FutureJob] = []
    for task in context.tasks:
        if mapping.get(task.job_id) != resource:
            continue
        exec_time = context.cpm(task, resource)
        if not math.isfinite(exec_time):
            raise ValueError(
                f"job {task.job_id} mapped to resource {resource} where it "
                "is not executable"
            )
        if task.is_predicted:
            future.append(
                FutureJob(
                    job_id=task.job_id,
                    arrival=max(task.arrival or context.time, context.time),
                    exec_time=exec_time,
                    deadline=task.absolute_deadline,
                )
            )
        else:
            must_run_first = (
                task.running_non_preemptable
                and task.current_resource == resource
                and not context.platform.is_preemptable(resource)
            )
            ready.append(
                ReadyJob(
                    job_id=task.job_id,
                    exec_time=exec_time,
                    deadline=task.absolute_deadline,
                    must_run_first=must_run_first,
                )
            )
    return ready, future


def resource_timeline(
    context: RMContext, mapping: dict[int, int], resource: int
):
    """The EDF timeline of one resource under ``mapping``."""
    ready, future = _jobs_on_resource(context, mapping, resource)
    return build_timeline(
        ready,
        future,
        start_time=context.time,
        preemptable=context.platform.is_preemptable(resource),
    )


def mapping_feasible(context: RMContext, mapping: dict[int, int]) -> bool:
    """Ground truth: does ``mapping`` meet every deadline?

    Requires every task of the context to be mapped to a resource it is
    executable on (and not currently down), and every per-resource EDF
    timeline (with the predicted task's arrival and preemption rules) to
    be feasible.
    """
    for task in context.tasks:
        if task.job_id not in mapping:
            return False
        if not task.task.executable_on(mapping[task.job_id]):
            return False
        if mapping[task.job_id] in context.down_resources:
            return False
    for resource in range(context.platform.size):
        if not resource_timeline(context, mapping, resource).feasible:
            return False
    return True


def mapping_energy(context: RMContext, mapping: dict[int, int]) -> float:
    """The paper's objective: remaining energy + migration overheads."""
    total = 0.0
    for task in context.tasks:
        total += context.energy(task, mapping[task.job_id])
    return total
