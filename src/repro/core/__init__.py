"""The paper's contribution: prediction-aware resource managers.

Three interchangeable mapping strategies solve each RM activation
(map every task in ``S-bar`` to a resource, minimising remaining energy
subject to all deadlines):

* :class:`~repro.core.heuristic.HeuristicResourceManager` — the fast
  knapsack-regret heuristic of Algorithm 1 (Sec. 4.3);
* :class:`~repro.core.milp_rm.MilpResourceManager` — the exact MILP of
  Sec. 4.2, eqs. (1)-(14);
* :class:`~repro.core.exact.ExactResourceManager` — an independent
  branch-and-bound over mappings used to cross-validate the MILP.

:class:`~repro.core.admission.AdmissionController` adds the paper's
admission protocol (try with the predicted task, retry without, reject).
"""

from repro.core.admission import AdmissionController, AdmissionOutcome
from repro.core.base import (
    MappingDecision,
    MappingStrategy,
    mapping_energy,
    mapping_feasible,
    resource_timeline,
)
from repro.core.context import PREDICTED_JOB_ID, PlannedTask, RMContext
from repro.core.exact import ExactResourceManager
from repro.core.heuristic import HeuristicResourceManager
from repro.core.milp_rm import MilpResourceManager, MilpValidationError

__all__ = [
    "PlannedTask",
    "RMContext",
    "PREDICTED_JOB_ID",
    "MappingDecision",
    "MappingStrategy",
    "mapping_feasible",
    "mapping_energy",
    "resource_timeline",
    "HeuristicResourceManager",
    "MilpResourceManager",
    "MilpValidationError",
    "ExactResourceManager",
    "AdmissionController",
    "AdmissionOutcome",
]
