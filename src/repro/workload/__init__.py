"""Workload generation and trace handling.

Implements Sec. 5.1 of the paper:

* :func:`~repro.workload.taskgen.generate_task_set` — 100 task types with
  Gaussian WCET/energy on CPUs and a 2-10x faster/more-efficient GPU;
* :func:`~repro.workload.tracegen.generate_trace` /
  :func:`~repro.workload.tracegen.generate_trace_group` — request streams
  with Gaussian inter-arrival times and VT (very tight) or LT (less tight)
  deadlines;
* :class:`~repro.workload.trace.Trace` — a task set plus request stream,
  with JSON round-tripping;
* :mod:`~repro.workload.patterns` — synthetic streams with learnable
  structure (repeating type motifs, bursty arrivals) used to exercise the
  online predictors of :mod:`repro.predict`.
"""

from repro.workload.taskgen import TaskSetConfig, generate_task_set
from repro.workload.trace import Trace, TraceFormatError, TraceStats
from repro.workload.tracegen import (
    DeadlineGroup,
    TraceConfig,
    generate_trace,
    generate_trace_group,
)
from repro.workload.patterns import PatternConfig, generate_pattern_trace
from repro.workload.io import (
    ClusterEventSchema,
    export_requests_csv,
    import_cluster_events,
    import_requests_csv,
)

__all__ = [
    "export_requests_csv",
    "import_requests_csv",
    "ClusterEventSchema",
    "import_cluster_events",
    "TaskSetConfig",
    "generate_task_set",
    "Trace",
    "TraceFormatError",
    "TraceStats",
    "DeadlineGroup",
    "TraceConfig",
    "generate_trace",
    "generate_trace_group",
    "PatternConfig",
    "generate_pattern_trace",
]
