"""Trace container: a task set plus a request stream.

A :class:`Trace` is the unit of experimentation: the simulator replays one
trace through one resource manager.  Traces serialise to JSON so generated
workloads can be archived and shared.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.model.request import Request
from repro.model.task import NOT_EXECUTABLE, TaskType
from repro.util.atomicio import atomic_write_text

__all__ = ["Trace", "TraceFormatError", "TraceStats"]


class TraceFormatError(ValueError):
    """A serialised trace failed structural validation on load.

    Raised (instead of a raw ``KeyError``/``TypeError``/``JSONDecodeError``)
    for truncated or corrupted JSON, missing or mistyped fields,
    out-of-range values, and duplicate request arrival times — so callers
    reading untrusted trace files get one catchable, descriptive error
    type.
    """


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (used for reporting and calibration)."""

    n_requests: int
    n_task_types: int
    mean_interarrival: float
    span: float
    mean_relative_deadline: float
    energy_demand: float
    """Sum over requests of the triggered task's mean energy across
    resources.  This is the normaliser for Fig. 3's 'normalised energy'
    (see DESIGN.md, semantics item 9)."""


class Trace:
    """A task set together with the request stream that exercises it.

    Parameters
    ----------
    tasks:
        The task types; ``requests[i].type_id`` indexes into this list.
    requests:
        Requests sorted by (non-decreasing) arrival time.
    group:
        Optional label, e.g. ``"VT"`` or ``"LT"``.
    seed:
        The seed the trace was generated from, for provenance.
    """

    def __init__(
        self,
        tasks: Sequence[TaskType],
        requests: Sequence[Request],
        *,
        group: str = "",
        seed: int | None = None,
    ) -> None:
        tasks = tuple(tasks)
        requests = tuple(requests)
        if not tasks:
            raise ValueError("a trace needs at least one task type")
        n_resources = tasks[0].n_resources
        for task in tasks:
            if task.n_resources != n_resources:
                raise ValueError(
                    "all task types in a trace must cover the same resources"
                )
        for prev, nxt in zip(requests, requests[1:], strict=False):
            if nxt.arrival < prev.arrival:
                raise ValueError(
                    f"requests must be sorted by arrival "
                    f"({prev.index}@{prev.arrival} before {nxt.index}@{nxt.arrival})"
                )
        for position, request in enumerate(requests):
            if request.index != position:
                raise ValueError(
                    f"request at position {position} has index {request.index}"
                )
            if not 0 <= request.type_id < len(tasks):
                raise ValueError(
                    f"request {position} references unknown task type "
                    f"{request.type_id}"
                )
        self.tasks = tasks
        self.requests = requests
        self.group = group
        self.seed = seed

    @property
    def n_resources(self) -> int:
        """Number of platform resources the task set was generated for."""
        return self.tasks[0].n_resources

    def task_of(self, request: Request) -> TaskType:
        """The task type triggered by ``request``."""
        return self.tasks[request.type_id]

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> Request:
        return self.requests[index]

    def stats(self) -> TraceStats:
        """Compute summary statistics (see :class:`TraceStats`)."""
        if not self.requests:
            return TraceStats(0, len(self.tasks), 0.0, 0.0, 0.0, 0.0)
        arrivals = [r.arrival for r in self.requests]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:], strict=False)]
        mean_gap = sum(gaps) / len(gaps) if gaps else 0.0
        mean_deadline = sum(r.deadline for r in self.requests) / len(self.requests)
        demand = sum(self.task_of(r).mean_energy() for r in self.requests)
        return TraceStats(
            n_requests=len(self.requests),
            n_task_types=len(self.tasks),
            mean_interarrival=mean_gap,
            span=arrivals[-1] - arrivals[0],
            mean_relative_deadline=mean_deadline,
            energy_demand=demand,
        )

    def mean_interarrival(self) -> float:
        """Mean gap between consecutive arrivals (0 for < 2 requests)."""
        return self.stats().mean_interarrival

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dictionary representation."""
        def encode(v: float) -> float | str:
            return "inf" if math.isinf(v) else v

        return {
            "group": self.group,
            "seed": self.seed,
            "tasks": [
                {
                    "type_id": t.type_id,
                    "name": t.name,
                    "wcet": [encode(c) for c in t.wcet],
                    "energy": [encode(e) for e in t.energy],
                    "migration_time": [list(row) for row in t.migration_time],
                    "migration_energy": [list(row) for row in t.migration_energy],
                }
                for t in self.tasks
            ],
            "requests": [
                {
                    "index": r.index,
                    "arrival": r.arrival,
                    "type_id": r.type_id,
                    "deadline": r.deadline,
                }
                for r in self.requests
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Inverse of :meth:`to_dict`.

        Raises :class:`TraceFormatError` on structurally invalid input
        (missing/mistyped fields, non-finite or out-of-range values,
        duplicate request arrival times) instead of leaking raw
        ``KeyError``/``TypeError``.
        """
        def decode(v: float | str) -> float:
            return NOT_EXECUTABLE if v == "inf" else float(v)

        if not isinstance(data, dict):
            raise TraceFormatError(
                f"trace document must be a JSON object, "
                f"got {type(data).__name__}"
            )
        for key in ("tasks", "requests"):
            if not isinstance(data.get(key), list):
                raise TraceFormatError(
                    f"trace document needs a {key!r} list "
                    f"(truncated or corrupted file?)"
                )
        tasks = []
        for position, t in enumerate(data["tasks"]):
            try:
                tasks.append(
                    TaskType(
                        type_id=t["type_id"],
                        name=t.get("name", ""),
                        wcet=tuple(decode(c) for c in t["wcet"]),
                        energy=tuple(decode(e) for e in t["energy"]),
                        migration_time=tuple(
                            tuple(row) for row in t["migration_time"]
                        ),
                        migration_energy=tuple(
                            tuple(row) for row in t["migration_energy"]
                        ),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceFormatError(
                    f"task {position}: {type(exc).__name__}: {exc}"
                ) from exc
        requests = []
        for position, r in enumerate(data["requests"]):
            try:
                request = Request(
                    index=int(r["index"]),
                    arrival=float(r["arrival"]),
                    type_id=int(r["type_id"]),
                    deadline=float(r["deadline"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceFormatError(
                    f"request {position}: {type(exc).__name__}: {exc}"
                ) from exc
            if not math.isfinite(request.arrival):
                raise TraceFormatError(
                    f"request {position}: arrival must be finite, "
                    f"got {request.arrival}"
                )
            if not math.isfinite(request.deadline):
                raise TraceFormatError(
                    f"request {position}: deadline must be finite, "
                    f"got {request.deadline}"
                )
            if requests and request.arrival == requests[-1].arrival:
                raise TraceFormatError(
                    f"request {position}: duplicate arrival time "
                    f"{request.arrival} (requests {requests[-1].index} and "
                    f"{request.index})"
                )
            requests.append(request)
        try:
            return cls(
                tasks,
                requests,
                group=data.get("group", ""),
                seed=data.get("seed"),
            )
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(str(exc)) from exc

    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` as JSON (atomically)."""
        atomic_write_text(path, json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace previously written by :meth:`save`.

        Raises :class:`TraceFormatError` for unreadable JSON (e.g. a
        file truncated by a crash) or a structurally invalid document.
        """
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{path}: not valid JSON (truncated or corrupted?): {exc}"
            ) from exc
        try:
            return cls.from_dict(data)
        except TraceFormatError as exc:
            raise TraceFormatError(f"{path}: {exc}") from exc

    def __eq__(self, other: object) -> bool:
        """Structural equality: same tasks, requests, group and seed.

        Exact (float-by-float), so ``Trace.from_dict(t.to_dict()) == t``
        holds for every valid trace — the round-trip contract pinned by
        the workload I/O property tests.
        """
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.tasks == other.tasks
            and self.requests == other.requests
            and self.group == other.group
            and self.seed == other.seed
        )

    __hash__ = None  # type: ignore[assignment]  # mutable container semantics

    def __repr__(self) -> str:
        label = f" group={self.group}" if self.group else ""
        return (
            f"Trace({len(self.requests)} requests, {len(self.tasks)} types,"
            f"{label})"
        )
