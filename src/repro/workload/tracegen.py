"""Trace generation (Sec. 5.1 of the paper).

The paper creates 500 traces of 500 requests per deadline group:

* inter-arrival times drawn from ``Gaussian(1.2, 0.4^2)``;
* the task of each request chosen uniformly from the task set;
* the relative deadline ``d_j = RWCET * C`` where ``RWCET`` is the task's
  WCET on a uniformly random resource and ``C`` is uniform in ``[1.5, 2]``
  for the *very tight* (VT) group or ``[2, 6]`` for the *less tight* (LT)
  group.

Unit calibration
----------------
Taken literally in the same unit as the WCETs (mean 40), a mean
inter-arrival of 1.2 gives a load of ~5.5x the platform capacity, i.e. a
baseline rejection around 80% — far from the paper's reported 24.5%/31%.
Scaled to seconds-vs-milliseconds the load becomes negligible (~0%
rejection).  The paper evidently uses an unstated scale; we expose it as
``arrival_scale`` (inter-arrival ~ ``Gaussian(1.2, 0.4^2) * arrival_scale``)
and default it to the value calibrated in EXPERIMENTS.md to land the
no-prediction baseline in the paper's rejection band, preserving every
*relative* effect the paper reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.model.request import Request
from repro.model.task import TaskType
from repro.util.rng import RngStreams
from repro.util.validation import check_non_negative, check_positive
from repro.workload.taskgen import TaskSetConfig, generate_task_set
from repro.workload.trace import Trace

__all__ = [
    "DeadlineGroup",
    "TraceConfig",
    "generate_trace",
    "generate_trace_group",
    "DEFAULT_ARRIVAL_SCALE",
]

DEFAULT_ARRIVAL_SCALE: float = 3.0
"""Calibrated inter-arrival scale (see module docstring and EXPERIMENTS.md)."""


class DeadlineGroup(enum.Enum):
    """The paper's two deadline-tightness categories."""

    VT = "VT"
    """Very tight: coefficient ``C`` uniform in ``[1.5, 2]``."""

    LT = "LT"
    """Less tight: coefficient ``C`` uniform in ``[2, 6]``."""

    @property
    def coefficient_range(self) -> tuple[float, float]:
        return (1.5, 2.0) if self is DeadlineGroup.VT else (2.0, 6.0)


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of the paper's trace generator.

    Attributes
    ----------
    n_requests:
        Requests per trace (paper: 500).
    group:
        Deadline-tightness group (VT or LT).
    interarrival_mean, interarrival_std:
        Gaussian inter-arrival parameters (paper: 1.2, 0.4) before scaling.
    arrival_scale:
        Calibration factor multiplying every inter-arrival draw (see
        module docstring).
    min_interarrival:
        Floor for inter-arrival draws (re-sampled below it) so arrivals
        strictly increase.
    """

    n_requests: int = 500
    group: DeadlineGroup = DeadlineGroup.VT
    interarrival_mean: float = 1.2
    interarrival_std: float = 0.4
    arrival_scale: float = DEFAULT_ARRIVAL_SCALE
    min_interarrival: float = 1e-3

    def __post_init__(self) -> None:
        check_positive("n_requests", self.n_requests)
        check_positive("interarrival_mean", self.interarrival_mean)
        check_non_negative("interarrival_std", self.interarrival_std)
        check_positive("arrival_scale", self.arrival_scale)
        check_positive("min_interarrival", self.min_interarrival)

    @property
    def mean_interarrival(self) -> float:
        """Expected gap between arrivals after scaling."""
        return self.interarrival_mean * self.arrival_scale


def _draw_interarrival(rng: np.random.Generator, config: TraceConfig) -> float:
    """One positive inter-arrival draw (truncated Gaussian, scaled)."""
    for _ in range(1000):
        gap = float(rng.normal(config.interarrival_mean, config.interarrival_std))
        if gap * config.arrival_scale >= config.min_interarrival:
            return gap * config.arrival_scale
    return config.min_interarrival


def _draw_deadline(
    rng: np.random.Generator, task: TaskType, group: DeadlineGroup
) -> float:
    """Relative deadline: a random executable-resource WCET times ``C``."""
    executable = task.executable_resources
    rwcet = task.wcet[int(rng.choice(executable))]
    lo, hi = group.coefficient_range
    return rwcet * float(rng.uniform(lo, hi))


def generate_trace(
    tasks: list[TaskType],
    config: TraceConfig | None = None,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> Trace:
    """Generate one trace over an existing task set.

    Parameters
    ----------
    tasks:
        The task types to draw from (see
        :func:`~repro.workload.taskgen.generate_task_set`).
    config:
        Generation parameters; defaults reproduce Sec. 5.1 (VT group).
    rng:
        Generator to consume; a fresh default generator if omitted.
    seed:
        Provenance tag stored on the trace (not used for drawing when
        ``rng`` is given).  Without ``rng`` it also seeds the default
        generator; ``seed=None`` falls back to seed 0 so the default is
        deterministic either way.
    """
    if not tasks:
        raise ValueError("task set must be non-empty")
    config = config or TraceConfig()
    rng = (
        rng
        if rng is not None
        else np.random.default_rng(seed if seed is not None else 0)
    )
    requests: list[Request] = []
    arrival = 0.0
    for index in range(config.n_requests):
        if index > 0:
            arrival += _draw_interarrival(rng, config)
        type_id = int(rng.integers(0, len(tasks)))
        deadline = _draw_deadline(rng, tasks[type_id], config.group)
        requests.append(
            Request(
                index=index, arrival=arrival, type_id=type_id, deadline=deadline
            )
        )
    return Trace(tasks, requests, group=config.group.value, seed=seed)


def generate_trace_group(
    n_traces: int,
    *,
    group: DeadlineGroup,
    platform_cpus: int = 5,
    platform_gpus: int = 1,
    task_config: TaskSetConfig | None = None,
    trace_config: TraceConfig | None = None,
    master_seed: int = 0,
) -> list[Trace]:
    """Generate a full experiment group as in Sec. 5.1.

    One task set is generated per trace (seeded independently), matching
    the paper's "after creating the task sets, 500 traces ... are
    created".  Each trace is fully determined by ``(master_seed, group,
    index)``.
    """
    from repro.model.platform import Platform

    check_positive("n_traces", n_traces)
    platform = Platform.cpu_gpu(platform_cpus, platform_gpus)
    if trace_config is not None and trace_config.group is not group:
        raise ValueError(
            f"trace_config.group={trace_config.group} conflicts with group={group}"
        )
    trace_config = trace_config or TraceConfig(group=group)
    streams = RngStreams(master_seed)
    traces: list[Trace] = []
    for index in range(n_traces):
        task_rng = streams.fresh(f"tasks:{group.value}:{index}")
        trace_rng = streams.fresh(f"trace:{group.value}:{index}")
        tasks = generate_task_set(platform, task_config, rng=task_rng)
        traces.append(
            generate_trace(tasks, trace_config, rng=trace_rng, seed=master_seed)
        )
    return traces
