"""Trace interchange: CSV round-trip and cluster-event-log import.

Two interoperability paths beyond the native JSON format of
:class:`~repro.workload.trace.Trace`:

* :func:`export_requests_csv` / :func:`import_requests_csv` — the request
  stream as a flat CSV (``index,arrival,type_id,deadline``), convenient
  for spreadsheets and external tools.  The task set travels separately
  (JSON), since it is not tabular.
* :func:`import_cluster_events` — an adapter for *task-event logs* in the
  style of the Google cluster-usage traces the paper's prior work [12-14]
  builds on: one row per scheduler event with a timestamp, a job
  identifier, an event type and resource-request columns.  SUBMIT events
  become requests; the event's resource-request signature is hashed onto
  the local task set (documented, deterministic), and deadlines are drawn
  with the Sec. 5.1 rule since cluster logs carry no deadlines.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.model.request import Request
from repro.model.task import TaskType
from repro.util.validation import check_non_empty, check_positive
from repro.workload.trace import Trace, TraceFormatError
from repro.workload.tracegen import DeadlineGroup, _draw_deadline

__all__ = [
    "export_requests_csv",
    "import_requests_csv",
    "ClusterEventSchema",
    "import_cluster_events",
]

_CSV_HEADER = ["index", "arrival", "type_id", "deadline"]


def export_requests_csv(trace: Trace, path: str | Path) -> None:
    """Write the request stream of ``trace`` as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for request in trace:
            writer.writerow(
                [request.index, request.arrival, request.type_id,
                 request.deadline]
            )


def import_requests_csv(
    path: str | Path,
    tasks: list[TaskType],
    *,
    group: str = "",
) -> Trace:
    """Read a request stream written by :func:`export_requests_csv`.

    ``tasks`` supplies the task set the ``type_id`` column refers to.

    Malformed input (wrong header, short rows, unparsable or
    out-of-range fields) raises
    :class:`~repro.workload.trace.TraceFormatError` with the offending
    line number.
    """
    check_non_empty("tasks", tasks)
    requests: list[Request] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise TraceFormatError(
                f"{path}: unexpected CSV header {header!r}; "
                f"expected {_CSV_HEADER}"
            )
        for line, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(_CSV_HEADER):
                raise TraceFormatError(
                    f"{path}:{line}: expected {len(_CSV_HEADER)} columns, "
                    f"got {len(row)} (truncated row?)"
                )
            try:
                requests.append(
                    Request(
                        index=int(row[0]),
                        arrival=float(row[1]),
                        type_id=int(row[2]),
                        deadline=float(row[3]),
                    )
                )
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{line}: {exc}") from exc
    try:
        return Trace(tasks, requests, group=group)
    except ValueError as exc:
        raise TraceFormatError(f"{path}: {exc}") from exc


@dataclass(frozen=True)
class ClusterEventSchema:
    """Column layout of a cluster task-event CSV.

    Defaults follow the Google cluster-usage *task events* table:
    column 0 is a microsecond timestamp, column 2 the job id, column 5
    the event type (0 = SUBMIT), and columns 9/10 the CPU/memory request
    (fractions of machine capacity).  Adjust the indices for other logs.
    """

    timestamp_column: int = 0
    job_id_column: int = 2
    event_type_column: int = 5
    cpu_request_column: int = 9
    memory_request_column: int = 10
    submit_event_type: str = "0"
    timestamp_unit: float = 1e-6
    """Multiplier converting raw timestamps to the simulator's time unit
    (Google traces: microseconds)."""


def _signature_type(
    cpu: str, memory: str, n_types: int
) -> int:
    """Deterministically map a resource-request signature to a task type.

    Requests are rounded to two decimals so near-identical submissions of
    the same program (the repetition the predictors exploit) land on the
    same type.
    """
    def round2(text: str) -> str:
        try:
            return f"{float(text):.2f}"
        except ValueError:
            return text
    payload = f"{round2(cpu)}|{round2(memory)}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:4], "big") % n_types


def import_cluster_events(
    path: str | Path,
    tasks: list[TaskType],
    *,
    schema: ClusterEventSchema | None = None,
    group: DeadlineGroup = DeadlineGroup.VT,
    max_requests: int | None = None,
    deadline_rng: np.random.Generator | None = None,
) -> Trace:
    """Convert a cluster task-event log into a :class:`Trace`.

    Parameters
    ----------
    path:
        CSV file of scheduler events (no header row, per the Google
        trace format).
    tasks:
        The local task set submissions are mapped onto (see
        :func:`_signature_type`).
    schema:
        Column layout (defaults to the Google task-events table).
    group:
        Deadline-tightness rule used to synthesise the deadlines the log
        does not contain.
    max_requests:
        Optional cap on imported SUBMIT events.
    deadline_rng:
        Generator for the deadline draws (seeded default if omitted).
    """
    check_non_empty("tasks", tasks)
    if max_requests is not None:
        check_positive("max_requests", max_requests)
    schema = schema or ClusterEventSchema()
    rng = (
        deadline_rng
        if deadline_rng is not None
        else np.random.default_rng(0)
    )
    rows: list[tuple[float, int]] = []  # (arrival, type_id)
    needed = max(
        schema.timestamp_column,
        schema.event_type_column,
        schema.cpu_request_column,
        schema.memory_request_column,
    )
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if len(row) <= needed:
                continue
            if row[schema.event_type_column].strip() != schema.submit_event_type:
                continue
            raw_timestamp = row[schema.timestamp_column].strip()
            if not raw_timestamp:
                continue
            arrival = float(raw_timestamp) * schema.timestamp_unit
            type_id = _signature_type(
                row[schema.cpu_request_column],
                row[schema.memory_request_column],
                len(tasks),
            )
            rows.append((arrival, type_id))
            if max_requests is not None and len(rows) >= max_requests:
                break
    if not rows:
        raise ValueError(f"no SUBMIT events found in {path}")
    rows.sort(key=lambda r: r[0])
    origin = rows[0][0]
    requests = []
    previous = -1.0
    for index, (arrival, type_id) in enumerate(rows):
        # Strictly increasing arrivals (simultaneous submissions are
        # nudged by a nanosecond so EDF stays deterministic).
        moment = max(arrival - origin, previous + 1e-9)
        previous = moment
        deadline = _draw_deadline(rng, tasks[type_id], group)
        requests.append(
            Request(
                index=index,
                arrival=moment,
                type_id=type_id,
                deadline=deadline,
            )
        )
    return Trace(tasks, requests, group=f"cluster-{group.value}")
