"""Task-set generation (Sec. 5.1 of the paper).

The paper creates 100 task types for a platform of five CPUs and one GPU:

* WCET on each CPU drawn from ``Gaussian(40, 9^2)``;
* energy on each CPU drawn from ``Gaussian(15, 3^2)``;
* GPU WCET / energy = the CPU averages divided by a random factor in
  ``[2, 10]``;
* migration overhead (time, energy) drawn uniformly in ``[0.1, 0.2]`` of
  the task's average WCET / energy over all resources.

All parameters are exposed through :class:`TaskSetConfig` so ablations
(e.g. slower GPUs, partially GPU-incompatible task sets) are one-liners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.platform import Platform
from repro.model.task import NOT_EXECUTABLE, TaskType
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = ["TaskSetConfig", "generate_task_set"]


@dataclass(frozen=True)
class TaskSetConfig:
    """Parameters of the paper's task-set generator.

    The defaults reproduce Sec. 5.1 exactly.

    Attributes
    ----------
    n_tasks:
        Number of task types (paper: 100).
    cpu_wcet_mean, cpu_wcet_std:
        Gaussian parameters for per-CPU WCET (paper: 40, 9).
    cpu_energy_mean, cpu_energy_std:
        Gaussian parameters for per-CPU energy (paper: 15, 3).
    accel_speedup_range:
        The non-preemptable (GPU-like) resources receive
        ``cpu_average / Uniform(range)`` for both WCET and energy
        (paper: 2-10).
    migration_fraction_range:
        Migration overhead as a fraction of the task's mean WCET/energy
        over all resources (paper: 0.1-0.2); drawn independently per
        (source, destination) resource pair.
    accel_incompatible_fraction:
        Fraction of task types that cannot run on the non-preemptable
        resources at all (an extension beyond the paper; default 0).
    min_wcet, min_energy:
        Truncation floors for the Gaussians, so degenerate non-positive
        draws are re-sampled.
    """

    n_tasks: int = 100
    cpu_wcet_mean: float = 40.0
    cpu_wcet_std: float = 9.0
    cpu_energy_mean: float = 15.0
    cpu_energy_std: float = 3.0
    accel_speedup_range: tuple[float, float] = (2.0, 10.0)
    migration_fraction_range: tuple[float, float] = (0.1, 0.2)
    accel_incompatible_fraction: float = 0.0
    min_wcet: float = 1.0
    min_energy: float = 0.1

    def __post_init__(self) -> None:
        check_positive("n_tasks", self.n_tasks)
        check_positive("cpu_wcet_mean", self.cpu_wcet_mean)
        check_non_negative("cpu_wcet_std", self.cpu_wcet_std)
        check_positive("cpu_energy_mean", self.cpu_energy_mean)
        check_non_negative("cpu_energy_std", self.cpu_energy_std)
        lo, hi = self.accel_speedup_range
        check_positive("accel_speedup_range low", lo)
        check_in_range("accel_speedup_range", hi, lo, float("inf"))
        mlo, mhi = self.migration_fraction_range
        check_non_negative("migration_fraction_range low", mlo)
        check_in_range("migration_fraction_range", mhi, mlo, float("inf"))
        check_probability(
            "accel_incompatible_fraction", self.accel_incompatible_fraction
        )
        check_positive("min_wcet", self.min_wcet)
        check_positive("min_energy", self.min_energy)


def _truncated_normal(
    rng: np.random.Generator, mean: float, std: float, floor: float
) -> float:
    """One Gaussian draw, re-sampled until it clears ``floor``."""
    for _ in range(1000):
        value = float(rng.normal(mean, std))
        if value >= floor:
            return value
    # Pathological configuration (mean far below floor): clamp.
    return floor


def generate_task_set(
    platform: Platform,
    config: TaskSetConfig | None = None,
    *,
    rng: np.random.Generator | None = None,
) -> list[TaskType]:
    """Generate a task set for ``platform`` per :class:`TaskSetConfig`.

    Preemptable resources are treated as CPUs (independent Gaussian draws
    per resource); non-preemptable resources as accelerators (GPU rule:
    the CPU average divided by a uniform speedup factor, one factor per
    task applied to both time and energy).

    Returns a list of :class:`~repro.model.task.TaskType` whose vectors
    are indexed by ``platform`` resource indices.

    Omitting ``rng`` yields the fixed seed-0 stream: every call in the
    repo must be deterministic, so there is no nondeterministic default.
    """
    config = config or TaskSetConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    cpu_idx = platform.preemptable_indices
    accel_idx = platform.non_preemptable_indices
    if not cpu_idx:
        raise ValueError(
            "the paper's generator needs at least one preemptable (CPU) resource"
        )
    lo_speed, hi_speed = config.accel_speedup_range
    lo_mig, hi_mig = config.migration_fraction_range
    n = platform.size
    tasks: list[TaskType] = []
    for type_id in range(config.n_tasks):
        wcet = [0.0] * n
        energy = [0.0] * n
        for i in cpu_idx:
            wcet[i] = _truncated_normal(
                rng, config.cpu_wcet_mean, config.cpu_wcet_std, config.min_wcet
            )
            energy[i] = _truncated_normal(
                rng, config.cpu_energy_mean, config.cpu_energy_std, config.min_energy
            )
        cpu_wcet_avg = sum(wcet[i] for i in cpu_idx) / len(cpu_idx)
        cpu_energy_avg = sum(energy[i] for i in cpu_idx) / len(cpu_idx)
        incompatible = (
            bool(accel_idx)
            and float(rng.random()) < config.accel_incompatible_fraction
        )
        for i in accel_idx:
            if incompatible:
                wcet[i] = NOT_EXECUTABLE
                energy[i] = NOT_EXECUTABLE
            else:
                speedup = float(rng.uniform(lo_speed, hi_speed))
                wcet[i] = max(cpu_wcet_avg / speedup, config.min_wcet * 1e-3)
                energy[i] = max(cpu_energy_avg / speedup, 0.0)
        finite_wcet = [c for c in wcet if c != NOT_EXECUTABLE]
        finite_energy = [e for e in energy if e != NOT_EXECUTABLE]
        mean_wcet = sum(finite_wcet) / len(finite_wcet)
        mean_energy = sum(finite_energy) / len(finite_energy)
        mig_time = [
            [
                0.0
                if k == i
                else float(rng.uniform(lo_mig, hi_mig)) * mean_wcet
                for i in range(n)
            ]
            for k in range(n)
        ]
        mig_energy = [
            [
                0.0
                if k == i
                else float(rng.uniform(lo_mig, hi_mig)) * mean_energy
                for i in range(n)
            ]
            for k in range(n)
        ]
        tasks.append(
            TaskType(
                type_id=type_id,
                name=f"task{type_id}",
                wcet=tuple(wcet),
                energy=tuple(energy),
                migration_time=tuple(tuple(row) for row in mig_time),
                migration_energy=tuple(tuple(row) for row in mig_energy),
            )
        )
    return tasks
