"""Struct-of-arrays trace representation for the vectorised kernel.

A :class:`SoATrace` holds the request stream as parallel numpy arrays
(arrival, type id, relative deadline) plus dense per-type WCET/energy
tables, instead of one Python object per request (DESIGN.md §14).  The
vectorised simulation kernel (:mod:`repro.sim.kernels`) consumes this
layout directly; :meth:`SoATrace.from_trace` converts the object form,
and :func:`generate_idle_soa` synthesises huge benchmark traces (10⁷
events fit comfortably: three float64/int64 arrays, ~240 MB) without
ever materialising Python request objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.trace import Trace

__all__ = ["SoATrace", "generate_idle_soa"]


@dataclass(frozen=True)
class SoATrace:
    """One trace as parallel arrays (see module docstring).

    Attributes
    ----------
    arrival:
        Absolute arrival times, non-decreasing (float64, shape ``(n,)``).
    type_id:
        Task-type index per request (int64, shape ``(n,)``).
    deadline:
        Relative deadline per request (float64, shape ``(n,)``).
    wcet, energy:
        Dense per-type tables, shape ``(n_types, n_resources)``;
        ``inf`` marks (type, resource) pairs the task cannot run on —
        the same sentinel the object model uses
        (:data:`repro.model.task.NOT_EXECUTABLE`).
    """

    arrival: np.ndarray
    type_id: np.ndarray
    deadline: np.ndarray
    wcet: np.ndarray
    energy: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.arrival)
        if not (len(self.type_id) == len(self.deadline) == n):
            raise ValueError("arrival/type_id/deadline lengths differ")
        if self.wcet.shape != self.energy.shape or self.wcet.ndim != 2:
            raise ValueError("wcet and energy must be equal-shape 2-D tables")
        if n and (
            self.type_id.min() < 0 or self.type_id.max() >= len(self.wcet)
        ):
            raise ValueError("type_id out of range for the task tables")
        if n > 1 and np.any(np.diff(self.arrival) < 0):
            raise ValueError("arrivals must be non-decreasing")

    def __len__(self) -> int:
        return len(self.arrival)

    @property
    def n_types(self) -> int:
        return self.wcet.shape[0]

    @property
    def n_resources(self) -> int:
        return self.wcet.shape[1]

    @classmethod
    def from_trace(cls, trace: "Trace") -> "SoATrace":
        """Convert the object representation (one pass, O(n))."""
        n = len(trace.requests)
        arrival = np.fromiter(
            (request.arrival for request in trace.requests),
            dtype=np.float64,
            count=n,
        )
        type_id = np.fromiter(
            (request.type_id for request in trace.requests),
            dtype=np.int64,
            count=n,
        )
        deadline = np.fromiter(
            (request.deadline for request in trace.requests),
            dtype=np.float64,
            count=n,
        )
        wcet = np.array([task.wcet for task in trace.tasks], dtype=np.float64)
        energy = np.array(
            [task.energy for task in trace.tasks], dtype=np.float64
        )
        return cls(
            arrival=arrival,
            type_id=type_id,
            deadline=deadline,
            wcet=wcet,
            energy=energy,
        )

    def to_trace(self, *, group: str = "", seed: int | None = None) -> "Trace":
        """Materialise Python request objects (test-scale convenience)."""
        from repro.model.request import Request
        from repro.model.task import TaskType
        from repro.workload.trace import Trace

        tasks = [
            TaskType(
                type_id=index,
                wcet=tuple(self.wcet[index].tolist()),
                energy=tuple(self.energy[index].tolist()),
            )
            for index in range(self.n_types)
        ]
        requests = [
            Request(
                index=index,
                arrival=float(self.arrival[index]),
                type_id=int(self.type_id[index]),
                deadline=float(self.deadline[index]),
            )
            for index in range(len(self))
        ]
        return Trace(tasks, requests, group=group, seed=seed)


def generate_idle_soa(
    n_requests: int,
    *,
    n_types: int = 8,
    n_resources: int = 6,
    seed: int = 0,
    utilisation: float = 0.5,
) -> SoATrace:
    """A huge sparse trace where every request is an idle-point singleton.

    Arrival gaps always exceed the previous request's relative deadline
    plus the idle-cut margin, so the whole trace vectorises (and shards)
    perfectly — the best case the 10⁷-event benchmark scenario measures.
    ``utilisation`` scales WCETs against the deadlines (0.5 = requests
    demand half their deadline budget on the fastest resource).
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    rng = np.random.default_rng(seed)
    wcet = rng.uniform(0.5, 2.0, size=(n_types, n_resources))
    # Resource 0 is the "GPU": fast but power-hungry, like the paper's
    # heterogeneous platform; a few (type, resource) pairs are
    # unavailable.
    wcet[:, 0] *= 0.4
    energy = wcet * rng.uniform(1.0, 4.0, size=(n_types, n_resources))
    energy[:, 0] *= 3.0
    blocked = rng.random(size=(n_types, n_resources)) < 0.15
    blocked[:, 1] = False  # every type keeps at least one CPU
    wcet[blocked] = np.inf
    energy[blocked] = np.inf
    type_id = rng.integers(0, n_types, size=n_requests)
    slowest = np.where(np.isinf(wcet), -np.inf, wcet).max(axis=1)
    deadline = slowest[type_id] / utilisation
    # A small infeasible fraction keeps the rejection branch honest in
    # benchmarks: deadlines below the fastest WCET cannot be admitted.
    fastest = np.where(np.isinf(wcet), np.inf, wcet).min(axis=1)
    tight = rng.random(size=n_requests) < 0.05
    deadline[tight] = fastest[type_id[tight]] * 0.5
    # Gap beyond the deadline guarantees the idle-cut margin with room
    # to spare at any absolute time this trace can reach.
    gaps = deadline + rng.uniform(0.01, 1.0, size=n_requests)
    arrival = np.cumsum(np.concatenate(([0.0], gaps[:-1])))
    return SoATrace(
        arrival=arrival,
        type_id=type_id,
        deadline=deadline,
        wcet=wcet,
        energy=energy,
    )
