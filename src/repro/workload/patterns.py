"""Pattern-bearing synthetic request streams.

The paper's prediction premise (from the authors' prior work [12, 13]) is
that real request streams — e.g. the Google cluster traces — contain
patterns in *which* task types arrive and in their *inter-arrival times*,
and that lightweight online predictors can exploit them (80-95% type
accuracy, <17% arrival error).

The Gaussian traces of Sec. 5.1 are deliberately pattern-free (types are
uniform i.i.d.), which is fine for the paper's accuracy-sweep methodology
(the predictor is emulated at a chosen accuracy) but gives learned
predictors nothing to learn.  This module generates streams with
controllable structure so the online predictors in :mod:`repro.predict`
can be exercised end-to-end:

* task types follow a hidden repeating *motif* (e.g. ``A B C A B D``)
  with a configurable mutation probability;
* inter-arrival times cycle through *phases* (e.g. bursty vs idle), each
  phase with its own Gaussian, mimicking diurnal/bursty cluster load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.request import Request
from repro.model.task import TaskType
from repro.util.validation import check_positive, check_probability
from repro.workload.tracegen import DeadlineGroup, _draw_deadline
from repro.workload.trace import Trace

__all__ = ["PatternConfig", "generate_pattern_trace"]


@dataclass(frozen=True)
class PatternConfig:
    """Parameters of the pattern stream generator.

    Attributes
    ----------
    n_requests:
        Stream length.
    motif_length:
        Length of the hidden repeating type motif.
    type_mutation_prob:
        Probability that a request deviates from the motif (uniform random
        type instead).  ``0.1`` yields streams where a first-order
        predictor can reach ~90% accuracy.
    phases:
        Inter-arrival phases as ``(mean, std, length)`` tuples: the stream
        draws ``length`` gaps from ``Gaussian(mean, std^2)`` then moves to
        the next phase, cycling.
    group:
        Deadline group used to draw relative deadlines (same rule as
        Sec. 5.1).
    min_interarrival:
        Floor for gap draws.
    """

    n_requests: int = 500
    motif_length: int = 8
    type_mutation_prob: float = 0.1
    phases: tuple[tuple[float, float, int], ...] = (
        (3.0, 0.3, 40),
        (8.0, 0.8, 20),
    )
    group: DeadlineGroup = DeadlineGroup.VT
    min_interarrival: float = 1e-3

    def __post_init__(self) -> None:
        check_positive("n_requests", self.n_requests)
        check_positive("motif_length", self.motif_length)
        check_probability("type_mutation_prob", self.type_mutation_prob)
        if not self.phases:
            raise ValueError("at least one inter-arrival phase is required")
        for mean, std, length in self.phases:
            check_positive("phase mean", mean)
            if std < 0:
                raise ValueError(f"phase std must be >= 0, got {std}")
            check_positive("phase length", length)
        check_positive("min_interarrival", self.min_interarrival)


def generate_pattern_trace(
    tasks: list[TaskType],
    config: PatternConfig | None = None,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> Trace:
    """Generate a structured stream over ``tasks``.

    The hidden motif is drawn once (uniformly over task types) and then
    repeated with per-request mutation; inter-arrival phases cycle as
    configured.  The returned trace is a drop-in replacement for the
    Sec. 5.1 traces everywhere in the library.
    """
    if not tasks:
        raise ValueError("task set must be non-empty")
    config = config or PatternConfig()
    rng = rng if rng is not None else np.random.default_rng(seed)
    motif = [int(rng.integers(0, len(tasks))) for _ in range(config.motif_length)]

    # Pre-compute the phase schedule: which (mean, std) applies to each gap.
    phase_cycle: list[tuple[float, float]] = []
    for mean, std, length in config.phases:
        phase_cycle.extend([(mean, std)] * int(length))

    requests: list[Request] = []
    arrival = 0.0
    for index in range(config.n_requests):
        if index > 0:
            mean, std = phase_cycle[(index - 1) % len(phase_cycle)]
            gap = float(rng.normal(mean, std))
            arrival += max(gap, config.min_interarrival)
        type_id = motif[index % config.motif_length]
        if float(rng.random()) < config.type_mutation_prob:
            type_id = int(rng.integers(0, len(tasks)))
        deadline = _draw_deadline(rng, tasks[type_id], config.group)
        requests.append(
            Request(
                index=index, arrival=arrival, type_id=type_id, deadline=deadline
            )
        )
    return Trace(tasks, requests, group=f"pattern-{config.group.value}", seed=seed)
