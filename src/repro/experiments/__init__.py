"""The paper's evaluation, experiment by experiment.

One module per table/figure (see DESIGN.md's experiment index):

* E1  ``sec52_milp_vs_heuristic`` — MILP vs heuristic without prediction
  (mean rejection, per-trace win fraction);
* E2  ``fig2_rejection`` — rejection with/without prediction, LT and VT;
* E3  ``fig3_energy`` — normalised energy of the same runs;
* E4/E5  ``fig4_accuracy`` — rejection vs type / arrival-time accuracy;
* E6  ``fig5_overhead`` — rejection vs prediction overhead (crossover);
* E7  ``motivational`` — Table 1 / Fig. 1 scenario, exact outcomes;
* E8  ``fig4_frontier`` — accuracy-vs-energy frontier of the online
  predictor suite under drift scenarios (DESIGN.md §16).

Every experiment accepts a :class:`~repro.experiments.config.HarnessScale`
and defaults to a reduced configuration controlled by ``REPRO_TRACES`` /
``REPRO_REQUESTS`` / ``REPRO_FULL`` / ``REPRO_SEED``.  Passing
``parallel=ParallelConfig(jobs=N)`` (or ``--jobs N`` on the CLI) fans
the (configuration x trace) matrix out over worker processes with
results bit-identical to the serial path
(:mod:`repro.experiments.executor`).
"""

from repro.experiments.config import CALIBRATED_ARRIVAL_SCALE, HarnessScale
from repro.experiments.common import (
    STRATEGIES,
    standard_platform,
    standard_traces,
    strategy_factory,
)
from repro.experiments.executor import ParallelConfig, execute_matrix
from repro.experiments.fig2_rejection import (
    PredictionImpactResult,
    render_fig2,
    run_prediction_impact,
)
from repro.experiments.fig3_energy import energy_follows_acceptance, render_fig3
from repro.experiments.fig4_accuracy import (
    DEFAULT_ACCURACY_LEVELS,
    AccuracySweepResult,
    render_fig4,
    run_accuracy_sweep,
)
from repro.experiments.fig4_frontier import (
    DEFAULT_FRONTIER_PREDICTORS,
    DRIFT_SCENARIOS,
    FrontierCell,
    FrontierResult,
    drift_plan,
    frontier_csv,
    render_fig4_frontier,
    run_frontier,
    write_frontier_csv,
)
from repro.experiments.fig5_overhead import (
    DEFAULT_OVERHEAD_COEFFICIENTS,
    OverheadSweepResult,
    render_fig5,
    run_overhead_sweep,
)
from repro.experiments.motivational import (
    MotivationalOutcome,
    render_motivational,
    run_motivational,
)
from repro.experiments.report_all import FullReport, run_all
from repro.experiments.runner import (
    Aggregate,
    CellFailure,
    CellStats,
    RunSpec,
    run_matrix,
)
from repro.experiments.sec52_milp_vs_heuristic import (
    Sec52Result,
    render_sec52,
    run_sec52,
)

__all__ = [
    "HarnessScale",
    "CALIBRATED_ARRIVAL_SCALE",
    "STRATEGIES",
    "standard_platform",
    "standard_traces",
    "strategy_factory",
    "RunSpec",
    "Aggregate",
    "CellFailure",
    "CellStats",
    "ParallelConfig",
    "execute_matrix",
    "run_matrix",
    "run_all",
    "FullReport",
    "run_prediction_impact",
    "PredictionImpactResult",
    "render_fig2",
    "render_fig3",
    "energy_follows_acceptance",
    "run_accuracy_sweep",
    "AccuracySweepResult",
    "DEFAULT_ACCURACY_LEVELS",
    "render_fig4",
    "run_frontier",
    "FrontierCell",
    "FrontierResult",
    "DEFAULT_FRONTIER_PREDICTORS",
    "DRIFT_SCENARIOS",
    "drift_plan",
    "frontier_csv",
    "write_frontier_csv",
    "render_fig4_frontier",
    "run_overhead_sweep",
    "OverheadSweepResult",
    "DEFAULT_OVERHEAD_COEFFICIENTS",
    "render_fig5",
    "run_sec52",
    "Sec52Result",
    "render_sec52",
    "run_motivational",
    "MotivationalOutcome",
    "render_motivational",
]
