"""Shared builders for the experiment modules.

All experiments use the paper's platform (five CPUs + one GPU), the
Sec. 5.1 generators with the calibrated inter-arrival scale, and the
library-wide strategy registry (:mod:`repro.registry` — re-exported here
for backwards compatibility; the experiments no longer keep a private
copy).
"""

from __future__ import annotations

from repro.experiments.config import CALIBRATED_ARRIVAL_SCALE, HarnessScale
from repro.model.platform import Platform
from repro.registry import STRATEGIES, strategy_factory
from repro.workload.trace import Trace
from repro.workload.tracegen import (
    DeadlineGroup,
    TraceConfig,
    generate_trace_group,
)

__all__ = [
    "STRATEGIES",
    "standard_platform",
    "standard_traces",
    "strategy_factory",
]


def standard_platform() -> Platform:
    """The paper's experimental platform: five CPUs and one GPU."""
    return Platform.cpu_gpu(n_cpus=5, n_gpus=1)


def standard_traces(
    group: DeadlineGroup,
    scale: HarnessScale,
    *,
    arrival_scale: float = CALIBRATED_ARRIVAL_SCALE,
) -> list[Trace]:
    """The Sec. 5.1 trace group at the harness scale.

    Fully determined by ``(scale.master_seed, group)``: every experiment
    comparing configurations over the same group sees identical traces.
    """
    return generate_trace_group(
        scale.n_traces,
        group=group,
        trace_config=TraceConfig(
            group=group,
            n_requests=scale.n_requests,
            arrival_scale=arrival_scale,
        ),
        master_seed=scale.master_seed,
    )
