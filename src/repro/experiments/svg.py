"""Standalone SVG rendering of experiment figures.

The ASCII artefacts are the primary output (terminal/CI friendly); this
module additionally writes real graphics — dependency-free, generating
SVG markup directly — so the paper's figures can be regenerated as
images:

* :func:`bar_chart_svg` — Fig. 2 / Fig. 3 style grouped bars;
* :func:`line_chart_svg` — Fig. 4 / Fig. 5 style series over an x-axis.

Colours follow a small colour-blind-safe palette.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence
from xml.sax.saxutils import escape

from repro.util.atomicio import atomic_write_text
from repro.util.tables import format_float

__all__ = ["bar_chart_svg", "line_chart_svg"]

PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377")

_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 56


def _svg_header(width: int, height: int, title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<title>{escape(title)}</title>',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{escape(title)}</text>',
    ]


def _y_axis(
    lines: list[str],
    y_max: float,
    plot_height: float,
    plot_width: float,
    unit: str,
) -> None:
    """Horizontal gridlines with value labels (4 divisions)."""
    for step in range(5):
        value = y_max * step / 4
        y = _MARGIN_TOP + plot_height * (1 - step / 4)
        lines.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{_MARGIN_LEFT + plot_width:.1f}" y2="{y:.1f}" '
            f'stroke="#dddddd"/>'
        )
        lines.append(
            f'<text x="{_MARGIN_LEFT - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{format_float(value)}{escape(unit)}</text>'
        )


def bar_chart_svg(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str,
    unit: str = "",
    width: int = 480,
    height: int = 320,
    path: str | Path | None = None,
) -> str:
    """Render one bar per label; optionally write to ``path``."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must be equal-length, non-empty")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be >= 0")
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = height - _MARGIN_TOP - _MARGIN_BOTTOM
    y_max = max(max(values), 1e-12) * 1.1

    lines = _svg_header(width, height, title)
    _y_axis(lines, y_max, plot_height, plot_width, unit)
    slot = plot_width / len(labels)
    bar_width = slot * 0.6
    for position, (label, value) in enumerate(
        zip(labels, values, strict=True)
    ):
        x = _MARGIN_LEFT + slot * position + (slot - bar_width) / 2
        bar_height = plot_height * value / y_max
        y = _MARGIN_TOP + plot_height - bar_height
        colour = PALETTE[position % len(PALETTE)]
        lines.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
            f'height="{bar_height:.1f}" fill="{colour}"/>'
        )
        lines.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{y - 4:.1f}" '
            f'text-anchor="middle">{format_float(value)}{escape(unit)}</text>'
        )
        lines.append(
            f'<text x="{x + bar_width / 2:.1f}" '
            f'y="{_MARGIN_TOP + plot_height + 16:.1f}" '
            f'text-anchor="middle">{escape(str(label))}</text>'
        )
    lines.append("</svg>")
    markup = "\n".join(lines)
    if path is not None:
        atomic_write_text(path, markup)
    return markup


def line_chart_svg(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str,
    x_label: str = "",
    y_label: str = "",
    width: int = 520,
    height: int = 340,
    path: str | Path | None = None,
) -> str:
    """Render one polyline per series; optionally write to ``path``."""
    if not series or not xs:
        raise ValueError("need at least one series and one x value")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch with xs")
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = height - _MARGIN_TOP - _MARGIN_BOTTOM
    all_ys = [y for ys in series.values() for y in ys]
    y_max = max(max(all_ys), 1e-12) * 1.1
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    def coords(x: float, y: float) -> tuple[float, float]:
        px = _MARGIN_LEFT + plot_width * (x - x_min) / x_span
        py = _MARGIN_TOP + plot_height * (1 - y / y_max)
        return px, py

    lines = _svg_header(width, height, title)
    _y_axis(lines, y_max, plot_height, plot_width, "")
    # x ticks at every data point (deduplicated when dense)
    tick_every = max(1, len(xs) // 8)
    for position, x in enumerate(xs):
        if position % tick_every:
            continue
        px, _ = coords(x, 0.0)
        lines.append(
            f'<text x="{px:.1f}" y="{_MARGIN_TOP + plot_height + 16:.1f}" '
            f'text-anchor="middle">{format_float(x)}</text>'
        )
    for index, (name, ys) in enumerate(series.items()):
        colour = PALETTE[index % len(PALETTE)]
        points = " ".join(
            f"{coords(x, y)[0]:.1f},{coords(x, y)[1]:.1f}"
            for x, y in zip(xs, ys, strict=True)
        )
        lines.append(
            f'<polyline points="{points}" fill="none" stroke="{colour}" '
            f'stroke-width="2"/>'
        )
        for x, y in zip(xs, ys, strict=True):
            px, py = coords(x, y)
            lines.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3" '
                f'fill="{colour}"/>'
            )
        # legend entry
        legend_y = _MARGIN_TOP + 14 * index
        legend_x = width - _MARGIN_RIGHT - 120
        lines.append(
            f'<rect x="{legend_x}" y="{legend_y - 8}" width="10" '
            f'height="10" fill="{colour}"/>'
        )
        lines.append(
            f'<text x="{legend_x + 14}" y="{legend_y + 1}">'
            f'{escape(name)}</text>'
        )
    if x_label:
        lines.append(
            f'<text x="{_MARGIN_LEFT + plot_width / 2:.1f}" '
            f'y="{height - 12}" text-anchor="middle">{escape(x_label)}</text>'
        )
    if y_label:
        lines.append(
            f'<text x="14" y="{_MARGIN_TOP + plot_height / 2:.1f}" '
            f'text-anchor="middle" transform="rotate(-90 14 '
            f'{_MARGIN_TOP + plot_height / 2:.1f})">{escape(y_label)}</text>'
        )
    lines.append("</svg>")
    markup = "\n".join(lines)
    if path is not None:
        atomic_write_text(path, markup)
    return markup
