"""E4/E5 — Fig. 4: rejection vs prediction accuracy (VT group).

Panel (a) degrades the *task type*: with probability ``1 - accuracy`` the
predicted request identity is wrong (arrival exact).  Panel (b) degrades
the *arrival time*: Gaussian noise sized so the normalised RMS error is
``1 - accuracy`` (type exact).  Accuracy 1.0 is the oracle; the
"predictor off" level is included as the reference line.

Paper shape to reproduce: rejection rises monotonically as accuracy
falls, and by accuracy 0.25 the benefit over "off" is essentially gone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import standard_platform, standard_traces
from repro.experiments.config import HarnessScale
from repro.experiments.executor import ParallelConfig
from repro.experiments.runner import Aggregate, RunSpec, run_matrix
from repro.util.rng import derive_seed
from repro.util.tables import ascii_line_chart, ascii_table
from repro.workload.tracegen import DeadlineGroup

__all__ = [
    "AccuracySweepResult",
    "DEFAULT_ACCURACY_LEVELS",
    "run_accuracy_sweep",
    "render_fig4",
]

DEFAULT_ACCURACY_LEVELS: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25)
"""The accuracy levels on the paper's x-axis."""


@dataclass
class AccuracySweepResult:
    """Rejection vs accuracy for one noise axis."""

    axis: str  # "type" or "arrival"
    scale: HarnessScale
    levels: tuple[float, ...]
    aggregates: dict[str, Aggregate]  # f"{strategy}@{level}" and f"{strategy}@off"

    def rejection(self, strategy: str, level: float | str) -> float:
        if isinstance(level, str):
            return self.aggregates[f"{strategy}@{level}"].mean_rejection
        return self.aggregates[f"{strategy}@{level:g}"].mean_rejection

    def monotone_non_decreasing(self, strategy: str, tolerance: float = 0.0) -> bool:
        """Rejection does not drop as accuracy degrades (within tol)."""
        series = [self.rejection(strategy, level) for level in self.levels]
        return all(
            b >= a - tolerance
            for a, b in zip(series, series[1:], strict=False)
        )


def _noise_predictor_name(axis: str) -> str:
    if axis in ("type", "arrival"):
        return f"{axis}-noise"
    raise ValueError(f"unknown noise axis {axis!r}")


def run_accuracy_sweep(
    axis: str,
    scale: HarnessScale | None = None,
    *,
    levels: tuple[float, ...] = DEFAULT_ACCURACY_LEVELS,
    strategies: tuple[str, ...] = ("milp", "heuristic"),
    group: DeadlineGroup = DeadlineGroup.VT,
    parallel: ParallelConfig | int | None = None,
) -> AccuracySweepResult:
    """Sweep one noise axis over the VT group."""
    predictor = _noise_predictor_name(axis)
    scale = scale or HarnessScale.from_env(default_traces=6, default_requests=100)
    platform = standard_platform()
    traces = standard_traces(group, scale)
    specs = []
    for name in strategies:
        for level in levels:
            noise_seed = derive_seed(scale.master_seed, f"{axis}:{level}")
            specs.append(
                RunSpec.from_names(
                    f"{name}@{level:g}",
                    strategy=name,
                    predictor=predictor,
                    predictor_kwargs={"accuracy": level, "seed": noise_seed},
                )
            )
        specs.append(RunSpec.from_names(f"{name}@off", strategy=name))
    aggregates = run_matrix(traces, platform, specs, parallel=parallel)
    return AccuracySweepResult(
        axis=axis, scale=scale, levels=tuple(levels), aggregates=aggregates
    )


def render_fig4(
    type_sweep: AccuracySweepResult, arrival_sweep: AccuracySweepResult
) -> str:
    """ASCII rendering of both panels of Fig. 4."""
    parts = []
    for panel, sweep in (("(a) task type", type_sweep), ("(b) arrival time", arrival_sweep)):
        strategies = sorted(
            {label.split("@")[0] for label in sweep.aggregates}
        )
        series = {
            name: [sweep.rejection(name, level) for level in sweep.levels]
            for name in strategies
        }
        parts.append(
            ascii_line_chart(
                list(sweep.levels),
                series,
                title=f"Fig. 4{panel}: rejection %% vs accuracy "
                f"({sweep.scale.n_traces} traces x "
                f"{sweep.scale.n_requests} requests)",
            )
        )
        rows = []
        for name in strategies:
            row = [name]
            row.extend(sweep.rejection(name, level) for level in sweep.levels)
            row.append(sweep.rejection(name, "off"))
            rows.append(row)
        headers = ["strategy", *(f"acc {level:g}" for level in sweep.levels)]
        headers.append("off")
        parts.append(ascii_table(headers, rows))
    return "\n\n".join(parts)
