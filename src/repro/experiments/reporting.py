"""Result persistence for the experiment harness.

Experiments render human-readable ASCII (their ``render_*`` functions)
and can additionally persist machine-readable JSON summaries here, which
is what EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.experiments.runner import Aggregate
from repro.util.atomicio import atomic_write_text

__all__ = ["aggregates_to_dict", "save_report", "load_report"]


def aggregates_to_dict(aggregates: Mapping[str, Aggregate]) -> dict:
    """JSON-safe summary of a label -> aggregate mapping."""
    return {
        label: {
            "n_traces": aggregate.n_traces,
            "mean_rejection": aggregate.mean_rejection,
            "stdev_rejection": aggregate.stdev_rejection,
            "mean_energy": aggregate.mean_energy,
            "rejections": aggregate.rejection_percentages,
            "energies": aggregate.normalized_energies,
        }
        for label, aggregate in aggregates.items()
    }


def save_report(path: str | Path, experiment: str, payload: dict) -> None:
    """Write one experiment's JSON report to ``path``."""
    record = {"experiment": experiment, **payload}
    atomic_write_text(path, json.dumps(record, indent=2))


def load_report(path: str | Path) -> dict:
    """Read a report previously written by :func:`save_report`."""
    return json.loads(Path(path).read_text())
