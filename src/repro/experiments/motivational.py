"""E7 — the motivational example (Sec. 3, Table 1, Fig. 1).

Two CPUs, one GPU, and two tasks:

======  =====  =====  ================  ==================
task    s_j    d_j    WCET (CPU1/2/GPU)  Energy (CPU1/2/GPU)
======  =====  =====  ================  ==================
tau_1    0      8       8 / 12 / 5        7.3 / 8.4 / 2
tau_2    1      5       7 / 8.5 / 3       6.2 / 7.5 / 1.5
======  =====  =====  ================  ==================

Three scenarios, with the paper's expected outcomes:

* **(a) no prediction** — the RM greedily gives the GPU to tau_1 at time
  0; at time 1 tau_2 can only meet its deadline on the GPU, which cannot
  be preempted, and aborting tau_1 misses tau_1's deadline.  tau_2 is
  rejected: acceptance 1/2.
* **(b) accurate prediction** — knowing tau_2 will arrive at time 1, the
  RM maps tau_1 to CPU1 and reserves the GPU: acceptance 2/2.
* **(c) inaccurate prediction** — tau_2 is predicted at time 1 but
  actually arrives at time 3.  The (wrong) prediction still pushes tau_1
  to CPU1; both tasks meet their deadlines at a total energy of 8.8 J.
  Without prediction, tau_1 runs on the GPU, finishes at 5, tau_2 then
  fits on the GPU by its deadline — total energy only 3.5 J.  The wrong
  prediction more than doubles the energy: prediction can be harmful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.heuristic import HeuristicResourceManager
from repro.experiments.executor import ParallelConfig
from repro.experiments.runner import RunSpec, run_matrix
from repro.model.platform import Platform
from repro.model.request import PredictedRequest, Request
from repro.model.task import TaskType
from repro.predict.oracle import OraclePredictor
from repro.predict.scripted import ScriptedPredictor
from repro.util.tables import ascii_table
from repro.workload.trace import Trace

__all__ = [
    "MotivationalOutcome",
    "build_platform",
    "build_tasks",
    "build_trace",
    "run_motivational",
    "render_motivational",
]


@dataclass(frozen=True)
class MotivationalOutcome:
    """Results of the three scenarios."""

    accepted_without_prediction: int
    accepted_with_prediction: int
    energy_wrong_prediction: float
    energy_no_prediction_late: float

    def matches_paper(self) -> bool:
        """Whether all four paper claims hold."""
        return (
            self.accepted_without_prediction == 1
            and self.accepted_with_prediction == 2
            and abs(self.energy_wrong_prediction - 8.8) < 1e-6
            and abs(self.energy_no_prediction_late - 3.5) < 1e-6
        )


def build_platform() -> Platform:
    """Two CPUs and one GPU."""
    return Platform.cpu_gpu(n_cpus=2, n_gpus=1)


def build_tasks() -> list[TaskType]:
    """Table 1's task parameters (no migration overhead in the example)."""
    tau_1 = TaskType(
        type_id=0, name="tau1", wcet=(8.0, 12.0, 5.0), energy=(7.3, 8.4, 2.0)
    )
    tau_2 = TaskType(
        type_id=1, name="tau2", wcet=(7.0, 8.5, 3.0), energy=(6.2, 7.5, 1.5)
    )
    return [tau_1, tau_2]


def build_trace(*, tau2_arrival: float = 1.0) -> Trace:
    """The two-request stream; ``tau2_arrival`` = 1 (scenarios a/b) or 3
    (scenario c, where the prediction of 1 is wrong)."""
    tasks = build_tasks()
    requests = [
        Request(index=0, arrival=0.0, type_id=0, deadline=8.0),
        Request(index=1, arrival=tau2_arrival, type_id=1, deadline=5.0),
    ]
    return Trace(tasks, requests, group="motivational")


def _wrong_predictor() -> ScriptedPredictor:
    """Scenario (c)'s predictor: announces tau_2 at time 1 (it arrives at
    3).  Module-level so the spec pickles for parallel execution."""
    return ScriptedPredictor(
        {0: PredictedRequest(arrival=1.0, type_id=1, deadline=5.0)}
    )


def run_motivational(
    strategy_factory=HeuristicResourceManager,
    *,
    parallel: ParallelConfig | int | None = None,
) -> MotivationalOutcome:
    """Run the three scenarios with the given strategy (heuristic by
    default; the exact/MILP managers give identical outcomes)."""
    platform = build_platform()

    # Scenarios (a)/(b): tau_2 at time 1, prediction off vs accurate —
    # without prediction tau_2 must be rejected, with it both fit.
    trace_early = build_trace(tau2_arrival=1.0)
    early = run_matrix(
        [trace_early],
        platform,
        [
            RunSpec(label="no-prediction", strategy=strategy_factory),
            RunSpec(
                label="with-prediction",
                strategy=strategy_factory,
                predictor=OraclePredictor,
            ),
        ],
        keep_results=True,
        parallel=parallel,
    )

    # Scenario (c): predicted at 1, actually arrives at 3.
    trace_late = build_trace(tau2_arrival=3.0)
    late = run_matrix(
        [trace_late],
        platform,
        [
            RunSpec(
                label="wrong-prediction",
                strategy=strategy_factory,
                predictor=_wrong_predictor,
            ),
            RunSpec(label="late-no-prediction", strategy=strategy_factory),
        ],
        keep_results=True,
        parallel=parallel,
    )

    return MotivationalOutcome(
        accepted_without_prediction=early["no-prediction"].results[0].n_accepted,
        accepted_with_prediction=early["with-prediction"].results[0].n_accepted,
        energy_wrong_prediction=late["wrong-prediction"].results[0].total_energy,
        energy_no_prediction_late=(
            late["late-no-prediction"].results[0].total_energy
        ),
    )


def render_motivational(outcome: MotivationalOutcome) -> str:
    """ASCII report comparing measured outcomes with the paper's."""
    rows = [
        ["(a) acceptance, no prediction", "1/2", f"{outcome.accepted_without_prediction}/2"],
        ["(b) acceptance, accurate prediction", "2/2", f"{outcome.accepted_with_prediction}/2"],
        ["(c) energy, wrong prediction (J)", 8.8, outcome.energy_wrong_prediction],
        ["(c) energy, no prediction (J)", 3.5, outcome.energy_no_prediction_late],
    ]
    table = ascii_table(
        ["scenario", "paper", "measured"],
        rows,
        title="Motivational example (Sec. 3, Table 1, Fig. 1)",
    )
    verdict = "all outcomes match the paper" if outcome.matches_paper() else (
        "MISMATCH with the paper"
    )
    return f"{table}\n=> {verdict}"
