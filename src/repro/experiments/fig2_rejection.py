"""E2 — Fig. 2: average rejection percentage, prediction on vs off.

Reproduces both panels: (a) the LT group and (b) the VT group, each with
four configurations — {MILP, heuristic} x {predictor on (accurate), off}.

The same runs also carry the normalised-energy numbers of Fig. 3
(:mod:`repro.experiments.fig3_energy` renders them), so calling
:func:`run_prediction_impact` once per group regenerates both figures.

Paper shape to reproduce: prediction lowers rejection for both RMs, with
a far larger drop for VT (paper: 9.17 pp MILP / 10.2 pp heuristic) than
for LT (1 pp / 2.6 pp); the heuristic stays within a few points of the
MILP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import standard_platform, standard_traces
from repro.experiments.config import HarnessScale
from repro.experiments.executor import ParallelConfig
from repro.experiments.runner import Aggregate, RunSpec, run_matrix
from repro.util.tables import ascii_bar_chart, ascii_table
from repro.workload.tracegen import DeadlineGroup

__all__ = ["PredictionImpactResult", "run_prediction_impact", "render_fig2"]


@dataclass
class PredictionImpactResult:
    """The four configurations' aggregates for one deadline group."""

    group: DeadlineGroup
    scale: HarnessScale
    aggregates: dict[str, Aggregate]

    def rejection(self, strategy: str, predictor: str) -> float:
        """Mean rejection %% for e.g. ``("milp", "on")``."""
        return self.aggregates[f"{strategy}-{predictor}"].mean_rejection

    def energy(self, strategy: str, predictor: str) -> float:
        """Mean normalised energy for a configuration (Fig. 3 view)."""
        return self.aggregates[f"{strategy}-{predictor}"].mean_energy

    def prediction_gain(self, strategy: str) -> float:
        """Rejection reduction (percentage points) from prediction."""
        return self.rejection(strategy, "off") - self.rejection(strategy, "on")


def run_prediction_impact(
    group: DeadlineGroup,
    scale: HarnessScale | None = None,
    *,
    strategies: tuple[str, ...] = ("milp", "heuristic"),
    parallel: ParallelConfig | int | None = None,
) -> PredictionImpactResult:
    """Run {strategies} x {on, off} over one deadline group."""
    scale = scale or HarnessScale.from_env(default_traces=6, default_requests=100)
    platform = standard_platform()
    traces = standard_traces(group, scale)
    specs = []
    for name in strategies:
        specs.append(RunSpec.from_names(f"{name}-off", strategy=name))
        specs.append(
            RunSpec.from_names(f"{name}-on", strategy=name, predictor="oracle")
        )
    aggregates = run_matrix(traces, platform, specs, parallel=parallel)
    return PredictionImpactResult(group=group, scale=scale, aggregates=aggregates)


def render_fig2(
    lt: PredictionImpactResult, vt: PredictionImpactResult
) -> str:
    """ASCII rendering of both panels of Fig. 2."""
    parts = []
    for panel, result in (("(a) LT", lt), ("(b) VT", vt)):
        labels, values = [], []
        for label, aggregate in sorted(result.aggregates.items()):
            labels.append(label)
            values.append(aggregate.mean_rejection)
        parts.append(
            ascii_bar_chart(
                labels,
                values,
                title=f"Fig. 2{panel}: average rejection percentage "
                f"({result.scale.n_traces} traces x "
                f"{result.scale.n_requests} requests)",
                unit="%",
            )
        )
    rows = []
    for result in (lt, vt):
        for strategy in ("milp", "heuristic"):
            key = f"{strategy}-off"
            if key not in result.aggregates:
                continue
            rows.append(
                [
                    result.group.value,
                    strategy,
                    result.rejection(strategy, "off"),
                    result.rejection(strategy, "on"),
                    result.prediction_gain(strategy),
                ]
            )
    parts.append(
        ascii_table(
            ["group", "strategy", "rejection off %", "rejection on %", "gain pp"],
            rows,
            title="Prediction impact on rejection (paper: LT ~1-2.6 pp, "
            "VT ~9-10 pp)",
        )
    )
    return "\n\n".join(parts)
