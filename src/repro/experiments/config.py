"""Experiment-harness configuration.

The paper runs 500 traces of 500 requests per group with an MILP solve at
every activation — hours of compute.  The harness therefore supports a
*scaled* configuration for routine runs and the full paper scale behind
environment variables:

* ``REPRO_TRACES`` — traces per group (default per experiment);
* ``REPRO_REQUESTS`` — requests per trace (default per experiment);
* ``REPRO_FULL=1`` — the paper's 500 x 500 (overrides both);
* ``REPRO_SEED`` — master seed (default 0).

EXPERIMENTS.md records which configuration produced the reported numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.util.validation import check_positive
from repro.workload.tracegen import DEFAULT_ARRIVAL_SCALE

__all__ = ["HarnessScale", "CALIBRATED_ARRIVAL_SCALE"]

CALIBRATED_ARRIVAL_SCALE: float = DEFAULT_ARRIVAL_SCALE
"""Inter-arrival scale used by every experiment (see DESIGN.md item 2)."""


@dataclass(frozen=True)
class HarnessScale:
    """How many traces/requests an experiment runs with.

    Attributes
    ----------
    n_traces:
        Traces per deadline group.
    n_requests:
        Requests per trace.
    master_seed:
        Seed of the experiment's RNG namespace.
    """

    n_traces: int
    n_requests: int
    master_seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_traces", self.n_traces)
        check_positive("n_requests", self.n_requests)

    @classmethod
    def from_env(
        cls, *, default_traces: int, default_requests: int
    ) -> "HarnessScale":
        """Resolve the scale from the environment (see module docstring)."""
        seed = int(os.environ.get("REPRO_SEED", "0"))
        if os.environ.get("REPRO_FULL", "") == "1":
            return cls(n_traces=500, n_requests=500, master_seed=seed)
        traces = int(os.environ.get("REPRO_TRACES", str(default_traces)))
        requests = int(os.environ.get("REPRO_REQUESTS", str(default_requests)))
        return cls(n_traces=traces, n_requests=requests, master_seed=seed)
