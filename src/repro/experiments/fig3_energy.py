"""E3 — Fig. 3: average normalised energy consumption.

Uses the same runs as Fig. 2 (see
:func:`repro.experiments.fig2_rejection.run_prediction_impact`); this
module only renders the energy view.

Paper shape to reproduce: energy follows acceptance — a configuration
that rejects less executes more workload and therefore consumes *more*
energy; for VT, the MILP converts its acceptance advantage into energy
more favourably than the heuristic.
"""

from __future__ import annotations

from repro.experiments.fig2_rejection import PredictionImpactResult
from repro.util.tables import ascii_bar_chart, ascii_table

__all__ = ["render_fig3", "energy_follows_acceptance"]


def render_fig3(
    lt: PredictionImpactResult, vt: PredictionImpactResult
) -> str:
    """ASCII rendering of both panels of Fig. 3."""
    parts = []
    for panel, result in (("(a) LT", lt), ("(b) VT", vt)):
        labels, values = [], []
        for label, aggregate in sorted(result.aggregates.items()):
            labels.append(label)
            values.append(aggregate.mean_energy)
        parts.append(
            ascii_bar_chart(
                labels,
                values,
                title=f"Fig. 3{panel}: average normalised energy "
                f"({result.scale.n_traces} traces x "
                f"{result.scale.n_requests} requests)",
            )
        )
    rows = []
    for result in (lt, vt):
        for strategy in ("milp", "heuristic"):
            if f"{strategy}-off" not in result.aggregates:
                continue
            rows.append(
                [
                    result.group.value,
                    strategy,
                    result.energy(strategy, "off"),
                    result.energy(strategy, "on"),
                    result.rejection(strategy, "off"),
                    result.rejection(strategy, "on"),
                ]
            )
    parts.append(
        ascii_table(
            [
                "group",
                "strategy",
                "energy off",
                "energy on",
                "rejection off %",
                "rejection on %",
            ],
            rows,
            title="Energy follows acceptance (lower rejection => more "
            "workload executed => more energy)",
            float_digits=4,
        )
    )
    return "\n\n".join(parts)


def energy_follows_acceptance(
    result: PredictionImpactResult,
    *,
    rejection_tolerance: float = 0.5,
    energy_tolerance: float = 0.005,
) -> bool:
    """The paper's qualitative claim for one group: for each strategy,
    the configuration with materially lower rejection consumes at least
    as much energy.

    Tolerances ignore sub-noise differences (``rejection_tolerance`` in
    percentage points — at small trace counts one admitted request moves
    the mean by a few tenths — and ``energy_tolerance`` in normalised
    energy units).
    """
    for strategy in ("milp", "heuristic"):
        if f"{strategy}-off" not in result.aggregates:
            continue
        rej_gap = result.rejection(strategy, "off") - result.rejection(
            strategy, "on"
        )
        energy_gap = result.energy(strategy, "on") - result.energy(
            strategy, "off"
        )
        if abs(rej_gap) <= rejection_tolerance:
            continue  # acceptance unchanged within noise
        # materially lower rejection must not come with materially lower
        # energy, and vice versa
        if rej_gap > 0 and energy_gap < -energy_tolerance:
            return False
        if rej_gap < 0 and energy_gap > energy_tolerance:
            return False
    return True
