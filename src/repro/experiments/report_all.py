"""One-call regeneration of the paper's full evaluation.

:func:`run_all` executes E1–E7 at a given harness scale and returns the
rendered report plus machine-readable summaries; the CLI exposes it as
``python -m repro experiment all``.  This is the programmatic equivalent
of running the whole benchmark harness, minus pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.config import HarnessScale
from repro.experiments.fig2_rejection import (
    render_fig2,
    run_prediction_impact,
)
from repro.experiments.fig3_energy import render_fig3
from repro.experiments.fig4_accuracy import render_fig4, run_accuracy_sweep
from repro.experiments.fig4_frontier import (
    frontier_csv,
    render_fig4_frontier,
    run_frontier,
)
from repro.experiments.fig5_overhead import render_fig5, run_overhead_sweep
from repro.experiments.motivational import (
    render_motivational,
    run_motivational,
)
from repro.experiments.reporting import aggregates_to_dict, save_report
from repro.experiments.sec52_milp_vs_heuristic import render_sec52, run_sec52
from repro.util.atomicio import atomic_write_text
from repro.workload.tracegen import DeadlineGroup

__all__ = ["FullReport", "run_all"]


@dataclass
class FullReport:
    """Everything one evaluation pass produced."""

    scale: HarnessScale
    sections: dict[str, str] = field(default_factory=dict)
    payloads: dict[str, dict] = field(default_factory=dict)

    def render(self) -> str:
        """The complete human-readable report."""
        parts = [
            "Reproduction report — Runtime Resource Management with "
            "Workload Prediction (DAC 2019)",
            f"configuration: {self.scale.n_traces} traces x "
            f"{self.scale.n_requests} requests per group, "
            f"seed {self.scale.master_seed}",
            "",
        ]
        for name in sorted(self.sections):
            parts.append(f"{'=' * 72}\n{name}\n{'=' * 72}")
            parts.append(self.sections[name])
            parts.append("")
        return "\n".join(parts)

    def save(self, directory: str | Path) -> list[Path]:
        """Persist the rendered report, JSON payloads and SVG figures."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        report_path = directory / "report.txt"
        atomic_write_text(report_path, self.render())
        written.append(report_path)
        for name, payload in self.payloads.items():
            path = directory / f"{name}.json"
            save_report(path, name, payload)
            written.append(path)
        written.extend(self._save_figures(directory))
        return written

    def _save_figures(self, directory: Path) -> list[Path]:
        """Best-effort SVG versions of Fig. 2 and Fig. 5."""
        from repro.experiments.svg import bar_chart_svg, line_chart_svg

        written: list[Path] = []
        fig23 = self.payloads.get("fig2_fig3")
        if fig23:
            for group, aggregates in fig23.items():
                labels = sorted(aggregates)
                values = [aggregates[l]["mean_rejection"] for l in labels]
                path = directory / f"fig2_{group.lower()}.svg"
                bar_chart_svg(
                    labels,
                    values,
                    title=f"Fig. 2 ({group}): rejection %",
                    unit="%",
                    path=path,
                )
                written.append(path)
        fig5 = self.payloads.get("fig5")
        if fig5:
            strategies = sorted(
                {label.split("@")[0] for label in fig5 if "@off" not in label}
            )
            coefficients = sorted(
                {
                    float(label.split("@")[1])
                    for label in fig5
                    if not label.endswith("@off")
                }
            )
            series = {
                name: [
                    fig5[f"{name}@{c:g}"]["mean_rejection"]
                    for c in coefficients
                ]
                for name in strategies
            }
            for name in strategies:
                off = fig5.get(f"{name}@off")
                if off:
                    series[f"{name} (off)"] = [
                        off["mean_rejection"] for _ in coefficients
                    ]
            path = directory / "fig5.svg"
            line_chart_svg(
                [100 * c for c in coefficients],
                series,
                title="Fig. 5: rejection vs prediction overhead",
                x_label="overhead (% of mean inter-arrival)",
                y_label="rejection %",
                path=path,
            )
            written.append(path)
        return written


def run_all(
    scale: HarnessScale | None = None,
    *,
    strategies: tuple[str, ...] = ("milp", "heuristic"),
    progress=None,
    parallel=None,
) -> FullReport:
    """Run every experiment (E1–E7) and collect the rendered artefacts.

    ``progress`` is an optional ``callable(section_name)`` invoked before
    each experiment (for console feedback on long runs).  ``parallel``
    (a :class:`~repro.experiments.executor.ParallelConfig` or worker
    count) fans each experiment's matrix out over worker processes.
    """
    scale = scale or HarnessScale.from_env(default_traces=5, default_requests=120)
    report = FullReport(scale=scale)

    def step(name: str):
        if progress is not None:
            progress(name)

    step("E7 motivational")
    outcome = run_motivational(parallel=parallel)
    report.sections["E7 motivational (Table 1 / Fig. 1)"] = (
        render_motivational(outcome)
    )
    report.payloads["motivational"] = {
        "accepted_without_prediction": outcome.accepted_without_prediction,
        "accepted_with_prediction": outcome.accepted_with_prediction,
        "energy_wrong_prediction": outcome.energy_wrong_prediction,
        "energy_no_prediction_late": outcome.energy_no_prediction_late,
        "matches_paper": outcome.matches_paper(),
    }

    step("E1 sec52")
    sec52 = run_sec52(scale, parallel=parallel)
    report.sections["E1 Sec. 5.2 (MILP vs heuristic)"] = render_sec52(sec52)
    report.payloads["sec52"] = {
        "milp_mean": sec52.milp_mean,
        "heuristic_mean": sec52.heuristic_mean,
        "milp_win_fraction": sec52.milp_win_fraction,
        "milp_rejections": sec52.milp_rejections,
        "heuristic_rejections": sec52.heuristic_rejections,
    }

    step("E2/E3 fig2+fig3")
    lt = run_prediction_impact(
        DeadlineGroup.LT, scale, strategies=strategies, parallel=parallel
    )
    vt = run_prediction_impact(
        DeadlineGroup.VT, scale, strategies=strategies, parallel=parallel
    )
    report.sections["E2 Fig. 2 (rejection, prediction on/off)"] = render_fig2(
        lt, vt
    )
    report.sections["E3 Fig. 3 (normalised energy)"] = render_fig3(lt, vt)
    report.payloads["fig2_fig3"] = {
        "LT": aggregates_to_dict(lt.aggregates),
        "VT": aggregates_to_dict(vt.aggregates),
    }

    step("E4/E5 fig4")
    type_sweep = run_accuracy_sweep(
        "type", scale, strategies=strategies, parallel=parallel
    )
    arrival_sweep = run_accuracy_sweep(
        "arrival", scale, strategies=strategies, parallel=parallel
    )
    report.sections["E4/E5 Fig. 4 (accuracy sweeps)"] = render_fig4(
        type_sweep, arrival_sweep
    )
    report.payloads["fig4"] = {
        "type": aggregates_to_dict(type_sweep.aggregates),
        "arrival": aggregates_to_dict(arrival_sweep.aggregates),
    }

    step("E6 fig5")
    overhead = run_overhead_sweep(scale, strategies=strategies, parallel=parallel)
    report.sections["E6 Fig. 5 (overhead sweep)"] = render_fig5(overhead)
    report.payloads["fig5"] = aggregates_to_dict(overhead.aggregates)

    step("E8 fig4 frontier")
    frontier = run_frontier(scale, parallel=parallel)
    report.sections["E8 Fig. 4 frontier (accuracy vs energy under drift)"] = (
        render_fig4_frontier(frontier)
    )
    report.payloads["fig4_frontier"] = {
        "csv": frontier_csv(frontier),
        "aggregates": aggregates_to_dict(frontier.aggregates),
    }

    return report
