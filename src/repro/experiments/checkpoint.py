"""Journal-based experiment checkpointing (crash-safe resume).

A matrix run that dies hours in — machine reboot, OOM kill, ctrl-C —
should not cost the cells that already finished.  The executor can be
given a checkpoint path (``execute_matrix(..., checkpoint=...)``); it
then appends one JSON line per *final* cell outcome (success or
exhausted failure) to an append-only journal, flushed as written, so a
killed run can be restarted with the same arguments and the same journal
and will re-execute only the incomplete cells.

Why a journal and not a snapshot: appends are atomic at the line level,
never rewrite completed work, and a torn final line (the crash happened
mid-write) is detected and dropped on load without losing the prefix.

Format (one JSON object per line):

* header — ``{"magic": "repro-checkpoint-v1", "fingerprint": ...}``; the
  fingerprint digests the platform, spec labels/configs and traces, and
  a resume against a journal from a *different* matrix is refused.
* success — ``{"spec": i, "trace": j, "ok": true, "rejection_hex": ...,
  "energy_hex": ..., "wall_time": ..., "solver_calls": ...,
  "attempts": ..., "verified": ..., "retry_delays": [...]}``.  The two
  metrics are stored as ``float.hex()`` so resumed aggregates are
  **bit-identical** to an uninterrupted run.
* failure — ``{"spec": i, "trace": j, "ok": false, "error": ...,
  "attempts": ..., "retry_delays": [...]}``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from typing import IO, Sequence

from repro.experiments.runner import RunSpec
from repro.model.platform import Platform
from repro.workload.trace import Trace

__all__ = ["CheckpointError", "CheckpointJournal"]

_MAGIC = "repro-checkpoint-v1"


class CheckpointError(RuntimeError):
    """The journal cannot be used (wrong format or wrong matrix)."""


def compute_fingerprint(
    platform: Platform,
    specs: Sequence[RunSpec],
    traces: Sequence[Trace],
    *,
    shards: int = 1,
) -> str:
    """Digest the matrix identity a journal belongs to.

    Covers the platform layout, every spec's label and simulator config,
    every trace's full request stream (``float.hex`` encoded, so two
    numerically different matrices never collide on rounding), and the
    shard count.  Shards must be part of the identity even though a
    sharded run is bit-identical to a serial one: a journal records
    *observed* outcomes (wall times, attempt counts), and resuming a
    ``shards=4`` journal into a ``shards=1`` run would silently mix
    execution regimes in the folded cell stats.
    """
    digest = hashlib.sha256()
    digest.update(repr(platform).encode())
    digest.update(f"|shards:{shards}".encode())
    for spec in specs:
        digest.update(f"|spec:{spec.label}:{spec.sim_config!r}".encode())
    for trace in traces:
        digest.update(f"|trace:{trace.group}:{trace.seed}:".encode())
        for request in trace:
            digest.update(
                (
                    f"{request.arrival.hex()},{request.type_id},"
                    f"{_hex(request.deadline)};"
                ).encode()
            )
    return digest.hexdigest()


def _hex(value: float) -> str:
    # float('inf').hex() exists ('inf'), but keep the encoding explicit.
    return "inf" if math.isinf(value) else value.hex()


class CheckpointJournal:
    """Append-only journal of final cell outcomes for one matrix run."""

    def __init__(self, path: str | os.PathLike[str], fingerprint: str) -> None:
        self.path = os.fspath(path)
        self.fingerprint = fingerprint
        self._completed: dict[tuple[int, int], dict] = {}
        self._handle: IO[str] | None = None
        self._load()

    @property
    def completed(self) -> dict[tuple[int, int], dict]:
        """``(spec_index, trace_index) -> journal entry`` already final."""
        return dict(self._completed)

    def _load(self) -> None:
        """Replay an existing journal file, tolerating a torn last line."""
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        if not lines or not lines[0].strip():
            return
        header = self._parse(lines[0])
        if header is None or header.get("magic") != _MAGIC:
            raise CheckpointError(
                f"{self.path}: not a {_MAGIC} journal"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"{self.path}: journal belongs to a different experiment "
                "matrix (platform/specs/traces changed); refusing to resume"
            )
        for position, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            entry = self._parse(line)
            if entry is None:
                # A torn line can only be the crash's final write; any
                # valid line after it means real corruption.
                remainder = lines[position:]
                if any(self._parse(rest) for rest in remainder if rest.strip()):
                    raise CheckpointError(
                        f"{self.path}:{position}: corrupt journal line "
                        "followed by valid entries"
                    )
                break
            self._completed[(entry["spec"], entry["trace"])] = entry

    @staticmethod
    def _parse(line: str) -> dict | None:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            return None
        return entry if isinstance(entry, dict) else None

    def _open(self) -> IO[str]:
        if self._handle is None:
            needs_header = not self._has_header()
            self._handle = open(  # noqa: SIM115 - held across record calls
                self.path, "a", encoding="utf-8"
            )
            if needs_header:
                self._write(
                    {"magic": _MAGIC, "fingerprint": self.fingerprint}
                )
        return self._handle

    def _has_header(self) -> bool:
        if not os.path.exists(self.path):
            return False
        with open(self.path, encoding="utf-8") as handle:
            first = handle.readline()
        header = self._parse(first)
        return header is not None and header.get("magic") == _MAGIC

    def _write(self, entry: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def record(self, entry: dict) -> None:
        """Append one final cell outcome (idempotent per unit)."""
        unit = (entry["spec"], entry["trace"])
        if unit in self._completed:
            return
        self._open()
        self._write(entry)
        self._completed[unit] = entry

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
