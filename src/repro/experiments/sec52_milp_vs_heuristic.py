"""E1 — Sec. 5.2: MILP versus heuristic without prediction.

Over the union of the VT and LT groups, the paper reports (without
prediction):

* average rejection 24.5% (MILP) vs 31% (heuristic);
* the MILP's acceptance is at least the heuristic's on 88% of traces —
  *not* 100%, because per-activation optimality is not globally optimal
  across future arrivals.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.experiments.common import standard_platform, standard_traces
from repro.experiments.config import HarnessScale
from repro.experiments.executor import ParallelConfig
from repro.experiments.runner import RunSpec, run_matrix
from repro.util.tables import ascii_table
from repro.workload.tracegen import DeadlineGroup

__all__ = ["Sec52Result", "run_sec52", "render_sec52"]


@dataclass
class Sec52Result:
    """Per-trace rejection percentages of both strategies (VT + LT)."""

    scale: HarnessScale
    milp_rejections: list[float]
    heuristic_rejections: list[float]

    @property
    def milp_mean(self) -> float:
        """Mean MILP rejection percentage over VT + LT."""
        return statistics.fmean(self.milp_rejections)

    @property
    def heuristic_mean(self) -> float:
        """Mean heuristic rejection percentage over VT + LT."""
        return statistics.fmean(self.heuristic_rejections)

    @property
    def milp_win_fraction(self) -> float:
        """Fraction of traces where the MILP's acceptance >= heuristic's."""
        wins = sum(
            1
            for milp, heur in zip(
                self.milp_rejections, self.heuristic_rejections, strict=True
            )
            if milp <= heur
        )
        return wins / len(self.milp_rejections)

    @property
    def milp_strict_loss_fraction(self) -> float:
        """Fraction of traces where the heuristic strictly beats the MILP
        (the paper's counterintuitive 12%)."""
        return 1.0 - self.milp_win_fraction


def run_sec52(
    scale: HarnessScale | None = None,
    *,
    parallel: ParallelConfig | int | None = None,
) -> Sec52Result:
    """Run both strategies, predictor off, over VT + LT."""
    scale = scale or HarnessScale.from_env(default_traces=5, default_requests=80)
    platform = standard_platform()
    specs = [
        RunSpec.from_names("milp", strategy="milp"),
        RunSpec.from_names("heuristic", strategy="heuristic"),
    ]
    milp: list[float] = []
    heuristic: list[float] = []
    for group in (DeadlineGroup.VT, DeadlineGroup.LT):
        traces = standard_traces(group, scale)
        aggregates = run_matrix(traces, platform, specs, parallel=parallel)
        milp.extend(aggregates["milp"].rejection_percentages)
        heuristic.extend(aggregates["heuristic"].rejection_percentages)
    return Sec52Result(
        scale=scale, milp_rejections=milp, heuristic_rejections=heuristic
    )


def render_sec52(result: Sec52Result) -> str:
    """ASCII report with the paper's reference values."""
    rows = [
        ["mean rejection, MILP (%)", 24.5, result.milp_mean],
        ["mean rejection, heuristic (%)", 31.0, result.heuristic_mean],
        [
            "traces where MILP acceptance >= heuristic (%)",
            88.0,
            100.0 * result.milp_win_fraction,
        ],
    ]
    return ascii_table(
        ["quantity", "paper", "measured"],
        rows,
        title=(
            "Sec. 5.2: MILP vs heuristic without prediction "
            f"({len(result.milp_rejections)} traces: VT + LT, "
            f"{result.scale.n_requests} requests each)"
        ),
    )
