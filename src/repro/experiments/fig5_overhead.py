"""E6 — Fig. 5: rejection vs prediction overhead (VT group).

Predictions are perfectly accurate, but each activation is charged a
decision delay ``overhead = coefficient x mean inter-arrival time``
(Sec. 5.5): the platform keeps executing the previous plan during the
delay, and the newly arrived task loses that much deadline slack.

Paper shape to reproduce: with overhead above roughly 2-4% of the mean
inter-arrival time, the rejection rate with perfect prediction crosses
*above* the predictor-off level — the crossover that tells designers how
cheap the predictor must be.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import standard_platform, standard_traces
from repro.experiments.config import HarnessScale
from repro.experiments.executor import ParallelConfig
from repro.experiments.runner import Aggregate, RunSpec, run_matrix
from repro.sim.simulator import SimulationConfig
from repro.util.tables import ascii_line_chart, ascii_table
from repro.workload.tracegen import DeadlineGroup, TraceConfig

__all__ = [
    "OverheadSweepResult",
    "DEFAULT_OVERHEAD_COEFFICIENTS",
    "run_overhead_sweep",
    "render_fig5",
]

DEFAULT_OVERHEAD_COEFFICIENTS: tuple[float, ...] = (
    0.0,
    0.02,
    0.05,
    0.10,
    0.20,
    0.30,
    0.50,
)
"""Overhead as a fraction of the mean inter-arrival time (x-axis of
Fig. 5 is this coefficient x 100).

The paper sweeps 0-10% and finds the crossover at 2-4%; at this
reproduction's load calibration the prediction benefit is smaller in
absolute terms but so is the per-activation damage, and the crossover
sits near 30% — the default sweep extends far enough to show it (see
EXPERIMENTS.md)."""


@dataclass
class OverheadSweepResult:
    """Rejection vs overhead coefficient."""

    scale: HarnessScale
    coefficients: tuple[float, ...]
    mean_interarrival: float
    aggregates: dict[str, Aggregate]  # f"{strategy}@{coeff}" / f"{strategy}@off"

    def rejection(self, strategy: str, coeff: float | str) -> float:
        if isinstance(coeff, str):
            return self.aggregates[f"{strategy}@{coeff}"].mean_rejection
        return self.aggregates[f"{strategy}@{coeff:g}"].mean_rejection

    def crossover_coefficient(self, strategy: str) -> float | None:
        """Smallest swept coefficient at which perfect prediction becomes
        no better than the predictor being off (None if it never does)."""
        off_level = self.rejection(strategy, "off")
        for coeff in self.coefficients:
            if self.rejection(strategy, coeff) >= off_level:
                return coeff
        return None


def run_overhead_sweep(
    scale: HarnessScale | None = None,
    *,
    coefficients: tuple[float, ...] = DEFAULT_OVERHEAD_COEFFICIENTS,
    strategies: tuple[str, ...] = ("milp", "heuristic"),
    group: DeadlineGroup = DeadlineGroup.VT,
    parallel: ParallelConfig | int | None = None,
) -> OverheadSweepResult:
    """Sweep the prediction-overhead coefficient over the VT group."""
    scale = scale or HarnessScale.from_env(default_traces=6, default_requests=100)
    platform = standard_platform()
    traces = standard_traces(group, scale)
    # The expected inter-arrival time of the generator (the paper defines
    # the overhead against the average inter-arrival of the tasks).
    mean_gap = TraceConfig(group=group).mean_interarrival
    specs = []
    for name in strategies:
        for coeff in coefficients:
            specs.append(
                RunSpec.from_names(
                    f"{name}@{coeff:g}",
                    strategy=name,
                    predictor="oracle",
                    sim_config=SimulationConfig(
                        prediction_overhead=coeff * mean_gap
                    ),
                )
            )
        specs.append(RunSpec.from_names(f"{name}@off", strategy=name))
    aggregates = run_matrix(traces, platform, specs, parallel=parallel)
    return OverheadSweepResult(
        scale=scale,
        coefficients=tuple(coefficients),
        mean_interarrival=mean_gap,
        aggregates=aggregates,
    )


def render_fig5(sweep: OverheadSweepResult) -> str:
    """ASCII rendering of Fig. 5."""
    strategies = sorted({label.split("@")[0] for label in sweep.aggregates})
    series = {
        name: [sweep.rejection(name, coeff) for coeff in sweep.coefficients]
        for name in strategies
    }
    parts = [
        ascii_line_chart(
            [100 * c for c in sweep.coefficients],
            series,
            title="Fig. 5: rejection %% vs prediction overhead "
            "(x = coefficient x 100, perfect prediction, VT group, "
            f"{sweep.scale.n_traces} traces x {sweep.scale.n_requests} "
            "requests)",
        )
    ]
    rows = []
    for name in strategies:
        row = [name]
        row.extend(sweep.rejection(name, coeff) for coeff in sweep.coefficients)
        row.append(sweep.rejection(name, "off"))
        crossover = sweep.crossover_coefficient(name)
        row.append("never" if crossover is None else f"{100 * crossover:g}%")
        rows.append(row)
    headers = ["strategy", *(f"{100 * c:g}%" for c in sweep.coefficients)]
    headers += ["off", "crossover"]
    parts.append(
        ascii_table(
            headers,
            rows,
            title="Paper: crossover at ~2-4% of the mean inter-arrival time",
        )
    )
    return "\n\n".join(parts)
