"""Process-parallel execution of the (spec x trace) experiment matrix.

The experiment harness is embarrassingly parallel: every (configuration,
trace) cell is an independent simulation, fully determined by the spec's
factories and the trace (all seeding happens at spec construction, never
at run time).  :func:`execute_matrix` shards the matrix into work units,
fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`,
and folds the results back in stable spec-major order — so the returned
aggregates are **bit-identical** to the serial path of
:func:`repro.experiments.runner.run_matrix`.

Robustness: a unit that raises inside a worker, times out, or loses its
worker process (``BrokenProcessPool``) is retried up to
``ParallelConfig.retries`` times with exponential backoff plus seeded
jitter (deterministic per unit and attempt, so schedules are
reproducible and retry storms decorrelate); a unit that still fails is
recorded as a :class:`~repro.experiments.runner.CellFailure` on its
aggregate instead of killing the sweep.  Passing ``checkpoint=`` makes
the run crash-safe: every final cell outcome is journaled as it lands
(:mod:`repro.experiments.checkpoint`), and a re-run against the same
journal resumes bit-identically, re-executing only incomplete cells.

Work units must pickle, which is why :class:`RunSpec` factories are
resolved *by registry name* (:meth:`RunSpec.from_names`,
:mod:`repro.registry`) rather than closures; specs whose factories do
not pickle are rejected with a diagnostic before any worker starts.
"""

from __future__ import annotations

import heapq
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.experiments.runner import (
    Aggregate,
    CellFailure,
    CellStats,
    RunSpec,
)
from repro.model.platform import Platform
from repro.sim.result import SimulationResult
from repro.sim.simulator import Simulator
from repro.util.rng import derive_seed
from repro.util.validation import check_non_negative
from repro.workload.trace import Trace

__all__ = ["ParallelConfig", "execute_matrix"]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the parallel experiment executor.

    Attributes
    ----------
    jobs:
        Worker processes; ``0`` means ``os.cpu_count()``.
    chunk_size:
        Work units dispatched per task (amortises IPC overhead).
        ``None`` picks ``ceil(n_units / (4 * jobs))``, capped at 8, so
        every worker gets several chunks for load balancing.
    timeout:
        Optional per-unit wall-clock budget in seconds.  A unit over
        budget is recorded as failed (and retried while attempts
        remain); the busy worker is not killed — it frees its slot when
        the simulation eventually returns.  Setting a timeout forces
        ``chunk_size=1`` so budgets are per-unit, not per-chunk.
    retries:
        How many times a failed unit is re-submitted (0 = one attempt).
    backoff_base:
        Delay in seconds before the first retry of a unit; subsequent
        retries multiply by ``backoff_factor`` up to ``backoff_max``.
        ``0.0`` disables backoff (immediate re-submission).
    backoff_factor:
        Exponential growth factor between consecutive retries (>= 1).
    backoff_max:
        Cap on the un-jittered delay in seconds.
    backoff_jitter:
        Relative jitter: the delay is scaled by a seeded uniform factor
        in ``[1, 1 + backoff_jitter]``, derived per (unit, attempt) from
        ``jitter_seed`` — deterministic across runs, decorrelated across
        units so retry storms do not re-synchronise.
    jitter_seed:
        Master seed of the jitter stream (see :meth:`retry_delay`).
    """

    jobs: int = 0
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    backoff_jitter: float = 0.25
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.timeout is not None:
            check_non_negative("timeout", self.timeout)
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        check_non_negative("backoff_base", self.backoff_base)
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        check_non_negative("backoff_max", self.backoff_max)
        check_non_negative("backoff_jitter", self.backoff_jitter)

    def retry_delay(
        self, spec_index: int, trace_index: int, attempt: int
    ) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based) of
        one (spec, trace) unit.

        ``min(backoff_max, base * factor**(attempt-1))`` scaled by a
        seeded jitter factor — a pure function of the config and the
        unit, so retry schedules are reproducible.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if delay <= 0.0:
            return 0.0
        rng = np.random.default_rng(
            derive_seed(
                self.jitter_seed,
                f"backoff:{spec_index}:{trace_index}:{attempt}",
            )
        )
        return delay * (1.0 + self.backoff_jitter * float(rng.random()))

    def resolved_jobs(self) -> int:
        """The effective worker count."""
        return self.jobs if self.jobs > 0 else (os.cpu_count() or 1)

    def resolved_chunk_size(self, n_units: int) -> int:
        """The effective units-per-dispatch."""
        if self.timeout is not None:
            return 1
        if self.chunk_size is not None:
            return self.chunk_size
        jobs = self.resolved_jobs()
        return max(1, min(8, -(-n_units // (4 * jobs))))


@dataclass(frozen=True)
class _UnitOutcome:
    """What one (spec, trace) unit produced inside a worker."""

    spec_index: int
    trace_index: int
    wall_time: float
    result: SimulationResult | None = None
    error: str | None = None


# Worker-side state, set once per process by the pool initializer so
# per-chunk submissions only carry small index tuples.
_WORKER_STATE: (
    tuple[Platform, Sequence[RunSpec], Sequence[Trace], int] | None
) = None


def _init_worker(
    platform: Platform,
    specs: Sequence[RunSpec],
    traces: Sequence[Trace],
    shards: int = 1,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (platform, specs, traces, shards)


def _run_chunk(units: Sequence[tuple[int, int]]) -> list[_UnitOutcome]:
    """Execute a chunk of (spec_index, trace_index) units in a worker.

    Exceptions are captured per unit so one bad cell cannot take down
    the chunk (let alone the pool).  With ``shards > 1`` each cell runs
    through :func:`repro.sim.sharded.simulate_sharded` with in-process
    shard windows — never a nested pool — which is bit-identical to the
    serial run.
    """
    assert _WORKER_STATE is not None, "worker initializer did not run"
    platform, specs, traces, shards = _WORKER_STATE
    outcomes = []
    for spec_index, trace_index in units:
        spec = specs[spec_index]
        start = time.perf_counter()
        try:
            if shards > 1:
                from repro.sim.sharded import simulate_sharded

                result = simulate_sharded(
                    traces[trace_index],
                    platform,
                    spec.strategy(),
                    spec.predictor(),
                    spec.sim_config,
                    shards=shards,
                )
            else:
                simulator = Simulator(
                    platform,
                    spec.strategy(),
                    spec.predictor(),
                    spec.sim_config,
                )
                result = simulator.run(traces[trace_index])
        except Exception as exc:  # recorded, not raised: see CellFailure
            outcomes.append(
                _UnitOutcome(
                    spec_index,
                    trace_index,
                    wall_time=time.perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            outcomes.append(
                _UnitOutcome(
                    spec_index,
                    trace_index,
                    wall_time=time.perf_counter() - start,
                    result=result,
                )
            )
    return outcomes


def _check_picklable(specs: Sequence[RunSpec]) -> None:
    """Fail fast, with the offending label, on unpicklable specs."""
    for spec in specs:
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise ValueError(
                f"spec {spec.label!r} does not pickle and cannot be "
                f"dispatched to worker processes — build it with "
                f"RunSpec.from_names() (registry-name factories) instead "
                f"of closures/lambdas ({type(exc).__name__}: {exc})"
            ) from exc


def execute_matrix(
    traces: Sequence[Trace],
    platform: Platform,
    specs: Sequence[RunSpec],
    *,
    keep_results: bool = False,
    progress: Callable[[str, int, int], None] | None = None,
    config: ParallelConfig | None = None,
    checkpoint: str | os.PathLike[str] | None = None,
    shards: int = 1,
) -> dict[str, Aggregate]:
    """Run the (spec x trace) matrix on a process pool.

    Prefer calling :func:`repro.experiments.runner.run_matrix` with
    ``parallel=``; this is the engine behind it.  Aggregates come back
    in spec order with per-trace entries in trace order regardless of
    completion order; failed cells land in ``Aggregate.failures``.

    With ``checkpoint=`` every final cell outcome is journaled as it
    lands (:mod:`repro.experiments.checkpoint`); re-running against the
    same journal skips the journaled cells and folds their metrics back
    from ``float.hex`` records, so a resumed run is bit-identical to an
    uninterrupted one.

    ``shards > 1`` splits every trace at idle-point boundaries inside
    each worker (:func:`repro.sim.sharded.simulate_sharded`, in-process
    windows — workers never nest pools); results and aggregates stay
    bit-identical to ``shards=1``.  The shard count is part of the
    checkpoint fingerprint, so a journal written at one shard count
    refuses to resume at another.
    """
    config = config or ParallelConfig()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    aggregates = {spec.label: Aggregate(spec.label) for spec in specs}
    if not traces or not specs:
        return aggregates
    _check_picklable(specs)

    journal = None
    resumed: dict[tuple[int, int], dict] = {}
    if checkpoint is not None:
        if keep_results:
            raise ValueError(
                "keep_results cannot be combined with checkpoint= — full "
                "SimulationResults are not journaled, so a resumed run "
                "could not reconstruct them"
            )
        from repro.experiments.checkpoint import (
            CheckpointJournal,
            compute_fingerprint,
        )

        journal = CheckpointJournal(
            checkpoint,
            compute_fingerprint(platform, specs, traces, shards=shards),
        )
        resumed = journal.completed

    units = [
        (spec_index, trace_index)
        for spec_index in range(len(specs))
        for trace_index in range(len(traces))
        if (spec_index, trace_index) not in resumed
    ]
    chunk_size = config.resolved_chunk_size(max(1, len(units)))
    chunks = [
        units[start:start + chunk_size]
        for start in range(0, len(units), chunk_size)
    ]
    max_attempts = config.retries + 1

    # (spec_index, trace_index) -> latest _UnitOutcome; attempts and
    # charged backoff delays per unit.
    outcomes: dict[tuple[int, int], _UnitOutcome] = {}
    attempts: dict[tuple[int, int], int] = {unit: 0 for unit in units}
    retry_delays: dict[tuple[int, int], list[float]] = {
        unit: [] for unit in units
    }

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(config.resolved_jobs(), len(chunks)),
            initializer=_init_worker,
            initargs=(platform, specs, traces, shards),
        )

    def record(outcome: _UnitOutcome) -> None:
        unit = (outcome.spec_index, outcome.trace_index)
        outcomes[unit] = outcome
        if journal is not None:
            entry: dict = {
                "spec": outcome.spec_index,
                "trace": outcome.trace_index,
                "attempts": attempts[unit],
                "retry_delays": list(retry_delays[unit]),
            }
            if outcome.error is None:
                assert outcome.result is not None
                entry.update(
                    ok=True,
                    rejection_hex=outcome.result.rejection_percentage.hex(),
                    energy_hex=outcome.result.normalized_energy.hex(),
                    wall_time=outcome.wall_time,
                    solver_calls=outcome.result.solver_calls_total,
                    verified=(
                        outcome.result.verification.ok
                        if outcome.result.verification is not None
                        else None
                    ),
                )
                if outcome.result.metrics is not None:
                    # Hex floats survive the JSON round trip exactly, so
                    # a resumed aggregate's merged metrics stay
                    # bit-identical to an uninterrupted run.
                    entry["metrics"] = outcome.result.metrics.to_dict(
                        hex_floats=True
                    )
            else:
                entry.update(ok=False, error=outcome.error)
            journal.record(entry)
        if progress is not None:
            progress(
                specs[outcome.spec_index].label,
                outcome.trace_index,
                len(traces),
            )

    # Retries wait out their seeded backoff on a (ready_at, seq, chunk)
    # heap before re-entering the submission queue.
    delayed: list[tuple[float, int, list[tuple[int, int]]]] = []
    delay_seq = 0

    def schedule_retry(unit: tuple[int, int]) -> None:
        nonlocal delay_seq
        delay = config.retry_delay(unit[0], unit[1], attempts[unit])
        retry_delays[unit].append(delay)
        heapq.heappush(
            delayed, (time.monotonic() + delay, delay_seq, [unit])
        )
        delay_seq += 1

    pool = make_pool() if chunks else None
    try:
        pending: dict[Future, list[tuple[int, int]]] = {}
        deadlines: dict[Future, float] = {}
        queue = list(chunks)
        while queue or pending or delayed:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                queue.append(heapq.heappop(delayed)[2])
            while queue and len(pending) < 2 * config.resolved_jobs():
                chunk = queue.pop(0)
                for unit in chunk:
                    attempts[unit] += 1
                assert pool is not None
                future = pool.submit(_run_chunk, chunk)
                pending[future] = chunk
                if config.timeout is not None:
                    deadlines[future] = time.monotonic() + config.timeout
            if not pending:
                # Everything outstanding is waiting out its backoff.
                time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            wakeups = list(deadlines.values())
            if delayed:
                wakeups.append(delayed[0][0])
            wait_budget = None
            if wakeups:
                wait_budget = max(0.0, min(wakeups) - time.monotonic())
            done, _ = wait(
                pending, timeout=wait_budget, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            pool_broken = False
            for future in done:
                chunk = pending.pop(future)
                deadlines.pop(future, None)
                try:
                    chunk_outcomes = future.result()
                except BrokenProcessPool:
                    # A worker died hard (crash, OOM kill). The chunk's
                    # units are retried or recorded; the pool is rebuilt
                    # below once this batch of futures is drained.
                    pool_broken = True
                    _requeue_or_fail(
                        chunk,
                        attempts,
                        max_attempts,
                        "worker process crashed (BrokenProcessPool)",
                        record,
                        schedule_retry,
                    )
                    continue
                except Exception as exc:
                    _requeue_or_fail(
                        chunk,
                        attempts,
                        max_attempts,
                        f"{type(exc).__name__}: {exc}",
                        record,
                        schedule_retry,
                    )
                    continue
                for outcome in chunk_outcomes:
                    unit = (outcome.spec_index, outcome.trace_index)
                    if (
                        outcome.error is not None
                        and attempts[unit] < max_attempts
                    ):
                        schedule_retry(unit)
                        continue
                    record(outcome)
            if pool_broken:
                # In-flight chunks are lost with the pool; requeue them
                # without charging an attempt or a backoff delay (the
                # crash was not their failure).
                for future, chunk in pending.items():
                    future.cancel()
                    for unit in chunk:
                        attempts[unit] -= 1
                    queue.append(chunk)
                pending.clear()
                deadlines.clear()
                assert pool is not None
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
                continue
            expired = [
                future
                for future in list(pending)
                if deadlines.get(future, now + 1) <= now
            ]
            for future in expired:
                chunk = pending.pop(future)
                deadlines.pop(future, None)
                future.cancel()  # a running chunk keeps its slot; see docs
                _requeue_or_fail(
                    chunk,
                    attempts,
                    max_attempts,
                    f"timed out after {config.timeout:g}s "
                    "(worker still draining)",
                    record,
                    schedule_retry,
                )
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if journal is not None:
            journal.close()

    # Fold in stable spec-major, trace-ascending order: identical floats,
    # identical list order, identical dict order to the serial path.
    # Resumed cells fold from their journal entries (float.fromhex), so a
    # resumed aggregate is bit-identical to an uninterrupted run.
    for spec_index, spec in enumerate(specs):
        aggregate = aggregates[spec.label]
        for trace_index in range(len(traces)):
            unit = (spec_index, trace_index)
            entry = resumed.get(unit)
            if entry is not None:
                _fold_journal_entry(aggregate, spec.label, entry)
                continue
            outcome = outcomes.get(unit)
            if outcome is None or outcome.error is not None:
                aggregate.failures.append(
                    CellFailure(
                        label=spec.label,
                        trace_index=trace_index,
                        error=(
                            outcome.error
                            if outcome is not None
                            else "unit never completed"
                        ),
                        attempts=attempts[unit],
                        retry_delays=tuple(retry_delays[unit]),
                    )
                )
                continue
            assert outcome.result is not None
            aggregate.add(outcome.result, keep_result=keep_results)
            aggregate.cell_stats.append(
                CellStats(
                    label=spec.label,
                    trace_index=trace_index,
                    wall_time=outcome.wall_time,
                    solver_calls=outcome.result.solver_calls_total,
                    attempts=attempts[unit],
                    verified=(
                        outcome.result.verification.ok
                        if outcome.result.verification is not None
                        else None
                    ),
                    retry_delays=tuple(retry_delays[unit]),
                    metrics=outcome.result.metrics,
                )
            )
    return aggregates


def _fold_journal_entry(
    aggregate: Aggregate, label: str, entry: dict
) -> None:
    """Fold one journaled cell outcome from a previous (crashed) run."""
    trace_index = entry["trace"]
    delays = tuple(entry.get("retry_delays", ()))
    if not entry["ok"]:
        aggregate.failures.append(
            CellFailure(
                label=label,
                trace_index=trace_index,
                error=entry["error"],
                attempts=entry["attempts"],
                retry_delays=delays,
            )
        )
        return
    aggregate.rejection_percentages.append(
        float.fromhex(entry["rejection_hex"])
    )
    aggregate.normalized_energies.append(float.fromhex(entry["energy_hex"]))
    metrics_dict = entry.get("metrics")
    if metrics_dict is not None:
        from repro.obs.metrics import MetricsSnapshot

        metrics = MetricsSnapshot.from_dict(metrics_dict)
    else:
        metrics = None
    aggregate.cell_stats.append(
        CellStats(
            label=label,
            trace_index=trace_index,
            wall_time=entry["wall_time"],
            solver_calls=entry["solver_calls"],
            attempts=entry["attempts"],
            verified=entry["verified"],
            retry_delays=delays,
            metrics=metrics,
        )
    )


def _requeue_or_fail(
    chunk: Sequence[tuple[int, int]],
    attempts: dict[tuple[int, int], int],
    max_attempts: int,
    error: str,
    record: Callable[[_UnitOutcome], None],
    schedule_retry: Callable[[tuple[int, int]], None],
) -> None:
    """Schedule retry singletons for a failed chunk; record exhausted
    units.

    Retrying units one-by-one isolates a poisonous cell from its chunk
    mates on the second attempt, and each retry waits out its seeded
    backoff delay before re-submission.
    """
    for unit in chunk:
        if attempts[unit] < max_attempts:
            schedule_retry(unit)
        else:
            record(
                _UnitOutcome(
                    spec_index=unit[0],
                    trace_index=unit[1],
                    wall_time=0.0,
                    error=error,
                )
            )
