"""Process-parallel execution of the (spec x trace) experiment matrix.

The experiment harness is embarrassingly parallel: every (configuration,
trace) cell is an independent simulation, fully determined by the spec's
factories and the trace (all seeding happens at spec construction, never
at run time).  :func:`execute_matrix` shards the matrix into work units,
fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`,
and folds the results back in stable spec-major order — so the returned
aggregates are **bit-identical** to the serial path of
:func:`repro.experiments.runner.run_matrix`.

Robustness: a unit that raises inside a worker, times out, or loses its
worker process (``BrokenProcessPool``) is retried up to
``ParallelConfig.retries`` times; a unit that still fails is recorded as
a :class:`~repro.experiments.runner.CellFailure` on its aggregate
instead of killing the sweep.

Work units must pickle, which is why :class:`RunSpec` factories are
resolved *by registry name* (:meth:`RunSpec.from_names`,
:mod:`repro.registry`) rather than closures; specs whose factories do
not pickle are rejected with a diagnostic before any worker starts.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.runner import (
    Aggregate,
    CellFailure,
    CellStats,
    RunSpec,
)
from repro.model.platform import Platform
from repro.sim.result import SimulationResult
from repro.sim.simulator import Simulator
from repro.util.validation import check_non_negative
from repro.workload.trace import Trace

__all__ = ["ParallelConfig", "execute_matrix"]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the parallel experiment executor.

    Attributes
    ----------
    jobs:
        Worker processes; ``0`` means ``os.cpu_count()``.
    chunk_size:
        Work units dispatched per task (amortises IPC overhead).
        ``None`` picks ``ceil(n_units / (4 * jobs))``, capped at 8, so
        every worker gets several chunks for load balancing.
    timeout:
        Optional per-unit wall-clock budget in seconds.  A unit over
        budget is recorded as failed (and retried while attempts
        remain); the busy worker is not killed — it frees its slot when
        the simulation eventually returns.  Setting a timeout forces
        ``chunk_size=1`` so budgets are per-unit, not per-chunk.
    retries:
        How many times a failed unit is re-submitted (0 = one attempt).
    """

    jobs: int = 0
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.timeout is not None:
            check_non_negative("timeout", self.timeout)
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    def resolved_jobs(self) -> int:
        """The effective worker count."""
        return self.jobs if self.jobs > 0 else (os.cpu_count() or 1)

    def resolved_chunk_size(self, n_units: int) -> int:
        """The effective units-per-dispatch."""
        if self.timeout is not None:
            return 1
        if self.chunk_size is not None:
            return self.chunk_size
        jobs = self.resolved_jobs()
        return max(1, min(8, -(-n_units // (4 * jobs))))


@dataclass(frozen=True)
class _UnitOutcome:
    """What one (spec, trace) unit produced inside a worker."""

    spec_index: int
    trace_index: int
    wall_time: float
    result: SimulationResult | None = None
    error: str | None = None


# Worker-side state, set once per process by the pool initializer so
# per-chunk submissions only carry small index tuples.
_WORKER_STATE: tuple[Platform, Sequence[RunSpec], Sequence[Trace]] | None = None


def _init_worker(
    platform: Platform, specs: Sequence[RunSpec], traces: Sequence[Trace]
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (platform, specs, traces)


def _run_chunk(units: Sequence[tuple[int, int]]) -> list[_UnitOutcome]:
    """Execute a chunk of (spec_index, trace_index) units in a worker.

    Exceptions are captured per unit so one bad cell cannot take down
    the chunk (let alone the pool).
    """
    assert _WORKER_STATE is not None, "worker initializer did not run"
    platform, specs, traces = _WORKER_STATE
    outcomes = []
    for spec_index, trace_index in units:
        spec = specs[spec_index]
        start = time.perf_counter()
        try:
            simulator = Simulator(
                platform, spec.strategy(), spec.predictor(), spec.sim_config
            )
            result = simulator.run(traces[trace_index])
        except Exception as exc:  # recorded, not raised: see CellFailure
            outcomes.append(
                _UnitOutcome(
                    spec_index,
                    trace_index,
                    wall_time=time.perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            outcomes.append(
                _UnitOutcome(
                    spec_index,
                    trace_index,
                    wall_time=time.perf_counter() - start,
                    result=result,
                )
            )
    return outcomes


def _check_picklable(specs: Sequence[RunSpec]) -> None:
    """Fail fast, with the offending label, on unpicklable specs."""
    for spec in specs:
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise ValueError(
                f"spec {spec.label!r} does not pickle and cannot be "
                f"dispatched to worker processes — build it with "
                f"RunSpec.from_names() (registry-name factories) instead "
                f"of closures/lambdas ({type(exc).__name__}: {exc})"
            ) from exc


def execute_matrix(
    traces: Sequence[Trace],
    platform: Platform,
    specs: Sequence[RunSpec],
    *,
    keep_results: bool = False,
    progress: Callable[[str, int, int], None] | None = None,
    config: ParallelConfig | None = None,
) -> dict[str, Aggregate]:
    """Run the (spec x trace) matrix on a process pool.

    Prefer calling :func:`repro.experiments.runner.run_matrix` with
    ``parallel=``; this is the engine behind it.  Aggregates come back
    in spec order with per-trace entries in trace order regardless of
    completion order; failed cells land in ``Aggregate.failures``.
    """
    config = config or ParallelConfig()
    aggregates = {spec.label: Aggregate(spec.label) for spec in specs}
    if not traces or not specs:
        return aggregates
    _check_picklable(specs)

    units = [
        (spec_index, trace_index)
        for spec_index in range(len(specs))
        for trace_index in range(len(traces))
    ]
    chunk_size = config.resolved_chunk_size(len(units))
    chunks = [
        units[start:start + chunk_size]
        for start in range(0, len(units), chunk_size)
    ]
    max_attempts = config.retries + 1

    # (spec_index, trace_index) -> latest _UnitOutcome; attempts per unit.
    outcomes: dict[tuple[int, int], _UnitOutcome] = {}
    attempts: dict[tuple[int, int], int] = {unit: 0 for unit in units}

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(config.resolved_jobs(), len(chunks)),
            initializer=_init_worker,
            initargs=(platform, specs, traces),
        )

    def record(outcome: _UnitOutcome) -> None:
        outcomes[(outcome.spec_index, outcome.trace_index)] = outcome
        if progress is not None:
            progress(
                specs[outcome.spec_index].label,
                outcome.trace_index,
                len(traces),
            )

    pool = make_pool()
    try:
        pending: dict[Future, list[tuple[int, int]]] = {}
        deadlines: dict[Future, float] = {}
        queue = list(chunks)
        while queue or pending:
            while queue and len(pending) < 2 * config.resolved_jobs():
                chunk = queue.pop(0)
                for unit in chunk:
                    attempts[unit] += 1
                future = pool.submit(_run_chunk, chunk)
                pending[future] = chunk
                if config.timeout is not None:
                    deadlines[future] = time.monotonic() + config.timeout
            wait_budget = None
            if deadlines:
                wait_budget = max(
                    0.0, min(deadlines.values()) - time.monotonic()
                )
            done, _ = wait(
                pending, timeout=wait_budget, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            pool_broken = False
            for future in done:
                chunk = pending.pop(future)
                deadlines.pop(future, None)
                try:
                    chunk_outcomes = future.result()
                except BrokenProcessPool:
                    # A worker died hard (crash, OOM kill). The chunk's
                    # units are retried or recorded; the pool is rebuilt
                    # below once this batch of futures is drained.
                    pool_broken = True
                    queue.extend(
                        _requeue_or_fail(
                            chunk,
                            attempts,
                            max_attempts,
                            "worker process crashed (BrokenProcessPool)",
                            record,
                        )
                    )
                    continue
                except Exception as exc:
                    queue.extend(
                        _requeue_or_fail(
                            chunk,
                            attempts,
                            max_attempts,
                            f"{type(exc).__name__}: {exc}",
                            record,
                        )
                    )
                    continue
                for outcome in chunk_outcomes:
                    unit = (outcome.spec_index, outcome.trace_index)
                    if (
                        outcome.error is not None
                        and attempts[unit] < max_attempts
                    ):
                        queue.append([unit])
                        continue
                    record(outcome)
            if pool_broken:
                # In-flight chunks are lost with the pool; requeue them
                # without charging an attempt (not their failure).
                for future, chunk in pending.items():
                    future.cancel()
                    for unit in chunk:
                        attempts[unit] -= 1
                    queue.append(chunk)
                pending.clear()
                deadlines.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
                continue
            expired = [
                future
                for future in list(pending)
                if deadlines.get(future, now + 1) <= now
            ]
            for future in expired:
                chunk = pending.pop(future)
                deadlines.pop(future, None)
                future.cancel()  # a running chunk keeps its slot; see docs
                queue.extend(
                    _requeue_or_fail(
                        chunk,
                        attempts,
                        max_attempts,
                        f"timed out after {config.timeout:g}s "
                        "(worker still draining)",
                        record,
                    )
                )
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    # Fold in stable spec-major, trace-ascending order: identical floats,
    # identical list order, identical dict order to the serial path.
    for spec_index, spec in enumerate(specs):
        aggregate = aggregates[spec.label]
        for trace_index in range(len(traces)):
            unit = (spec_index, trace_index)
            outcome = outcomes.get(unit)
            if outcome is None or outcome.error is not None:
                aggregate.failures.append(
                    CellFailure(
                        label=spec.label,
                        trace_index=trace_index,
                        error=(
                            outcome.error
                            if outcome is not None
                            else "unit never completed"
                        ),
                        attempts=attempts[unit],
                    )
                )
                continue
            assert outcome.result is not None
            aggregate.add(outcome.result, keep_result=keep_results)
            aggregate.cell_stats.append(
                CellStats(
                    label=spec.label,
                    trace_index=trace_index,
                    wall_time=outcome.wall_time,
                    solver_calls=outcome.result.solver_calls_total,
                    attempts=attempts[unit],
                    verified=(
                        outcome.result.verification.ok
                        if outcome.result.verification is not None
                        else None
                    ),
                )
            )
    return aggregates


def _requeue_or_fail(
    chunk: Sequence[tuple[int, int]],
    attempts: dict[tuple[int, int], int],
    max_attempts: int,
    error: str,
    record: Callable[[_UnitOutcome], None],
) -> list[list[tuple[int, int]]]:
    """Split a failed chunk into retry singletons; record exhausted units.

    Retrying units one-by-one isolates a poisonous cell from its chunk
    mates on the second attempt.
    """
    retries = []
    for unit in chunk:
        if attempts[unit] < max_attempts:
            retries.append([unit])
        else:
            record(
                _UnitOutcome(
                    spec_index=unit[0],
                    trace_index=unit[1],
                    wall_time=0.0,
                    error=error,
                )
            )
    return retries
