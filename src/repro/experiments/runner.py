"""Batch execution of simulations over trace groups.

Every experiment in this package is "run a set of configurations over a
set of traces and aggregate" — :func:`run_matrix` does exactly that, with
deterministic per-trace seeding so results are exactly reproducible and
directly comparable across configurations (each configuration sees the
*same* traces).

Passing ``parallel=`` fans the (spec x trace) matrix out over worker
processes (see :mod:`repro.experiments.executor`); results are folded
back in stable spec-major order, so the aggregates are bit-identical to
the serial path.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.core.base import MappingStrategy
from repro.model.platform import Platform
from repro.predict.base import Predictor
from repro.registry import predictor_factory, strategy_factory
from repro.sim.result import SimulationResult
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.executor import ParallelConfig
    from repro.faults.plan import FaultPlan
    from repro.obs.events import TraceOptions
    from repro.obs.metrics import MetricsSnapshot

__all__ = [
    "RunSpec",
    "Aggregate",
    "CellFailure",
    "CellStats",
    "run_matrix",
]


def _no_predictor() -> None:
    """Default predictor factory: no prediction (module-level so
    :class:`RunSpec` stays picklable)."""
    return None


@dataclass(frozen=True)
class RunSpec:
    """One configuration of the (strategy, predictor, simulator) triple.

    Factories (not instances) are taken so every trace gets fresh,
    state-free objects — predictors learn online and must not leak state
    across traces.  For parallel execution the factories must pickle;
    :meth:`from_names` builds specs from registry names, which always do.
    """

    label: str
    strategy: Callable[[], MappingStrategy]
    predictor: Callable[[], Predictor | None] = _no_predictor
    sim_config: SimulationConfig = field(default_factory=SimulationConfig)

    @classmethod
    def from_names(
        cls,
        label: str,
        strategy: str,
        predictor: str | None = None,
        *,
        predictor_kwargs: Mapping[str, Any] | None = None,
        sim_config: SimulationConfig | None = None,
    ) -> "RunSpec":
        """Build a picklable spec from registry names.

        ``predictor=None`` (or ``"off"``) runs without prediction;
        ``predictor_kwargs`` are forwarded to the predictor constructor
        (e.g. ``{"accuracy": 0.75, "seed": 3}`` for the noise
        predictors).  Names are validated eagerly so a typo fails at
        spec-construction time, not inside a worker process.
        """
        pred_factory: Callable[[], Predictor | None]
        if predictor is None:
            if predictor_kwargs:
                raise ValueError(
                    "predictor_kwargs given without a predictor name"
                )
            pred_factory = _no_predictor
        else:
            pred_factory = predictor_factory(
                predictor, **dict(predictor_kwargs or {})
            )
        return cls(
            label=label,
            strategy=strategy_factory(strategy),
            predictor=pred_factory,
            sim_config=sim_config or SimulationConfig(),
        )


@dataclass(frozen=True)
class CellStats:
    """Observability record for one executed (spec, trace) cell.

    ``verified`` is the invariant verifier's verdict when the spec ran
    with ``SimulationConfig(verify=True)`` and ``None`` when
    verification was off (a ``False`` can only appear through a
    tampered-with report: a dirty run raises before reaching the
    aggregate).

    ``retry_delays`` holds the seeded backoff delay (seconds) charged
    before each re-attempt in the parallel executor — empty for a
    first-attempt success, one entry per retry otherwise.

    ``metrics`` is the cell's :class:`~repro.obs.metrics.MetricsSnapshot`
    when the spec ran with ``SimulationConfig(tracer=TraceOptions(...))``
    and metrics collection on; ``None`` otherwise (DESIGN.md §11).
    """

    label: str
    trace_index: int
    wall_time: float
    solver_calls: int
    attempts: int = 1
    verified: bool | None = None
    retry_delays: tuple[float, ...] = ()
    metrics: "MetricsSnapshot | None" = None


@dataclass(frozen=True)
class CellFailure:
    """A (spec, trace) cell that failed after all retry attempts."""

    label: str
    trace_index: int
    error: str
    attempts: int
    retry_delays: tuple[float, ...] = ()


@dataclass
class Aggregate:
    """Per-configuration aggregation over all traces."""

    label: str
    rejection_percentages: list[float] = field(default_factory=list)
    normalized_energies: list[float] = field(default_factory=list)
    results: list[SimulationResult] = field(default_factory=list)
    cell_stats: list[CellStats] = field(default_factory=list)
    failures: list[CellFailure] = field(default_factory=list)

    def add(self, result: SimulationResult, *, keep_result: bool) -> None:
        """Fold one simulation result into the aggregate."""
        self.rejection_percentages.append(result.rejection_percentage)
        self.normalized_energies.append(result.normalized_energy)
        if keep_result:
            self.results.append(result)

    @property
    def mean_rejection(self) -> float:
        """Mean rejection percentage over all traces."""
        return statistics.fmean(self.rejection_percentages)

    @property
    def mean_energy(self) -> float:
        """Mean normalised energy over all traces."""
        return statistics.fmean(self.normalized_energies)

    @property
    def stdev_rejection(self) -> float:
        """Sample standard deviation of the rejection percentages."""
        if len(self.rejection_percentages) < 2:
            return 0.0
        return statistics.stdev(self.rejection_percentages)

    @property
    def n_traces(self) -> int:
        """How many traces have been aggregated."""
        return len(self.rejection_percentages)

    @property
    def n_failures(self) -> int:
        """How many cells failed (recorded, not aggregated)."""
        return len(self.failures)

    @property
    def total_wall_time(self) -> float:
        """Sum of per-cell wall times (compute cost, not elapsed time)."""
        return sum(stats.wall_time for stats in self.cell_stats)

    @property
    def total_solver_calls(self) -> int:
        """Sum of strategy invocations across all cells."""
        return sum(stats.solver_calls for stats in self.cell_stats)

    def _wall_time_percentile(self, fraction: float) -> float:
        walls = sorted(stats.wall_time for stats in self.cell_stats)
        if not walls:
            return 0.0
        rank = min(len(walls), max(1, math.ceil(fraction * len(walls))))
        return walls[rank - 1]

    @property
    def wall_time_p50(self) -> float:
        """Median per-cell wall time (nearest-rank, 0.0 with no cells)."""
        return self._wall_time_percentile(0.50)

    @property
    def wall_time_p95(self) -> float:
        """95th-percentile per-cell wall time (nearest-rank)."""
        return self._wall_time_percentile(0.95)

    @property
    def n_verified(self) -> int:
        """Cells whose schedule passed the invariant verifier."""
        return sum(1 for stats in self.cell_stats if stats.verified)

    @property
    def metrics(self) -> "MetricsSnapshot | None":
        """The configuration's metrics, merged across all cells.

        Counters sum, gauges take the max, histograms add bucket-wise
        (the algebra is associative and commutative, so the merged
        snapshot is identical across serial and parallel execution and
        across chunkings; DESIGN.md §11).  ``None`` when no cell
        collected metrics.
        """
        from repro.obs.metrics import MetricsSnapshot

        return MetricsSnapshot.merge_all(
            stats.metrics for stats in self.cell_stats
        )


def run_matrix(
    traces: Sequence[Trace],
    platform: Platform,
    specs: Sequence[RunSpec],
    *,
    keep_results: bool = False,
    progress: Callable[[str, int, int], None] | None = None,
    parallel: "ParallelConfig | int | None" = None,
    checkpoint: str | None = None,
    shards: int = 1,
    fault_plan: "FaultPlan | None" = None,
    tracer: "TraceOptions | None" = None,
    verify: bool | None = None,
) -> dict[str, Aggregate]:
    """Run every spec over every trace.

    Parameters
    ----------
    traces:
        The workload; every spec sees the same traces in the same order.
    platform:
        Platform shared by all runs.
    specs:
        Configurations to compare; labels must be unique.
    keep_results:
        Retain each :class:`SimulationResult` (memory-heavy) in addition
        to the aggregated metrics.
    fault_plan, tracer, verify:
        The same keyword family :func:`~repro.sim.simulator.simulate`
        takes, applied uniformly to *every* spec's
        :class:`~repro.sim.simulator.SimulationConfig` (a keyword given
        here overrides the per-spec field): inject one
        :class:`~repro.faults.plan.FaultPlan` across the sweep, collect
        observability with one :class:`~repro.obs.events.TraceOptions`,
        or force invariant verification matrix-wide.
    progress:
        Optional callback ``(label, trace_index, n_traces)``.  Serially
        it fires before each simulation; in parallel mode it fires as
        cells *complete* (completion order is nondeterministic, the
        folded aggregates are not).
    parallel:
        ``None`` runs in-process (the historical behaviour).  A
        :class:`~repro.experiments.executor.ParallelConfig` (or a bare
        worker count) fans cells out over a process pool; aggregates are
        bit-identical to the serial path, and failing cells are recorded
        in ``Aggregate.failures`` instead of aborting the sweep.
    checkpoint:
        Optional path of a crash-safe checkpoint journal (parallel mode
        only, see :mod:`repro.experiments.checkpoint`): completed cells
        are journaled as they finish, and re-running with the same
        arguments and journal resumes from where the previous run died,
        bit-identical to an uninterrupted run.
    shards:
        Split every trace at idle-point boundaries into up to this many
        windows (:func:`repro.sim.sharded.simulate_sharded`) — results
        stay bit-identical to ``shards=1``.  Parallel mode shards
        in-process inside each pool worker; serial mode shards
        in-process directly.  The shard count joins the checkpoint
        fingerprint, so journals do not resume across shard settings.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    labels = [spec.label for spec in specs]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate spec labels: {labels}")
    overrides: dict[str, object] = {}
    if fault_plan is not None:
        overrides["fault_plan"] = fault_plan
    if tracer is not None:
        overrides["tracer"] = tracer
    if verify is not None:
        overrides["verify"] = verify
    if overrides:
        specs = [
            replace(spec, sim_config=replace(spec.sim_config, **overrides))
            for spec in specs
        ]
    if checkpoint is not None and parallel is None:
        raise ValueError(
            "checkpoint journaling requires the parallel executor; pass "
            "parallel= (e.g. parallel=1 for a single worker)"
        )
    if parallel is not None:
        from repro.experiments.executor import ParallelConfig, execute_matrix

        if isinstance(parallel, int):
            parallel = ParallelConfig(jobs=parallel)
        return execute_matrix(
            traces,
            platform,
            specs,
            keep_results=keep_results,
            progress=progress,
            config=parallel,
            checkpoint=checkpoint,
            shards=shards,
        )
    aggregates = {spec.label: Aggregate(spec.label) for spec in specs}
    for spec in specs:
        for index, trace in enumerate(traces):
            if progress is not None:
                progress(spec.label, index, len(traces))
            start = time.perf_counter()
            if shards > 1:
                from repro.sim.sharded import simulate_sharded

                result = simulate_sharded(
                    trace,
                    platform,
                    spec.strategy(),
                    spec.predictor(),
                    spec.sim_config,
                    shards=shards,
                )
            else:
                simulator = Simulator(
                    platform,
                    spec.strategy(),
                    spec.predictor(),
                    spec.sim_config,
                )
                result = simulator.run(trace)
            aggregate = aggregates[spec.label]
            aggregate.add(result, keep_result=keep_results)
            aggregate.cell_stats.append(
                CellStats(
                    label=spec.label,
                    trace_index=index,
                    wall_time=time.perf_counter() - start,
                    solver_calls=result.solver_calls_total,
                    verified=(
                        result.verification.ok
                        if result.verification is not None
                        else None
                    ),
                    metrics=result.metrics,
                )
            )
    return aggregates
