"""Batch execution of simulations over trace groups.

Every experiment in this package is "run a set of configurations over a
set of traces and aggregate" — :func:`run_matrix` does exactly that, with
deterministic per-trace seeding so results are exactly reproducible and
directly comparable across configurations (each configuration sees the
*same* traces).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.base import MappingStrategy
from repro.model.platform import Platform
from repro.predict.base import Predictor
from repro.sim.result import SimulationResult
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.trace import Trace

__all__ = ["RunSpec", "Aggregate", "run_matrix"]


@dataclass(frozen=True)
class RunSpec:
    """One configuration of the (strategy, predictor, simulator) triple.

    Factories (not instances) are taken so every trace gets fresh,
    state-free objects — predictors learn online and must not leak state
    across traces.
    """

    label: str
    strategy: Callable[[], MappingStrategy]
    predictor: Callable[[], Predictor | None] = lambda: None
    sim_config: SimulationConfig = field(default_factory=SimulationConfig)


@dataclass
class Aggregate:
    """Per-configuration aggregation over all traces."""

    label: str
    rejection_percentages: list[float] = field(default_factory=list)
    normalized_energies: list[float] = field(default_factory=list)
    results: list[SimulationResult] = field(default_factory=list)

    def add(self, result: SimulationResult, *, keep_result: bool) -> None:
        """Fold one simulation result into the aggregate."""
        self.rejection_percentages.append(result.rejection_percentage)
        self.normalized_energies.append(result.normalized_energy)
        if keep_result:
            self.results.append(result)

    @property
    def mean_rejection(self) -> float:
        """Mean rejection percentage over all traces."""
        return statistics.fmean(self.rejection_percentages)

    @property
    def mean_energy(self) -> float:
        """Mean normalised energy over all traces."""
        return statistics.fmean(self.normalized_energies)

    @property
    def stdev_rejection(self) -> float:
        """Sample standard deviation of the rejection percentages."""
        if len(self.rejection_percentages) < 2:
            return 0.0
        return statistics.stdev(self.rejection_percentages)

    @property
    def n_traces(self) -> int:
        """How many traces have been aggregated."""
        return len(self.rejection_percentages)


def run_matrix(
    traces: Sequence[Trace],
    platform: Platform,
    specs: Sequence[RunSpec],
    *,
    keep_results: bool = False,
    progress: Callable[[str, int, int], None] | None = None,
) -> dict[str, Aggregate]:
    """Run every spec over every trace.

    Parameters
    ----------
    traces:
        The workload; every spec sees the same traces in the same order.
    platform:
        Platform shared by all runs.
    specs:
        Configurations to compare; labels must be unique.
    keep_results:
        Retain each :class:`SimulationResult` (memory-heavy) in addition
        to the aggregated metrics.
    progress:
        Optional callback ``(label, trace_index, n_traces)`` invoked
        before each simulation (for long-run reporting).
    """
    labels = [spec.label for spec in specs]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate spec labels: {labels}")
    aggregates = {spec.label: Aggregate(spec.label) for spec in specs}
    for spec in specs:
        for index, trace in enumerate(traces):
            if progress is not None:
                progress(spec.label, index, len(traces))
            simulator = Simulator(
                platform, spec.strategy(), spec.predictor(), spec.sim_config
            )
            aggregates[spec.label].add(
                simulator.run(trace), keep_result=keep_results
            )
    return aggregates
