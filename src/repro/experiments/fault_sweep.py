"""E8 — fault sensitivity: rejection/energy vs outage and predictor-failure rates.

The paper's evaluation assumes a fault-free platform; this experiment
quantifies how gracefully the admission pipeline degrades when it is
not.  A grid of expected {outages} x {predictor-fault windows} per trace
is swept: each cell generates a seeded :class:`~repro.faults.plan.FaultPlan`
per trace (``FaultPlan.generate``), replays the same traces under it,
and reports mean rejection, normalised energy, evictions and recorded
degradation events.  Everything is derived from ``(master_seed, seed)``,
so the sweep is bit-reproducible.

Expected shape: rejection and evictions grow with the outage rate (lost
capacity + displaced jobs that no longer fit), while predictor-fault
windows push the with-prediction configuration back toward its
predictor-off baseline — prediction value degrades to zero, it must
never degrade below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import fmean
from typing import Callable, Sequence

from repro.experiments.common import standard_platform, standard_traces
from repro.experiments.config import HarnessScale
from repro.faults.plan import FaultPlan
from repro.registry import resolve_predictor, resolve_strategy
from repro.sim.simulator import SimulationConfig, Simulator
from repro.util.rng import derive_seed
from repro.util.tables import ascii_table
from repro.workload.tracegen import DeadlineGroup

__all__ = [
    "FaultSweepCell",
    "FaultSweepResult",
    "run_fault_sweep",
    "render_fault_sweep",
]


@dataclass(frozen=True)
class FaultSweepCell:
    """Mean metrics of one (outage rate, predictor-fault rate) cell."""

    outages_per_trace: float
    predictor_faults_per_trace: float
    mean_rejection: float
    mean_energy: float
    mean_evictions: float
    mean_degradations: float


@dataclass
class FaultSweepResult:
    """All cells of one fault-sensitivity sweep."""

    scale: HarnessScale
    group: DeadlineGroup
    strategy: str
    predictor: str | None
    seed: int
    cells: list[FaultSweepCell] = field(default_factory=list)

    def cell(
        self, outages: float, predictor_faults: float
    ) -> FaultSweepCell:
        """Look up one grid cell by its two rates."""
        for candidate in self.cells:
            if (
                candidate.outages_per_trace == outages
                and candidate.predictor_faults_per_trace == predictor_faults
            ):
                return candidate
        raise KeyError(f"no cell ({outages}, {predictor_faults})")

    def to_payload(self) -> dict:
        """JSON-safe payload for ``repro faults --sweep --json``."""
        return {
            "group": self.group.value,
            "strategy": self.strategy,
            "predictor": self.predictor,
            "seed": self.seed,
            "n_traces": self.scale.n_traces,
            "n_requests": self.scale.n_requests,
            "cells": [
                {
                    "outages_per_trace": cell.outages_per_trace,
                    "predictor_faults_per_trace": (
                        cell.predictor_faults_per_trace
                    ),
                    "mean_rejection": cell.mean_rejection,
                    "mean_energy": cell.mean_energy,
                    "mean_evictions": cell.mean_evictions,
                    "mean_degradations": cell.mean_degradations,
                }
                for cell in self.cells
            ],
        }


def run_fault_sweep(
    scale: HarnessScale | None = None,
    *,
    group: DeadlineGroup = DeadlineGroup.VT,
    strategy: str = "heuristic",
    predictor: str | None = "oracle",
    outage_grid: Sequence[float] = (0.0, 1.0, 2.0),
    predictor_fault_grid: Sequence[float] = (0.0, 1.0, 2.0),
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> FaultSweepResult:
    """Sweep fault intensity and measure the degradation it causes.

    ``outage_grid`` and ``predictor_fault_grid`` are *expected events
    per trace* (Poisson means); each trace in each cell gets its own
    plan seeded from ``(seed, rates, trace index)``, so cells are
    independent draws but the whole sweep replays identically.
    """
    scale = scale or HarnessScale(n_traces=3, n_requests=60, master_seed=0)
    platform = standard_platform()
    traces = standard_traces(group, scale)
    result = FaultSweepResult(
        scale=scale,
        group=group,
        strategy=strategy,
        predictor=predictor,
        seed=seed,
    )
    for outages in outage_grid:
        for predictor_faults in predictor_fault_grid:
            if progress is not None:
                progress(
                    f"outages={outages:g} predictor_faults="
                    f"{predictor_faults:g}"
                )
            rejections: list[float] = []
            energies: list[float] = []
            evictions: list[float] = []
            degradations: list[float] = []
            for index, trace in enumerate(traces):
                horizon = (trace.stats().span or 100.0) + 1.0
                duration = horizon / 6.0
                # generate() takes coverage *fractions* (expected window
                # count = rate * horizon / duration); convert the grid's
                # expected-windows-per-trace into those fractions.
                faultable = max(1, platform.size - 1)
                plan = FaultPlan.generate(
                    derive_seed(
                        seed,
                        f"fault-sweep:{outages:g}:{predictor_faults:g}:"
                        f"{index}",
                    ),
                    horizon=horizon,
                    n_resources=platform.size,
                    outage_rate=min(
                        1.0, outages * duration / (horizon * faultable)
                    ),
                    outage_duration=duration,
                    predictor_fault_rate=min(
                        1.0, predictor_faults * duration / horizon
                    ),
                    predictor_fault_duration=duration,
                    spare_resource=platform.size - 1,
                )
                simulator = Simulator(
                    platform,
                    resolve_strategy(strategy),
                    resolve_predictor(predictor)
                    if predictor is not None
                    else None,
                    SimulationConfig(fault_plan=plan),
                )
                run = simulator.run(trace)
                rejections.append(run.rejection_percentage)
                energies.append(run.normalized_energy)
                evictions.append(float(len(run.evicted)))
                degradations.append(float(len(run.degradations)))
            result.cells.append(
                FaultSweepCell(
                    outages_per_trace=outages,
                    predictor_faults_per_trace=predictor_faults,
                    mean_rejection=fmean(rejections),
                    mean_energy=fmean(energies),
                    mean_evictions=fmean(evictions),
                    mean_degradations=fmean(degradations),
                )
            )
    return result


def render_fault_sweep(sweep: FaultSweepResult) -> str:
    """ASCII table of the sweep grid."""
    rows = [
        [
            cell.outages_per_trace,
            cell.predictor_faults_per_trace,
            cell.mean_rejection,
            cell.mean_energy,
            cell.mean_evictions,
            cell.mean_degradations,
        ]
        for cell in sweep.cells
    ]
    title = (
        f"fault sensitivity ({sweep.strategy}"
        f"-{sweep.predictor or 'off'}, {sweep.group.value}, "
        f"{sweep.scale.n_traces} traces x {sweep.scale.n_requests} "
        f"requests, seed {sweep.seed})"
    )
    return ascii_table(
        [
            "outages/trace",
            "pred-faults/trace",
            "rejection %",
            "norm. energy",
            "evictions",
            "degradations",
        ],
        rows,
        title=title,
        float_digits=3,
    )
