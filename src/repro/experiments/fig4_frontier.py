"""E8 — the accuracy-vs-energy frontier under workload drift.

The paper's Fig. 4 sweeps *emulated* predictor accuracy against the
rejection rate.  With the online-learning suite (DESIGN.md §16) the
sweep becomes a genuine frontier: every real predictor earns its own
accuracy on the stream, and a drift scenario — a seeded
``"regime-shift"`` :class:`~repro.faults.plan.TraceFault` that remaps
the type mix and rescales the cadence mid-trace — moves each predictor
along the accuracy axis by exactly as much as it fails to adapt.  The
experiment reports, per ``scenario x predictor``:

* measured prediction quality (type accuracy, arrival NRMSE) from
  :func:`repro.predict.metrics.evaluate_predictor` on the *perturbed*
  traces, and
* management outcomes (mean normalised energy, mean rejection) from the
  simulation matrix under the same fault plan,

which together trace how prediction accuracy buys energy — and how
drift erodes the purchase.  Everything is deterministic: the scenarios
derive their seeds from the harness master seed, and the CSV emitted by
:func:`frontier_csv` is digest-pinned by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.common import standard_platform, standard_traces
from repro.experiments.config import HarnessScale
from repro.experiments.executor import ParallelConfig
from repro.experiments.runner import Aggregate, RunSpec, run_matrix
from repro.faults.plan import FaultPlan, TraceFault
from repro.predict.metrics import evaluate_predictor
from repro.registry import resolve_predictor
from repro.util.atomicio import atomic_write_text
from repro.util.rng import derive_seed
from repro.util.tables import ascii_table
from repro.workload.trace import Trace
from repro.workload.tracegen import DeadlineGroup

__all__ = [
    "DEFAULT_FRONTIER_PREDICTORS",
    "DRIFT_SCENARIOS",
    "FrontierCell",
    "FrontierResult",
    "drift_plan",
    "frontier_csv",
    "render_fig4_frontier",
    "run_frontier",
    "write_frontier_csv",
]

DEFAULT_FRONTIER_PREDICTORS: tuple[str, ...] = (
    "learned",
    "ar",
    "seasonal",
    "drift",
)
"""The online predictors on the frontier (plus the implicit "off" row)."""

DRIFT_SCENARIOS: tuple[str, ...] = ("stable", "mid-shift", "double-shift")
"""The drift scenarios swept by default.

``"stable"`` injects nothing (the no-drift reference), ``"mid-shift"``
flips the regime once at 45% of the horizon, ``"double-shift"`` piles a
second, harsher flip on at 70%.
"""


def drift_plan(
    scenario: str, horizon: float, *, master_seed: int = 0
) -> FaultPlan | None:
    """The :class:`~repro.faults.plan.FaultPlan` of one named scenario.

    ``horizon`` is the arrival span of the traces the plan will perturb;
    shift boundaries are placed at fixed fractions of it.  Returns
    ``None`` for the ``"stable"`` scenario so the zero-fault path stays
    ``is``-identical to a plain run.  Plans derive their seed from
    ``(master_seed, scenario)``, never from the caller's RNG state.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    seed = derive_seed(master_seed, f"frontier:{scenario}")
    span = horizon * 1.25  # cover stragglers past the nominal horizon
    if scenario == "stable":
        return None
    if scenario == "mid-shift":
        return FaultPlan(
            seed=seed,
            trace_faults=(
                TraceFault("regime-shift", 0.45 * horizon, span, factor=1.5),
            ),
        )
    if scenario == "double-shift":
        return FaultPlan(
            seed=seed,
            trace_faults=(
                TraceFault(
                    "regime-shift", 0.45 * horizon, 0.7 * horizon, factor=1.5
                ),
                TraceFault("regime-shift", 0.7 * horizon, span, factor=0.5),
            ),
        )
    raise ValueError(
        f"unknown drift scenario {scenario!r}; choose from {DRIFT_SCENARIOS}"
    )


@dataclass(frozen=True)
class FrontierCell:
    """One ``scenario x predictor`` point of the frontier."""

    scenario: str
    predictor: str
    type_accuracy: float
    arrival_nrmse: float
    coverage: float
    mean_energy: float
    mean_rejection: float


@dataclass
class FrontierResult:
    """The full frontier: cells plus the raw aggregates."""

    scale: HarnessScale
    strategy: str
    scenarios: tuple[str, ...]
    predictors: tuple[str, ...]
    cells: list[FrontierCell] = field(default_factory=list)
    aggregates: dict[str, Aggregate] = field(default_factory=dict)

    def cell(self, scenario: str, predictor: str) -> FrontierCell:
        for candidate in self.cells:
            if (
                candidate.scenario == scenario
                and candidate.predictor == predictor
            ):
                return candidate
        raise KeyError(f"no frontier cell for {predictor}@{scenario}")


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else math.inf


def _score_predictor(
    name: str, traces: list[Trace]
) -> tuple[float, float, float]:
    """Mean (type accuracy, arrival NRMSE, coverage) over the traces."""
    accuracies: list[float] = []
    errors: list[float] = []
    coverages: list[float] = []
    for trace in traces:
        report = evaluate_predictor(resolve_predictor(name), trace)
        accuracies.append(report.type_accuracy)
        errors.append(report.arrival_nrmse)
        coverages.append(report.coverage)
    return _mean(accuracies), _mean(errors), _mean(coverages)


def run_frontier(
    scale: HarnessScale | None = None,
    *,
    strategy: str = "heuristic",
    predictors: tuple[str, ...] = DEFAULT_FRONTIER_PREDICTORS,
    scenarios: tuple[str, ...] = DRIFT_SCENARIOS,
    group: DeadlineGroup = DeadlineGroup.VT,
    parallel: ParallelConfig | int | None = None,
) -> FrontierResult:
    """Sweep ``scenarios x (predictors + off)`` into a frontier.

    One :func:`~repro.experiments.runner.run_matrix` call per scenario —
    the scenario's fault plan perturbs every trace of the matrix
    identically — plus a prediction-quality pass over the perturbed
    traces.  Labels are ``f"{predictor}@{scenario}"``.
    """
    scale = scale or HarnessScale.from_env(
        default_traces=4, default_requests=100
    )
    platform = standard_platform()
    traces = standard_traces(group, scale)
    horizon = max(trace.requests[-1].arrival for trace in traces)
    result = FrontierResult(
        scale=scale,
        strategy=strategy,
        scenarios=tuple(scenarios),
        predictors=tuple(predictors),
    )
    for scenario in scenarios:
        plan = drift_plan(
            scenario, horizon, master_seed=scale.master_seed
        )
        specs = [
            RunSpec.from_names(
                f"{name}@{scenario}", strategy=strategy, predictor=name
            )
            for name in predictors
        ]
        specs.append(
            RunSpec.from_names(f"off@{scenario}", strategy=strategy)
        )
        aggregates = run_matrix(
            traces, platform, specs, parallel=parallel, fault_plan=plan
        )
        result.aggregates.update(aggregates)
        perturbed = (
            traces
            if plan is None
            else [plan.perturb_trace(trace) for trace in traces]
        )
        for name in (*predictors, "off"):
            accuracy, nrmse, coverage = _score_predictor(name, perturbed)
            aggregate = aggregates[f"{name}@{scenario}"]
            result.cells.append(
                FrontierCell(
                    scenario=scenario,
                    predictor=name,
                    type_accuracy=accuracy,
                    arrival_nrmse=nrmse,
                    coverage=coverage,
                    mean_energy=aggregate.mean_energy,
                    mean_rejection=aggregate.mean_rejection,
                )
            )
    return result


def frontier_csv(result: FrontierResult) -> str:
    """The frontier as deterministic CSV text.

    Floats are rendered with ``repr`` (shortest round-trip), so the text
    — and therefore its digest — is bit-stable for bit-identical runs.
    """
    lines = [
        "scenario,predictor,type_accuracy,arrival_nrmse,coverage,"
        "mean_energy,mean_rejection"
    ]
    for cell in result.cells:
        lines.append(
            ",".join(
                (
                    cell.scenario,
                    cell.predictor,
                    repr(cell.type_accuracy),
                    repr(cell.arrival_nrmse),
                    repr(cell.coverage),
                    repr(cell.mean_energy),
                    repr(cell.mean_rejection),
                )
            )
        )
    return "\n".join(lines) + "\n"


def write_frontier_csv(result: FrontierResult, path: str | Path) -> Path:
    """Write :func:`frontier_csv` atomically; returns the path."""
    target = Path(path)
    atomic_write_text(target, frontier_csv(result))
    return target


def render_fig4_frontier(result: FrontierResult) -> str:
    """ASCII rendering: one table per scenario, accuracy beside energy."""
    parts = [
        f"Fig. 4 frontier: accuracy vs energy under drift "
        f"(strategy {result.strategy}, {result.scale.n_traces} traces x "
        f"{result.scale.n_requests} requests)"
    ]
    headers = [
        "predictor",
        "type acc",
        "nrmse",
        "coverage",
        "energy",
        "rejection %",
    ]
    for scenario in result.scenarios:
        rows = []
        for name in (*result.predictors, "off"):
            cell = result.cell(scenario, name)
            rows.append(
                [
                    name,
                    round(cell.type_accuracy, 4),
                    (
                        round(cell.arrival_nrmse, 4)
                        if math.isfinite(cell.arrival_nrmse)
                        else "inf"
                    ),
                    round(cell.coverage, 4),
                    round(cell.mean_energy, 4),
                    round(cell.mean_rejection, 4),
                ]
            )
        parts.append(f"scenario: {scenario}")
        parts.append(ascii_table(headers, rows))
    return "\n\n".join(parts)
