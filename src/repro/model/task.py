"""Task types: per-resource WCET, energy and migration overheads.

Sec. 2 of the paper characterises each task ``tau_j`` by

* worst-case execution time ``c[j,i]`` on each resource ``r_i``;
* average energy consumption ``e[j,i]`` on each resource;
* migration overheads ``cm[j,k,i]`` (time) and ``em[j,k,i]`` (energy) paid
  when the task moves from resource ``r_k`` to ``r_i``.

A task need not be executable on every resource; the paper marks such
pairs with "specific dummy values" — here the sentinel
:data:`NOT_EXECUTABLE` (``math.inf``), which naturally dominates every
deadline comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

__all__ = ["NOT_EXECUTABLE", "TaskType"]

NOT_EXECUTABLE: float = math.inf
"""Sentinel WCET/energy for (task, resource) pairs where the task cannot run."""


def _as_matrix(
    values: object, n: int, name: str
) -> tuple[tuple[float, ...], ...]:
    """Normalise a scalar / vector / matrix into an ``n x n`` float matrix.

    * a scalar broadcasts to every off-diagonal entry (diagonal is 0);
    * an ``n x n`` nested sequence is taken as-is (diagonal forced to 0).
    """
    if isinstance(values, (int, float)):
        scalar = float(values)
        if scalar < 0:
            raise ValueError(f"{name} must be >= 0, got {scalar}")
        return tuple(
            tuple(0.0 if k == i else scalar for i in range(n)) for k in range(n)
        )
    rows = [tuple(float(v) for v in row) for row in values]  # type: ignore[union-attr]
    if len(rows) != n or any(len(row) != n for row in rows):
        raise ValueError(f"{name} must be an {n}x{n} matrix")
    for k, row in enumerate(rows):
        for i, v in enumerate(row):
            if v < 0:
                raise ValueError(f"{name}[{k}][{i}] must be >= 0, got {v}")
    return tuple(
        tuple(0.0 if k == i else rows[k][i] for i in range(n)) for k in range(n)
    )


@lru_cache(maxsize=8192)
def _finite_mean(values: tuple[float, ...]) -> float:
    """Mean of the finite entries (cached: WCET/energy vectors repeat
    across the requests of a trace, and these aggregates sit on the
    normalisation path of every simulation)."""
    finite = [v for v in values if math.isfinite(v)]
    return sum(finite) / len(finite)


@lru_cache(maxsize=8192)
def _finite_min(values: tuple[float, ...]) -> float:
    """Minimum of the finite entries (cached, see :func:`_finite_mean`)."""
    return min(v for v in values if math.isfinite(v))


@dataclass(frozen=True)
class TaskType:
    """A reusable task definition (one of the paper's ``L`` task types).

    Attributes
    ----------
    type_id:
        Identifier of the type within its task set.
    wcet:
        ``wcet[i]`` is the worst-case execution time on resource ``i``;
        :data:`NOT_EXECUTABLE` where the task cannot run.
    energy:
        ``energy[i]`` is the average energy consumed by a full execution on
        resource ``i``; :data:`NOT_EXECUTABLE` where the task cannot run.
    migration_time:
        ``migration_time[k][i]`` = time overhead ``cm[j,k,i]`` for moving
        from resource ``k`` to ``i``.  Constructors also accept a scalar,
        broadcast to all off-diagonal pairs.
    migration_energy:
        ``migration_energy[k][i]`` = energy overhead ``em[j,k,i]``;
        same conventions.
    name:
        Optional label for reporting.
    """

    type_id: int
    wcet: tuple[float, ...]
    energy: tuple[float, ...]
    migration_time: tuple[tuple[float, ...], ...] = field(default=())
    migration_energy: tuple[tuple[float, ...], ...] = field(default=())
    name: str = ""

    def __post_init__(self) -> None:
        wcet = tuple(float(v) for v in self.wcet)
        energy = tuple(float(v) for v in self.energy)
        if len(wcet) == 0:
            raise ValueError("wcet vector must be non-empty")
        if len(wcet) != len(energy):
            raise ValueError(
                f"wcet has {len(wcet)} entries but energy has {len(energy)}"
            )
        n = len(wcet)
        for i, (c, e) in enumerate(zip(wcet, energy, strict=True)):
            executable = math.isfinite(c)
            if executable != math.isfinite(e):
                raise ValueError(
                    f"resource {i}: wcet and energy must both be finite or "
                    f"both NOT_EXECUTABLE (got c={c}, e={e})"
                )
            if executable and (c <= 0 or e < 0):
                raise ValueError(
                    f"resource {i}: need wcet > 0 and energy >= 0, got ({c}, {e})"
                )
        if not any(math.isfinite(c) for c in wcet):
            raise ValueError("a task must be executable on at least one resource")
        object.__setattr__(self, "wcet", wcet)
        object.__setattr__(self, "energy", energy)
        mt = self.migration_time if self.migration_time != () else 0.0
        me = self.migration_energy if self.migration_energy != () else 0.0
        object.__setattr__(self, "migration_time", _as_matrix(mt, n, "migration_time"))
        object.__setattr__(
            self, "migration_energy", _as_matrix(me, n, "migration_energy")
        )

    @property
    def n_resources(self) -> int:
        return len(self.wcet)

    def executable_on(self, resource: int) -> bool:
        """Whether this task can run on ``resource`` at all."""
        return math.isfinite(self.wcet[resource])

    @property
    def executable_resources(self) -> tuple[int, ...]:
        """Indices of resources this task can run on."""
        return tuple(
            i for i, c in enumerate(self.wcet) if math.isfinite(c)
        )

    def mean_wcet(self) -> float:
        """Average WCET over the resources the task is executable on."""
        return _finite_mean(self.wcet)

    def mean_energy(self) -> float:
        """Average energy over the resources the task is executable on."""
        return _finite_mean(self.energy)

    def min_wcet(self) -> float:
        """Fastest possible execution time across resources."""
        return _finite_min(self.wcet)

    def min_energy(self) -> float:
        """Most efficient possible energy across resources."""
        return _finite_min(self.energy)

    def cm(self, src: int, dst: int) -> float:
        """Migration *time* overhead ``cm[j,src,dst]``."""
        return self.migration_time[src][dst]

    def em(self, src: int, dst: int) -> float:
        """Migration *energy* overhead ``em[j,src,dst]``."""
        return self.migration_energy[src][dst]

    def __repr__(self) -> str:
        label = self.name or f"type{self.type_id}"
        return f"TaskType({label}, wcet={self.wcet})"
