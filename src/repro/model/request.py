"""Requests: elements of the arriving workload stream.

Each request ``req_j`` carries an arrival time ``s_j``, the type of the
task it triggers, and a relative deadline ``d_j`` (Sec. 2).  Predictors
hand the resource manager a :class:`PredictedRequest` describing the
*next* expected request; the RM uses it purely as a planning constraint
(Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Request", "PredictedRequest"]


@dataclass(frozen=True)
class Request:
    """One arriving request of a trace.

    Attributes
    ----------
    index:
        Position of the request in its trace (0-based); doubles as the job
        identifier once admitted.
    arrival:
        Absolute arrival time ``s_j``.
    type_id:
        Index of the triggered :class:`~repro.model.task.TaskType` within
        the trace's task set.
    deadline:
        Relative deadline ``d_j``; the absolute deadline is
        ``arrival + deadline``.
    """

    index: int
    arrival: float
    type_id: int
    deadline: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"request index must be >= 0, got {self.index}")
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline <= 0:
            raise ValueError(f"relative deadline must be > 0, got {self.deadline}")
        if self.type_id < 0:
            raise ValueError(f"type_id must be >= 0, got {self.type_id}")

    @property
    def absolute_deadline(self) -> float:
        """``s_j + d_j``."""
        return self.arrival + self.deadline


@dataclass(frozen=True)
class PredictedRequest:
    """A predictor's view of the next request.

    The fields mirror :class:`Request` but carry *predicted* values, which
    may be wrong in the type, the arrival time, or both.  ``deadline`` is
    the relative deadline the RM plans with for the predicted task.
    """

    arrival: float
    type_id: int
    deadline: float

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"relative deadline must be > 0, got {self.deadline}")
        if self.type_id < 0:
            raise ValueError(f"type_id must be >= 0, got {self.type_id}")

    @property
    def absolute_deadline(self) -> float:
        return self.arrival + self.deadline
