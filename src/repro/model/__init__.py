"""System model: heterogeneous platform, task types, requests.

This package implements the system model of Sec. 2 of the paper:

* :class:`~repro.model.platform.Resource` / :class:`~repro.model.platform.Platform`
  — ``N`` heterogeneous computation resources, each either preemptable
  (CPU-like) or non-preemptable (GPU-like);
* :class:`~repro.model.task.TaskType` — a task characterised by per-resource
  WCET ``c[j,i]``, per-resource average energy ``e[j,i]`` and migration
  overhead matrices ``cm[j,k,i]`` / ``em[j,k,i]``;
* :class:`~repro.model.request.Request` — one element of the arriving
  request stream (arrival time, task type, relative deadline), plus the
  :class:`~repro.model.request.PredictedRequest` a predictor hands to the
  resource manager.
"""

from repro.model.platform import Platform, Resource
from repro.model.request import PredictedRequest, Request
from repro.model.task import NOT_EXECUTABLE, TaskType

__all__ = [
    "Resource",
    "Platform",
    "TaskType",
    "NOT_EXECUTABLE",
    "Request",
    "PredictedRequest",
]
