"""Heterogeneous platform description.

The paper considers a platform of ``N`` computation resources
``r_1 .. r_N``.  Resources differ in speed and energy (captured per task in
:class:`~repro.model.task.TaskType`) and in *preemptability*: tasks running
on particular resources (e.g. GPUs) cannot be preempted — they must run to
completion or be aborted and restarted from scratch (Sec. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Resource", "Platform"]


@dataclass(frozen=True)
class Resource:
    """One computation resource.

    Attributes
    ----------
    index:
        Position of the resource in the platform (0-based).  Task WCET and
        energy vectors are indexed by this.
    name:
        Human-readable name, e.g. ``"cpu0"`` or ``"gpu0"``.
    kind:
        Free-form class label (``"cpu"``, ``"gpu"``, ``"dsp"`` ...); only
        used for reporting.
    preemptable:
        Whether a task running here may be preempted and later resumed.
        Non-preemptable resources follow the paper's GPU rules: running
        tasks either finish or are aborted and restarted from the
        beginning, and the predicted task never preempts here.
    """

    index: int
    name: str
    kind: str = "cpu"
    preemptable: bool = True

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"resource index must be >= 0, got {self.index}")
        if not self.name:
            raise ValueError("resource name must be non-empty")


class Platform:
    """An ordered collection of :class:`Resource` objects.

    The order defines the resource indices used by every
    :class:`~repro.model.task.TaskType` vector, so a platform and its task
    set must be built together (see :mod:`repro.workload.taskgen`).

    Examples
    --------
    >>> platform = Platform.cpu_gpu(n_cpus=2, n_gpus=1)
    >>> platform.size
    3
    >>> [r.preemptable for r in platform]
    [True, True, False]
    """

    def __init__(self, resources: list[Resource] | tuple[Resource, ...]) -> None:
        if not resources:
            raise ValueError("a platform needs at least one resource")
        for position, resource in enumerate(resources):
            if resource.index != position:
                raise ValueError(
                    f"resource {resource.name!r} has index {resource.index} "
                    f"but sits at position {position}"
                )
        names = [r.name for r in resources]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate resource names: {names}")
        self._resources: tuple[Resource, ...] = tuple(resources)

    @classmethod
    def cpu_gpu(cls, n_cpus: int, n_gpus: int = 1) -> "Platform":
        """The paper's architecture: ``n_cpus`` CPUs followed by GPUs.

        The experimental sections use five CPUs and one GPU
        (``Platform.cpu_gpu(5, 1)``); the motivational example uses two
        CPUs and one GPU.
        """
        if n_cpus < 0 or n_gpus < 0 or n_cpus + n_gpus == 0:
            raise ValueError(
                f"need a non-empty platform, got {n_cpus} CPUs / {n_gpus} GPUs"
            )
        resources = [
            Resource(index=i, name=f"cpu{i}", kind="cpu", preemptable=True)
            for i in range(n_cpus)
        ]
        resources += [
            Resource(
                index=n_cpus + g, name=f"gpu{g}", kind="gpu", preemptable=False
            )
            for g in range(n_gpus)
        ]
        return cls(resources)

    @property
    def size(self) -> int:
        """Number of resources ``N``."""
        return len(self._resources)

    @property
    def resources(self) -> tuple[Resource, ...]:
        return self._resources

    @property
    def preemptable_indices(self) -> tuple[int, ...]:
        return tuple(r.index for r in self._resources if r.preemptable)

    @property
    def non_preemptable_indices(self) -> tuple[int, ...]:
        return tuple(r.index for r in self._resources if not r.preemptable)

    def is_preemptable(self, index: int) -> bool:
        """Whether resource ``index`` allows preemption."""
        return self._resources[index].preemptable

    def by_name(self, name: str) -> Resource:
        """Look a resource up by its name."""
        for resource in self._resources:
            if resource.name == name:
                return resource
        raise KeyError(f"no resource named {name!r}")

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._resources)

    def __len__(self) -> int:
        return len(self._resources)

    def __getitem__(self, index: int) -> Resource:
        return self._resources[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        return self._resources == other._resources

    def __hash__(self) -> int:
        return hash(self._resources)

    def __repr__(self) -> str:
        kinds = ", ".join(f"{r.name}{'' if r.preemptable else '!'}" for r in self)
        return f"Platform({kinds})"
