"""Reproduction of *Runtime Resource Management with Workload Prediction*
(Niknafs, Ukhov, Eles, Peng — DAC 2019).

A prediction-aware, energy-minimising resource manager for heterogeneous
embedded platforms, together with every substrate the paper's evaluation
needs: workload generation, EDF scheduling, a MILP layer, predictors, a
discrete-event simulator and the full experiment harness.

Quick start::

    from repro import (
        Platform, TraceConfig, DeadlineGroup,
        generate_task_set, generate_trace, simulate,
    )

    platform = Platform.cpu_gpu(n_cpus=5, n_gpus=1)
    tasks = generate_task_set(platform)
    trace = generate_trace(tasks, TraceConfig(group=DeadlineGroup.VT))
    result = simulate(trace, platform, "heuristic", "oracle")
    print(result.rejection_percentage, result.normalized_energy)

Strategies and predictors are resolvable by registry name
(:mod:`repro.registry`), and experiment sweeps run in parallel with
``run_matrix(..., parallel=ParallelConfig(jobs=N))``.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    PREDICTED_JOB_ID,
    AdmissionController,
    AdmissionOutcome,
    ExactResourceManager,
    HeuristicResourceManager,
    MappingDecision,
    MappingStrategy,
    MilpResourceManager,
    MilpValidationError,
    PlannedTask,
    RMContext,
    mapping_energy,
    mapping_feasible,
)
from repro.model import (
    NOT_EXECUTABLE,
    Platform,
    PredictedRequest,
    Request,
    Resource,
    TaskType,
)
from repro.analysis.invariants import (
    VerificationError,
    VerificationReport,
    Violation,
    verify_result,
)
from repro.experiments.executor import ParallelConfig
from repro.experiments.runner import Aggregate, RunSpec, run_matrix
from repro.faults import (
    DegradationEvent,
    FaultPlan,
    PredictorFault,
    ResourceOutage,
    SolverFault,
    SolverWatchdog,
    TraceFault,
)
from repro.obs import (
    CollectingTracer,
    MetricsRegistry,
    MetricsSnapshot,
    NullTracer,
    SimEvent,
    TraceOptions,
    Tracer,
    chrome_trace,
    event_stream_digest,
    events_to_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.predict import (
    ArrivalNoisePredictor,
    ComposedPredictor,
    NullPredictor,
    OraclePredictor,
    Predictor,
    TypeNoisePredictor,
    evaluate_predictor,
)
from repro.registry import (
    register_clock,
    register_predictor,
    register_strategy,
    resolve_clock,
    resolve_predictor,
    resolve_strategy,
)
from repro.serve import Clock, VirtualClock, WallClock

if False:  # pragma: no cover - typing-time only, see __getattr__ below
    from repro.serve import AdmissionServer, ServeClient, ServeConfig
from repro.sim import (
    SimulationConfig,
    SimulationResult,
    Simulator,
    simulate,
)
from repro.workload import (
    DeadlineGroup,
    TaskSetConfig,
    Trace,
    TraceConfig,
    generate_pattern_trace,
    generate_task_set,
    generate_trace,
    generate_trace_group,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Platform",
    "Resource",
    "TaskType",
    "NOT_EXECUTABLE",
    "Request",
    "PredictedRequest",
    # workload
    "TaskSetConfig",
    "TraceConfig",
    "DeadlineGroup",
    "Trace",
    "generate_task_set",
    "generate_trace",
    "generate_trace_group",
    "generate_pattern_trace",
    # core
    "PlannedTask",
    "RMContext",
    "PREDICTED_JOB_ID",
    "MappingStrategy",
    "MappingDecision",
    "mapping_feasible",
    "mapping_energy",
    "HeuristicResourceManager",
    "MilpResourceManager",
    "MilpValidationError",
    "ExactResourceManager",
    "AdmissionController",
    "AdmissionOutcome",
    # predict
    "Predictor",
    "NullPredictor",
    "OraclePredictor",
    "TypeNoisePredictor",
    "ArrivalNoisePredictor",
    "ComposedPredictor",
    "evaluate_predictor",
    # sim
    "Simulator",
    "simulate",
    "SimulationConfig",
    "SimulationResult",
    # registry
    "resolve_strategy",
    "resolve_predictor",
    "resolve_clock",
    "register_strategy",
    "register_predictor",
    "register_clock",
    # serve
    "Clock",
    "VirtualClock",
    "WallClock",
    "AdmissionServer",
    "ServeClient",
    "ServeConfig",
    # experiments
    "RunSpec",
    "Aggregate",
    "run_matrix",
    "ParallelConfig",
    # faults
    "FaultPlan",
    "ResourceOutage",
    "PredictorFault",
    "SolverFault",
    "TraceFault",
    "DegradationEvent",
    "SolverWatchdog",
    # analysis
    "verify_result",
    "VerificationReport",
    "VerificationError",
    "Violation",
    # obs
    "SimEvent",
    "Tracer",
    "NullTracer",
    "CollectingTracer",
    "TraceOptions",
    "MetricsRegistry",
    "MetricsSnapshot",
    "events_to_jsonl",
    "event_stream_digest",
    "write_events_jsonl",
    "chrome_trace",
    "write_chrome_trace",
]

#: Server-stack names resolved lazily (PEP 562) so ``import repro``
#: stays free of asyncio and the daemon; the clock family above is
#: stdlib-only and imported eagerly.
_LAZY_SERVE = ("AdmissionServer", "ServeClient", "ServeConfig")


def __getattr__(name: str) -> object:
    if name in _LAZY_SERVE:
        import repro.serve

        return getattr(repro.serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
