"""Deterministic micro/macro benchmark harness (the `repro bench` CLI).

The harness times the four hot paths of the simulation core on
fixed-seed workloads and emits a machine-readable ``BENCH_*.json`` so the
perf trajectory is tracked PR-over-PR:

* ``timeline_build``   — :func:`repro.sched.timeline.build_timeline`
  replays (the per-probe cost of the naive ``IsSchedulable``);
* ``timeline_probe``   — the incremental
  :class:`repro.sched.timeline.Timeline` under mixed
  insert/remove/probe sequences;
* ``heuristic_admission`` — Algorithm 1 on real captured activation
  contexts (the dominant per-event cost);
* ``predictor_oracle`` / ``predictor_learned`` — predictor updates over
  a full trace;
* ``sim_loop``         — one end-to-end :func:`repro.sim.simulator.simulate`
  cell (event loop + platform state advance);
* ``smoke_grid``       — the fig2-scale macro grid via
  :func:`repro.experiments.runner.run_matrix` (the acceptance target).

Every benchmark is fully determined by :class:`BenchConfig` (seed,
traces, requests, repeats): two back-to-back runs process identical
event streams, so the ``events`` counts and behavioural fingerprints are
comparable bit-for-bit while only the wall times vary.  Timing uses
``time.perf_counter`` (exempted from lint rule RPR002 via
``monotonic_allowed_prefixes`` — this *is* an observability layer);
allocation peaks come from a separate untimed ``tracemalloc`` pass so
instrumentation never pollutes the timed repeats.
"""

from __future__ import annotations

import json
import math
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.util.atomicio import atomic_write_text

__all__ = [
    "SCHEMA_VERSION",
    "BenchConfig",
    "BenchResult",
    "benchmark_names",
    "run_bench",
    "run_suite",
    "compare_to_baseline",
    "attach_baseline",
    "write_payload",
    "load_payload",
]

SCHEMA_VERSION = 1
"""Version of the ``BENCH_*.json`` schema (bump on breaking change)."""


@dataclass(frozen=True)
class BenchConfig:
    """Workload scale and measurement knobs (fully determine a run).

    Attributes
    ----------
    n_traces / n_requests / seed / group:
        The fig2-style workload scale; all benchmark inputs derive from
        these through the library's seeded generators.
    repeats:
        Timed repetitions per benchmark (p50/p95 come from these).
    alloc:
        Run the separate ``tracemalloc`` pass (skippable: it is the
        slowest part of the suite).
    scenario:
        ``"default"`` is the fig2-scale micro/macro suite.  ``"huge"``
        is the scaling scenario: ``sim_loop`` becomes a
        ``scenario_events``-request idle-point trace driven through the
        vectorised struct-of-arrays kernel sharded across the machine's
        cores (:mod:`repro.sim.kernels`), and only the scaling-relevant
        benchmarks run.
    scenario_events:
        Requests in the huge-scenario trace (default 10^7).
    """

    n_traces: int = 2
    n_requests: int = 120
    seed: int = 0
    group: str = "VT"
    repeats: int = 5
    alloc: bool = True
    scenario: str = "default"
    scenario_events: int = 10_000_000

    def __post_init__(self) -> None:
        if self.n_traces < 1 or self.n_requests < 1 or self.repeats < 1:
            raise ValueError(
                "n_traces, n_requests and repeats must all be >= 1"
            )
        if self.group not in ("VT", "LT"):
            raise ValueError(f"group must be VT or LT, got {self.group!r}")
        if self.scenario not in ("default", "huge"):
            raise ValueError(
                f"scenario must be default or huge, got {self.scenario!r}"
            )
        if self.scenario_events < 1:
            raise ValueError(
                f"scenario_events must be >= 1, got {self.scenario_events}"
            )


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's measurement."""

    name: str
    events: int
    repeats: int
    wall_times: tuple[float, ...]
    p50: float
    p95: float
    events_per_sec: float
    alloc_peak_bytes: int | None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "repeats": self.repeats,
            "wall_times": list(self.wall_times),
            "p50": self.p50,
            "p95": self.p95,
            "events_per_sec": self.events_per_sec,
            "alloc_peak_bytes": self.alloc_peak_bytes,
            "extra": dict(self.extra),
        }


@dataclass(frozen=True)
class _Prepared:
    """A benchmark after setup: a timeable closure plus its metadata."""

    run: Callable[[], None]
    events: int
    extra: dict[str, Any] = field(default_factory=dict)


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def _single_trace(config: BenchConfig):
    """One deterministic trace at the configured scale."""
    from repro.experiments.common import standard_traces
    from repro.experiments.config import HarnessScale
    from repro.workload.tracegen import DeadlineGroup

    scale = HarnessScale(
        n_traces=1,
        n_requests=config.n_requests,
        master_seed=config.seed,
    )
    return standard_traces(DeadlineGroup(config.group), scale)[0]


# ----------------------------------------------------------------------
# Benchmark definitions
# ----------------------------------------------------------------------


def _bench_timeline_build(config: BenchConfig) -> _Prepared:
    import random

    from repro.sched.timeline import FutureJob, ReadyJob, build_timeline

    rng = random.Random(config.seed * 1_000_003 + 1)
    cases = []
    n_cases = 50 * max(1, config.n_requests // 30)
    for _ in range(n_cases):
        n_jobs = rng.randint(4, 16)
        ready = [
            ReadyJob(j, rng.uniform(0.2, 3.0), rng.uniform(2.0, 40.0))
            for j in range(n_jobs)
        ]
        future = (
            [FutureJob(10**9, rng.uniform(0.5, 5.0), 1.0, 30.0)]
            if rng.random() < 0.5
            else []
        )
        cases.append((ready, future, rng.random() < 0.3))

    def run() -> None:
        for ready, future, non_preempt in cases:
            build_timeline(ready, future, preemptable=not non_preempt)

    return _Prepared(run, events=n_cases, extra={"events_unit": "replays"})


def _bench_timeline_probe(config: BenchConfig) -> _Prepared:
    import random

    from repro.sched.timeline import Timeline

    rng = random.Random(config.seed * 1_000_003 + 2)
    n_ops = 200 * max(1, config.n_requests // 12)
    script = []  # pre-draw the op sequence so each repeat is identical
    live: list[int] = []
    next_id = 0
    for _ in range(n_ops):
        op = rng.random()
        if op < 0.45 or not live:
            script.append(
                ("insert", next_id, rng.uniform(0.2, 2.0), rng.uniform(5, 60))
            )
            live.append(next_id)
            next_id += 1
        elif op < 0.6:
            victim = live.pop(rng.randrange(len(live)))
            script.append(("remove", victim, 0.0, 0.0))
        else:
            script.append(
                (
                    "probe",
                    next_id,
                    rng.uniform(0.2, 2.0),
                    rng.uniform(5, 60),
                )
            )
            next_id += 1

    def run() -> None:
        timeline = Timeline(start_time=0.0, preemptable=True)
        for op, job_id, exec_time, deadline in script:
            if op == "insert":
                timeline.insert(job_id, exec_time, deadline)
            elif op == "remove":
                timeline.remove(job_id)
            else:
                timeline.probe(job_id, exec_time, deadline)
                timeline.feasible()

    return _Prepared(run, events=n_ops, extra={"events_unit": "operations"})


def _captured_contexts(config: BenchConfig):
    """Replay one trace once and capture every RM activation context."""
    from repro.core.heuristic import HeuristicResourceManager
    from repro.experiments.common import standard_platform
    from repro.sim.simulator import SimulationConfig, Simulator

    contexts = []

    class _Capturing(HeuristicResourceManager):
        def solve(self, context):  # noqa: D102 - thin capture shim
            contexts.append(context)
            return super().solve(context)

    trace = _single_trace(config)
    platform = standard_platform()
    simulator = Simulator(
        platform, _Capturing(), "oracle", SimulationConfig()
    )
    simulator.run(trace)
    return contexts


def _bench_heuristic_admission(config: BenchConfig) -> _Prepared:
    from repro.registry import resolve_strategy

    contexts = _captured_contexts(config)
    strategy = resolve_strategy("heuristic")

    def run() -> None:
        for context in contexts:
            strategy.solve(context)

    return _Prepared(
        run, events=len(contexts), extra={"events_unit": "activations"}
    )


def _bench_predictor(config: BenchConfig, name: str) -> _Prepared:
    from repro.registry import resolve_predictor

    trace = _single_trace(config)
    predictor = resolve_predictor(name)

    def run() -> None:
        predictor.reset()
        for index in range(len(trace)):
            predictor.predict_horizon(trace, index, 1)

    return _Prepared(
        run, events=len(trace), extra={"events_unit": "predictions"}
    )


def _bench_predictor_oracle(config: BenchConfig) -> _Prepared:
    return _bench_predictor(config, "oracle")


def _bench_predictor_learned(config: BenchConfig) -> _Prepared:
    return _bench_predictor(config, "learned")


def _bench_sim_loop(config: BenchConfig) -> _Prepared:
    if config.scenario == "huge":
        return _bench_sim_loop_huge(config)
    from repro.experiments.common import standard_platform
    from repro.sim.simulator import simulate

    trace = _single_trace(config)
    platform = standard_platform()
    fingerprint: dict[str, Any] = {}

    def run() -> None:
        result = simulate(trace, platform, "heuristic", "oracle")
        fingerprint["rejected"] = len(result.rejected)
        fingerprint["energy"] = result.total_energy

    return _Prepared(
        run,
        events=len(trace),
        extra={"events_unit": "requests", "fingerprint": fingerprint},
    )


def _bench_sim_loop_huge(config: BenchConfig) -> _Prepared:
    """The scaling scenario: 10^7 idle-point requests, vector kernel.

    The trace is generated once as struct-of-arrays (never materialising
    Python request objects — 10^7 of them would dwarf the simulation
    itself) and admitted through :func:`repro.sim.kernels.run_vector_core`
    shard-by-shard: the array is split at idle-point boundaries into one
    contiguous shard per core (every boundary of an idle trace is a legal
    cut).  On a single-core machine that is one shard, executed inline —
    the shard count is recorded in ``extra`` either way.
    """
    import os

    from repro.experiments.common import standard_platform
    from repro.sim.kernels import run_vector_core
    from repro.workload.soa import SoATrace, generate_idle_soa

    platform = standard_platform()
    soa = generate_idle_soa(
        config.scenario_events,
        seed=config.seed,
        n_resources=platform.size,
    )
    shards = os.cpu_count() or 1
    bounds = [
        round(len(soa) * index / shards) for index in range(shards + 1)
    ]
    pieces = [
        SoATrace(
            arrival=soa.arrival[lo:hi],
            type_id=soa.type_id[lo:hi],
            deadline=soa.deadline[lo:hi],
            wcet=soa.wcet,
            energy=soa.energy,
        )
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    fingerprint: dict[str, Any] = {}

    def run() -> None:
        accepted = 0
        energy = 0.0
        for piece in pieces:
            outcome = run_vector_core(piece, platform)
            accepted += int(outcome["accepted"])
            energy += float(outcome["total_energy"])
        fingerprint["accepted"] = accepted
        fingerprint["energy"] = energy

    return _Prepared(
        run,
        events=len(soa),
        extra={
            "events_unit": "requests",
            "scenario": "huge",
            "kernel": "vector",
            "shards": len(pieces),
            "fingerprint": fingerprint,
        },
    )


def _bench_timeline_probe_vector(config: BenchConfig) -> _Prepared:
    """Batched feasibility probes through :class:`VectorTimeline`.

    New name (no PR6 baseline): establishes the trajectory for the
    vectorised probe kernel alongside the scalar ``timeline_probe``.
    """
    import random

    from repro.sched.vector_timeline import VectorTimeline

    rng = random.Random(config.seed * 1_000_003 + 7)
    n_chains = 20 * max(1, config.n_requests // 60)
    batch = 64
    cases = []
    for _ in range(n_chains):
        deadline = 0.0
        jobs = []
        for job_id in range(rng.randint(2, 12)):
            exec_time = rng.uniform(0.1, 2.0)
            deadline += rng.uniform(exec_time, exec_time * 3.0)
            jobs.append((job_id, exec_time, deadline))
        probes = (
            [100 + index for index in range(batch)],
            [rng.uniform(0.1, 2.5) for _ in range(batch)],
            [rng.uniform(0.5, deadline * 1.5) for _ in range(batch)],
        )
        cases.append((jobs, probes))

    def run() -> None:
        for jobs, (ids, execs, deadlines) in cases:
            VectorTimeline(jobs).probe_batch(ids, execs, deadlines)

    return _Prepared(
        run,
        events=n_chains * batch,
        extra={"events_unit": "probes"},
    )


def _bench_smoke_grid(config: BenchConfig) -> _Prepared:
    from repro.experiments.common import standard_platform, standard_traces
    from repro.experiments.config import HarnessScale
    from repro.experiments.runner import RunSpec, run_matrix
    from repro.workload.tracegen import DeadlineGroup

    scale = HarnessScale(
        n_traces=config.n_traces,
        n_requests=config.n_requests,
        master_seed=config.seed,
    )
    traces = standard_traces(DeadlineGroup(config.group), scale)
    platform = standard_platform()
    specs = [
        RunSpec.from_names("heuristic-off", "heuristic", None),
        RunSpec.from_names("heuristic-oracle", "heuristic", "oracle"),
    ]
    extra: dict[str, Any] = {"events_unit": "requests"}

    def run() -> None:
        aggregates = run_matrix(traces, platform, specs)
        extra["fingerprint"] = {
            label: {
                "mean_rejection": agg.mean_rejection,
                "mean_energy": agg.mean_energy,
                "solver_calls": agg.total_solver_calls,
            }
            for label, agg in aggregates.items()
        }
        extra["cell_wall_times"] = {
            label: [stats.wall_time for stats in agg.cell_stats]
            for label, agg in aggregates.items()
        }
        extra["cell_wall_p50"] = {
            label: agg.wall_time_p50 for label, agg in aggregates.items()
        }
        extra["cell_wall_p95"] = {
            label: agg.wall_time_p95 for label, agg in aggregates.items()
        }

    events = len(specs) * len(traces) * config.n_requests
    return _Prepared(run, events=events, extra=extra)


_BENCHMARKS: dict[str, Callable[[BenchConfig], _Prepared]] = {
    "timeline_build": _bench_timeline_build,
    "timeline_probe": _bench_timeline_probe,
    "heuristic_admission": _bench_heuristic_admission,
    "predictor_oracle": _bench_predictor_oracle,
    "predictor_learned": _bench_predictor_learned,
    "sim_loop": _bench_sim_loop,
    "smoke_grid": _bench_smoke_grid,
    "timeline_probe_vector": _bench_timeline_probe_vector,
}

#: The subset the huge scaling scenario runs (the rest measure
#: fig2-scale workloads that the scenario does not change).
_HUGE_SCENARIO_BENCHMARKS = ("sim_loop", "timeline_probe_vector")


def benchmark_names() -> tuple[str, ...]:
    """All registered benchmark names, in suite order."""
    return tuple(_BENCHMARKS)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def run_bench(name: str, config: BenchConfig) -> BenchResult:
    """Set up and measure one benchmark.

    The first pass is untimed and doubles as warmup; when
    ``config.alloc`` it runs under ``tracemalloc`` to record the peak
    allocation.  The subsequent ``config.repeats`` passes are timed with
    no instrumentation active.
    """
    if name not in _BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(_BENCHMARKS)}"
        )
    prepared = _BENCHMARKS[name](config)
    alloc_peak: int | None = None
    if config.alloc:
        tracemalloc.start()
        try:
            prepared.run()
            _, alloc_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    else:
        prepared.run()
    wall_times = []
    for _ in range(config.repeats):
        start = time.perf_counter()
        prepared.run()
        wall_times.append(time.perf_counter() - start)
    p50 = _percentile(wall_times, 0.50)
    p95 = _percentile(wall_times, 0.95)
    return BenchResult(
        name=name,
        events=prepared.events,
        repeats=config.repeats,
        wall_times=tuple(wall_times),
        p50=p50,
        p95=p95,
        events_per_sec=prepared.events / p50 if p50 > 0 else math.inf,
        alloc_peak_bytes=alloc_peak,
        extra=prepared.extra,
    )


def run_suite(
    config: BenchConfig,
    *,
    only: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the (selected) suite and return the ``BENCH_*.json`` payload."""
    if only:
        names = list(only)
    elif config.scenario == "huge":
        names = list(_HUGE_SCENARIO_BENCHMARKS)
    else:
        names = list(_BENCHMARKS)
    for name in names:
        if name not in _BENCHMARKS:
            raise KeyError(
                f"unknown benchmark {name!r}; known: "
                f"{', '.join(_BENCHMARKS)}"
            )
    results: dict[str, Any] = {}
    for name in names:
        if progress is not None:
            progress(name)
        results[name] = run_bench(name, config).to_json()
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "repro-bench",
        "config": {
            "n_traces": config.n_traces,
            "n_requests": config.n_requests,
            "seed": config.seed,
            "group": config.group,
            "repeats": config.repeats,
            "alloc": config.alloc,
            "scenario": config.scenario,
            "scenario_events": config.scenario_events,
        },
        "benchmarks": results,
    }


def compare_to_baseline(
    payload: Mapping[str, Any], baseline: Mapping[str, Any]
) -> dict[str, float]:
    """Per-benchmark throughput ratio ``current / baseline``.

    Only benchmarks present in both payloads are compared; a ratio above
    1.0 is a speedup.
    """
    ratios: dict[str, float] = {}
    base_benches = baseline.get("benchmarks", {})
    for name, result in payload.get("benchmarks", {}).items():
        base = base_benches.get(name)
        if base is None:
            continue
        base_eps = base.get("events_per_sec", 0.0)
        if base_eps and base_eps > 0:
            ratios[name] = result["events_per_sec"] / base_eps
    return ratios


def attach_baseline(
    payload: dict[str, Any],
    baseline: Mapping[str, Any],
    *,
    source: str,
) -> dict[str, float]:
    """Embed the baseline and the speedup ratios into ``payload``.

    The trajectory file then carries both measurements, so "≥N× over the
    recorded baseline" is checkable from the single artefact.
    """
    ratios = compare_to_baseline(payload, baseline)
    payload["baseline"] = {
        "source": source,
        "config": dict(baseline.get("config", {})),
        "benchmarks": {
            name: dict(result)
            for name, result in baseline.get("benchmarks", {}).items()
        },
    }
    payload["speedup"] = ratios
    return ratios


def write_payload(payload: Mapping[str, Any], path: Path | str) -> Path:
    """Write the payload as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_payload(path: Path | str) -> dict[str, Any]:
    """Load a ``BENCH_*.json`` payload, validating the envelope."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("kind") != "repro-bench":
        raise ValueError(f"{path}: not a repro-bench payload")
    return data
