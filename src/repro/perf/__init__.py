"""Performance harness: deterministic benchmarks of the simulation core.

``repro bench`` (see :mod:`repro.cli`) drives :func:`run_suite` and
writes ``BENCH_*.json`` trajectory files; :func:`compare_to_baseline`
turns two payloads into per-benchmark speedup ratios for regression
gating (``--fail-threshold``).  See DESIGN.md §8 for the methodology.
"""

from repro.perf.bench import (
    SCHEMA_VERSION,
    BenchConfig,
    BenchResult,
    attach_baseline,
    benchmark_names,
    compare_to_baseline,
    load_payload,
    run_bench,
    run_suite,
    write_payload,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchConfig",
    "BenchResult",
    "attach_baseline",
    "benchmark_names",
    "compare_to_baseline",
    "load_payload",
    "run_bench",
    "run_suite",
    "write_payload",
]
