"""Prediction-overhead sweep (the Fig. 5 experiment, reduced scale).

Predictions are perfectly accurate but each RM activation pays a
decision delay proportional to the mean inter-arrival time.  The output
includes the crossover coefficient at which prediction stops paying off
— the paper's headline design guidance (2-4% there).

Run:
    python examples/overhead_sweep.py [--fast]
"""

import sys

from repro.experiments.config import HarnessScale
from repro.experiments.fig5_overhead import render_fig5, run_overhead_sweep


def main() -> None:
    fast = "--fast" in sys.argv
    strategies = ("heuristic",) if fast else ("milp", "heuristic")
    scale = HarnessScale(n_traces=4, n_requests=80, master_seed=7)
    print(f"sweeping prediction overhead over {scale.n_traces} VT traces "
          f"x {scale.n_requests} requests ({', '.join(strategies)})\n")
    sweep = run_overhead_sweep(scale, strategies=strategies)
    print(render_fig5(sweep))


if __name__ == "__main__":
    main()
