"""Using the library on your own platform and task set.

Builds a heterogeneous platform by hand (two fast cores, one
energy-efficient core, one non-preemptable accelerator), defines task
types with per-resource WCET/energy including a resource the task cannot
run on, submits a small request stream, and prints the resulting
per-resource execution timelines (chunks) of the final plan.

Run:
    python examples/custom_platform.py
"""

from repro import (
    ExactResourceManager,
    NOT_EXECUTABLE,
    OraclePredictor,
    Platform,
    Request,
    Resource,
    SimulationConfig,
    TaskType,
    Trace,
    simulate,
)
from repro.core import RMContext, resource_timeline
from repro.core.context import PlannedTask
from repro.sim import render_gantt


def build_platform() -> Platform:
    return Platform(
        [
            Resource(0, "big0", kind="cpu", preemptable=True),
            Resource(1, "big1", kind="cpu", preemptable=True),
            Resource(2, "little0", kind="cpu", preemptable=True),
            Resource(3, "npu0", kind="npu", preemptable=False),
        ]
    )


def build_tasks() -> list[TaskType]:
    # A vision kernel: fast on the NPU, slow on the little core.
    vision = TaskType(
        type_id=0,
        name="vision",
        wcet=(20.0, 20.0, 45.0, 5.0),
        energy=(12.0, 12.0, 7.0, 1.5),
        migration_time=2.0,
        migration_energy=1.0,
    )
    # A control task that cannot run on the NPU at all.
    control = TaskType(
        type_id=1,
        name="control",
        wcet=(8.0, 8.0, 14.0, NOT_EXECUTABLE),
        energy=(4.0, 4.0, 2.5, NOT_EXECUTABLE),
        migration_time=1.0,
        migration_energy=0.5,
    )
    # A bursty logging task, cheap everywhere.
    logging = TaskType(
        type_id=2,
        name="logging",
        wcet=(3.0, 3.0, 5.0, 2.0),
        energy=(1.5, 1.5, 0.8, 0.4),
        migration_time=0.5,
        migration_energy=0.2,
    )
    return [vision, control, logging]


def build_trace(tasks) -> Trace:
    rows = [
        (0.0, 0, 30.0),
        (2.0, 1, 12.0),
        (4.0, 2, 8.0),
        (6.0, 0, 9.0),  # tight vision job: NPU or nothing
        (7.0, 1, 20.0),
        (9.0, 2, 25.0),
    ]
    requests = [
        Request(index=i, arrival=a, type_id=t, deadline=d)
        for i, (a, t, d) in enumerate(rows)
    ]
    return Trace(tasks, requests, group="custom")


def show_final_plan(platform, trace, mapping_by_job) -> None:
    """Rebuild the t=0 plan for display purposes."""
    context = RMContext(
        time=0.0,
        platform=platform,
        tasks=tuple(
            PlannedTask(
                job_id=r.index,
                task=trace.task_of(r),
                absolute_deadline=r.absolute_deadline,
            )
            for r in trace
            if r.index in mapping_by_job
        ),
    )
    for resource in platform:
        timeline = resource_timeline(context, mapping_by_job, resource.index)
        if not timeline.chunks:
            continue
        spans = ", ".join(
            f"job{c.job_id}[{c.start:g},{c.end:g}]" for c in timeline.chunks
        )
        print(f"  {resource.name:8s} {spans}")


def main() -> None:
    platform = build_platform()
    tasks = build_tasks()
    trace = build_trace(tasks)
    print(f"platform: {platform}")
    print(f"workload: {len(trace)} requests over {trace.stats().span:g} time "
          "units\n")

    config = SimulationConfig(collect_execution_log=True)
    for label, predictor in (("off", None), ("on", OraclePredictor())):
        result = simulate(
            trace, platform, ExactResourceManager(), predictor, config
        )
        print(
            f"prediction {label}: accepted {result.n_accepted}/{len(trace)}, "
            f"energy {result.total_energy:.2f} J "
            f"(migrations {result.migration_count}, "
            f"aborts {result.abort_count})"
        )
        print(render_gantt(result.execution_log, platform, width=64))
        print()

    # Show what an offline plan of the whole set would look like.
    print("\nstatic plan of all six jobs released together at t=0 "
          "(exact optimiser):")
    context = RMContext(
        time=0.0,
        platform=platform,
        tasks=tuple(
            PlannedTask(
                job_id=r.index,
                task=trace.task_of(r),
                absolute_deadline=r.deadline,  # all released at 0
            )
            for r in trace
        ),
    )
    decision = ExactResourceManager().solve(context)
    if decision.feasible:
        print(f"  planned energy: {decision.energy:.2f} J")
        show_final_plan(platform, trace, decision.mapping)
    else:
        print("  no static plan meets every deadline (expected when the "
              "stream relies on staggered arrivals)")


if __name__ == "__main__":
    main()
