"""The paper's motivational example (Sec. 3, Table 1, Fig. 1), end to end.

Two CPUs + one GPU, two tasks.  Reproduces all four claims:

* without prediction the RM gives the GPU to tau_1 and must reject tau_2
  (acceptance 1/2);
* with an accurate prediction it reserves the GPU and accepts both (2/2);
* with a *wrong* prediction (tau_2 predicted at t=1 but arriving at t=3)
  both tasks still meet their deadlines — but at 8.8 J instead of the
  3.5 J the prediction-less manager achieves: prediction can be harmful.

Run:
    python examples/motivational_example.py [heuristic|milp|exact]
"""

import sys

from repro import (
    ExactResourceManager,
    HeuristicResourceManager,
    MilpResourceManager,
)
from repro.experiments.motivational import (
    render_motivational,
    run_motivational,
)

STRATEGIES = {
    "heuristic": HeuristicResourceManager,
    "milp": MilpResourceManager,
    "exact": ExactResourceManager,
}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "heuristic"
    try:
        strategy = STRATEGIES[name]
    except KeyError:
        raise SystemExit(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    print(f"strategy: {name}\n")
    outcome = run_motivational(strategy)
    print(render_motivational(outcome))


if __name__ == "__main__":
    main()
