"""Learned (online) prediction on structured streams.

The paper's evaluation emulates a predictor at a chosen accuracy; its
premise (from the authors' prior work [12, 13]) is that real request
streams contain learnable patterns.  This example closes that loop:

1. generates a pattern-bearing stream (repeating type motif + bursty
   inter-arrival phases, mimicking cluster traces);
2. trains the online predictor (first-order Markov type chain + two-phase
   inter-arrival model) on the fly and reports its accuracy — it lands in
   the paper's quoted regime (80-95% type accuracy, small arrival error);
3. uses that predictor *inside the resource manager* and compares the
   rejection rate against predictor-off and the oracle upper bound.

Run:
    python examples/online_predictors.py
"""

import numpy as np

from repro import (
    ComposedPredictor,
    HeuristicResourceManager,
    NullPredictor,
    OraclePredictor,
    Platform,
    evaluate_predictor,
    generate_pattern_trace,
    generate_task_set,
    simulate,
)
from repro.workload.patterns import PatternConfig
from repro.workload.tracegen import DeadlineGroup


def main() -> None:
    platform = Platform.cpu_gpu(n_cpus=5, n_gpus=1)
    tasks = generate_task_set(platform, rng=np.random.default_rng(1))
    config = PatternConfig(
        n_requests=300,
        motif_length=6,
        type_mutation_prob=0.08,
        phases=((3.0, 0.25, 40), (6.5, 0.5, 20)),
        group=DeadlineGroup.VT,
    )
    trace = generate_pattern_trace(tasks, config, rng=np.random.default_rng(2))
    print(f"pattern stream: {trace}\n")

    report = evaluate_predictor(ComposedPredictor(), trace)
    print("online predictor quality on this stream "
          "(paper's prior work: 80-95% type, <17% arrival error):")
    print(f"  type accuracy : {100 * report.type_accuracy:.1f}%")
    print(f"  arrival NRMSE : {100 * report.arrival_nrmse:.1f}%")
    print(f"  coverage      : {100 * report.coverage:.1f}% "
          f"({report.n_abstained} abstentions)\n")

    configs = [
        ("off", NullPredictor()),
        ("learned", ComposedPredictor()),
        ("oracle", OraclePredictor()),
    ]
    print("rejection with the heuristic RM:")
    for label, predictor in configs:
        result = simulate(
            trace, platform, HeuristicResourceManager(), predictor
        )
        print(f"  predictor {label:8s}: {result.rejection_percentage:5.1f}% "
              f"rejected, energy {result.normalized_energy:.3f}")


if __name__ == "__main__":
    main()
