"""Prediction-accuracy sweep (the Fig. 4 experiment, reduced scale).

Degrades the oracle along the two axes the paper studies — task-type
identity and arrival time — and shows how rejection climbs back towards
the predictor-off level as accuracy falls.

Run (a few minutes with the MILP; pass --fast for heuristic-only):
    python examples/accuracy_sweep.py [--fast]
"""

import sys

from repro.experiments.config import HarnessScale
from repro.experiments.fig4_accuracy import render_fig4, run_accuracy_sweep


def main() -> None:
    fast = "--fast" in sys.argv
    strategies = ("heuristic",) if fast else ("milp", "heuristic")
    scale = HarnessScale(n_traces=4, n_requests=80, master_seed=7)
    print(f"sweeping type/arrival accuracy over {scale.n_traces} VT traces "
          f"x {scale.n_requests} requests ({', '.join(strategies)})\n")
    type_sweep = run_accuracy_sweep("type", scale, strategies=strategies)
    arrival_sweep = run_accuracy_sweep("arrival", scale, strategies=strategies)
    print(render_fig4(type_sweep, arrival_sweep))


if __name__ == "__main__":
    main()
