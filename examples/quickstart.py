"""Quickstart: prediction-aware resource management in ~30 lines.

Generates the paper's workload (five CPUs + one GPU, very tight
deadlines), then replays it through the fast heuristic resource manager
with the predictor off and on, printing the paper's two headline metrics:
rejection percentage and normalised energy.

Run:
    python examples/quickstart.py
"""

from repro import (
    DeadlineGroup,
    Platform,
    TraceConfig,
    generate_task_set,
    generate_trace,
    simulate,
)
from repro.util.rng import RngStreams


def main() -> None:
    streams = RngStreams(master_seed=2024)
    platform = Platform.cpu_gpu(n_cpus=5, n_gpus=1)

    # Sec. 5.1 generators: 100 task types, 500 requests, VT deadlines.
    tasks = generate_task_set(platform, rng=streams.get("tasks"))
    trace = generate_trace(
        tasks,
        TraceConfig(group=DeadlineGroup.VT, n_requests=200),
        rng=streams.get("trace"),
    )
    print(f"workload: {trace}, mean inter-arrival "
          f"{trace.mean_interarrival():.2f}")

    # Strategies and predictors resolve by registry name (repro.registry);
    # passing constructed objects still works.
    without = simulate(trace, platform, "heuristic")
    with_prediction = simulate(trace, platform, "heuristic", "oracle")

    print(f"predictor off: rejection {without.rejection_percentage:5.1f}%  "
          f"normalised energy {without.normalized_energy:.3f}")
    print(f"predictor on : rejection "
          f"{with_prediction.rejection_percentage:5.1f}%  "
          f"normalised energy {with_prediction.normalized_energy:.3f}")
    gain = (without.rejection_percentage
            - with_prediction.rejection_percentage)
    print(f"prediction gain: {gain:.1f} percentage points of rejection")


if __name__ == "__main__":
    main()
